"""E10 — the centralized cost model ranks plans correctly.

Paper basis (Section 3, Step 3): a centralized cost model over the one
algebra "allows us to keep the cost model much simpler, which clearly
has a lot of advantages".

Reproduced rows: for a suite of equivalent-plan pairs and assorted
queries, the rank correlation between estimated cost and measured
cost (tuples touched), and whether the cost-based choice picks the
measured-cheapest plan of each pair.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.algebra import evaluate, make_bag, make_list, parse
from repro.optimizer import CostModel, Optimizer
from repro.storage import CostCounter

from conftest import record_table

N = 50_000


@pytest.fixture(scope="module")
def env():
    rng = np.random.default_rng(101)
    return {
        "sorted_xs": make_list(list(range(N))),
        "random_xs": make_list(rng.permutation(N).tolist()),
        "bag": make_bag(rng.random(N).tolist()),
    }


PLAN_SUITE = [
    "select(sorted_xs, 100, 200)",
    "select(random_xs, 100, 200)",
    "select(projecttobag(sorted_xs), 100, 200)",
    "projecttobag(select(sorted_xs, 100, 200))",
    "topn(bag, 10)",
    "slice(sort(bag, 1), 0, 10)",
    "sort(bag)",
    "count(bag)",
    "topn(sorted_xs, 50, 0)",
    "select(select(random_xs, 0, 25000), 100, 200)",
    "max(projecttoset(bag))",
    "sum(bag)",
]

EQUIVALENT_PAIRS = [
    ("select(projecttobag(sorted_xs), 100, 200)",
     "projecttobag(select(sorted_xs, 100, 200))"),
    ("slice(sort(bag, 1), 0, 10)", "topn(bag, 10)"),
    ("select(select(random_xs, 1000, 40000), 2000, 3000)",
     "select(random_xs, 2000, 3000)"),
]


def measure(expr_text, env):
    with CostCounter.activate() as cost:
        evaluate(parse(expr_text), env)
    return cost.tuples_read + cost.comparisons


def test_e10_rank_correlation(benchmark, env):
    model = CostModel()

    def run():
        estimated = [model.estimate_expr(parse(text), env).cost for text in PLAN_SUITE]
        measured = [measure(text, env) for text in PLAN_SUITE]
        return estimated, measured

    estimated, measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rho, _p = scipy_stats.spearmanr(estimated, measured)
    rows = [
        [text, est, meas]
        for text, est, meas in zip(PLAN_SUITE, estimated, measured)
    ]
    rows.append(["Spearman rank correlation", f"{rho:.3f}", "-"])
    record_table(
        "E10a: estimated vs measured plan cost",
        ["plan", "estimated cost", "measured cost"],
        rows,
    )
    assert rho > 0.7  # the model orders plans like reality does


def test_e10_choice_accuracy(benchmark, env):
    optimizer = Optimizer()

    def run():
        rows = []
        correct = 0
        for left_text, right_text in EQUIVALENT_PAIRS:
            model = optimizer.cost_model
            est_left = model.estimate_expr(parse(left_text), env).cost
            est_right = model.estimate_expr(parse(right_text), env).cost
            meas_left = measure(left_text, env)
            meas_right = measure(right_text, env)
            predicted = left_text if est_left < est_right else right_text
            actual = left_text if meas_left < meas_right else right_text
            correct += predicted == actual
            rows.append([f"{left_text} vs {right_text}"[:60],
                         predicted == actual])
        return rows, correct

    rows, correct = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "E10b: cost-based choice picks the measured winner",
        ["plan pair", "correct"],
        rows + [[f"accuracy: {correct}/{len(EQUIVALENT_PAIRS)}", ""]],
    )
    assert correct == len(EQUIVALENT_PAIRS)
