"""E11 — the special top-N operator at the query-language level.

Paper basis (Section 3, Step 1): "introducing special top N operators,
which can be seen as special select operators, will allow optimal
utilization of the new structure of the data at the query language
level."

Reproduced series: the algebra-level ``topn`` operator vs the
sort-then-slice plan it replaces, with and without the optimizer; and
the order-aware fast path on a pre-sorted ranked LIST.
"""

import numpy as np
import pytest

from repro.algebra import evaluate, make_bag, make_list, parse
from repro.optimizer import Optimizer
from repro.storage import CostCounter

from conftest import BENCH_SCALE, record_table

N_ROWS = max(int(300_000 * BENCH_SCALE), 30_000)


@pytest.fixture(scope="module")
def score_bag():
    return make_bag(np.random.default_rng(111).random(N_ROWS).tolist())


@pytest.fixture(scope="module")
def ranked_list():
    values = np.sort(np.random.default_rng(112).random(N_ROWS))[::-1]
    return make_list(values.tolist())


def test_e11_topn_vs_sort_slice(benchmark, score_bag):
    def sweep():
        rows = []
        for n in (1, 10, 100):
            env = {"scores": score_bag}
            with CostCounter.activate() as sort_cost:
                slow = evaluate(parse(f"slice(sort(scores, 1), 0, {n})"), env)
            with CostCounter.activate() as topn_cost:
                fast = evaluate(parse(f"topn(scores, {n})"), env)
            assert slow.equals(fast)
            rows.append([n, sort_cost.comparisons, topn_cost.comparisons])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        f"E11a: topn operator vs sort+slice over {N_ROWS:,} scores (comparisons)",
        ["N", "sort+slice", "topn operator"],
        rows,
    )
    for n, slow, fast in rows:
        assert fast < slow / 3


def test_e11_optimizer_introduces_topn(benchmark, score_bag):
    optimizer = Optimizer()
    env = {"scores": score_bag}
    expr = parse("slice(sort(scores, 1), 0, 10)")
    report = benchmark.pedantic(lambda: optimizer.optimize(expr, env),
                                rounds=1, iterations=1)
    record_table(
        "E11b: optimizer introduces the special operator",
        ["step", "value"],
        [["original", str(report.original)],
         ["optimized", str(report.optimized)],
         ["estimated speedup", f"x{report.estimated_speedup:.1f}"]],
    )
    assert str(report.optimized) == "topn(scores, 10, 1)"


def test_e11_order_aware_prefix(benchmark, ranked_list):
    """On an already ranked LIST the special operator degenerates to a
    prefix read — 'optimal utilization of the new structure'."""

    def run():
        env = {"ranked": ranked_list}
        with CostCounter.activate() as cost:
            evaluate(parse("topn(ranked, 10)"), env)
        return cost.tuples_read

    tuples = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "E11c: topn on a pre-ranked LIST",
        ["input size", "tuples read"],
        [[N_ROWS, tuples]],
    )
    assert tuples <= 10


def test_e11_bench_topn(benchmark, score_bag):
    expr = parse("topn(scores, 10)")
    benchmark(lambda: evaluate(expr, {"scores": score_bag}))


def test_e11_bench_sort_slice(benchmark, score_bag):
    expr = parse("slice(sort(scores, 1), 0, 10)")
    benchmark(lambda: evaluate(expr, {"scores": score_bag}))
