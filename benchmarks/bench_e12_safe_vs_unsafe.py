"""E12 — the safe/unsafe taxonomy, side by side.

Paper basis (Section 2): "Two types of techniques exist: unsafe
techniques that speed up the process but might lower the answer
quality (e.g. precision and/or recall) and safe techniques that do
increase speed, although often much less, but maintain answer quality
compared to the unoptimized case."

Reproduced table: every top-N technique in the library on the same
text workload — cost reduction vs naive, top-20 overlap with the exact
answer, and its safety class.  Expected shape: the unsafe family is
fastest but lossy; the safe family is exact with smaller speedups.
"""

import pytest

from repro.core import QuerySession
from repro.mm import PostingsSource
from repro.quality import mean_over_queries, overlap_at
from repro.storage import CostCounter
from repro.topn import SUM, naive_topn, quit_continue_topn, threshold_topn

from conftest import record_table

N = 20


def test_e12_summary_table(benchmark, ft_database, ft_queries):
    index = ft_database.index
    model = ft_database.model

    def run():
        rows = []
        naive_cost_total = 0
        naive_rankings = {}
        for query in ft_queries:
            with CostCounter.activate() as cost:
                naive_rankings[query.query_id] = naive_topn(
                    index, list(query.term_ids), model, N
                ).doc_ids
            naive_cost_total += cost.tuples_read

        def measure(label, func, safe):
            total = 0
            overlaps = []
            for query in ft_queries:
                with CostCounter.activate() as cost:
                    result = func(list(query.term_ids))
                total += cost.tuples_read
                overlaps.append(overlap_at(result.doc_ids,
                                           naive_rankings[query.query_id], N))
            reduction = 1.0 - total / naive_cost_total
            rows.append([label, "safe" if safe else "UNSAFE",
                         f"{reduction:+.1%}", mean_over_queries(overlaps)])

        measure("naive (baseline)", lambda t: naive_topn(index, t, model, N), True)
        measure("TA over posting sources",
                lambda t: threshold_topn(
                    [PostingsSource(index, tid, model) for tid in t], N, SUM),
                True)
        measure("fragmentation: safe-switch",
                lambda t: ft_database.search(t, n=N, strategy="safe-switch").result, True)
        measure("fragmentation: indexed",
                lambda t: ft_database.search(t, n=N, strategy="indexed").result, True)
        measure("fragmentation: unsafe-small",
                lambda t: ft_database.search(t, n=N, strategy="unsafe-small").result, False)
        measure("brown quit (30% budget)",
                lambda t: quit_continue_topn(index, t, model, N,
                                             budget_fraction=0.3, strategy="quit"),
                False)
        measure("brown continue (30% budget)",
                lambda t: quit_continue_topn(index, t, model, N,
                                             budget_fraction=0.3, strategy="continue"),
                False)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "E12: safe vs unsafe techniques on one workload "
        "(cost reduction vs naive; overlap@20 with exact)",
        ["technique", "class", "cost vs naive", "overlap@20"],
        rows,
    )
    by_label = {row[0]: row for row in rows}
    # safe techniques: exact answers
    assert by_label["TA over posting sources"][3] == pytest.approx(1.0)
    assert by_label["fragmentation: safe-switch"][3] == pytest.approx(1.0)
    # unsafe techniques: measurably lossy
    assert by_label["fragmentation: unsafe-small"][3] < 1.0
    assert by_label["brown quit (30% budget)"][3] < 1.0
    # unsafe-small is cheaper than the safe switching variant
    unsafe_reduction = float(by_label["fragmentation: unsafe-small"][2].rstrip("%"))
    switch_reduction = float(by_label["fragmentation: safe-switch"][2].rstrip("%"))
    assert unsafe_reduction > switch_reduction
