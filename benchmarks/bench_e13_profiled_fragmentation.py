"""E13 — learned (profiled) fragmentation for non-text content.

Paper basis (Section 3, Step 1, future work): "For the case of
non-text content data we are yet not aware of a special distribution
of the data (such as Zipf for text).  Maybe such a distribution can be
'learned' by the system by means of profiling, although the thus found
distribution most likely will not be independent from the data set."

Reproduced series: the learned hit distribution's skew (the non-text
analogue of E1's Zipf table); unsafe hot-fragment execution vs the
full scan (speed vs quality — mirroring E3 on feature data); and the
safe bound-administrated variant (exact answers, partial work —
mirroring E4/E5).
"""

import numpy as np
import pytest

from repro.fragmentation import ProfiledFragments, profile_hits, profiled_topn
from repro.mm import query_near_cluster, texture_features
from repro.quality import overlap_at
from repro.storage import CostCounter

from conftest import BENCH_SCALE, record_table

N_OBJECTS = max(int(20_000 * BENCH_SCALE), 2000)


@pytest.fixture(scope="module")
def space():
    return texture_features(N_OBJECTS, dim=8, n_clusters=12, spread=0.07, seed=13)


@pytest.fixture(scope="module")
def fragments(space):
    hits = profile_hits(space, n_queries=300, k=50, seed=1)
    return ProfiledFragments(space, hits, hot_fraction=0.2, n_groups=48, seed=2)


def workload(space, count=25):
    return [query_near_cluster(space, cluster=i % 12, seed=500 + i)
            for i in range(count)]


def test_e13_learned_distribution_skew(benchmark, space):
    def run():
        hits = profile_hits(space, n_queries=300, k=50, seed=1)
        order = np.sort(hits)[::-1]
        total = order.sum()
        rows = []
        for top in (0.01, 0.05, 0.10, 0.20, 0.50):
            k = max(int(top * len(order)), 1)
            rows.append([f"top {top:.0%} of objects", f"{order[:k].sum() / total:.1%} of hits"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "E13a: learned interestingness distribution of feature objects "
        "(non-text analogue of E1)",
        ["object slice (by profiled hits)", "share of top-K appearances"],
        rows,
    )
    top20 = float(rows[3][1].rstrip("% of hits")) / 100
    assert top20 > 0.4  # the learned distribution is strongly skewed


def test_e13_hot_fragment_strategies(benchmark, space, fragments):
    queries = workload(space)

    def run():
        results = {}
        for mode in ("full", "unsafe", "safe"):
            scored = 0
            overlaps = []
            with CostCounter.activate() as cost:
                for i, query in enumerate(queries):
                    result = profiled_topn(fragments, query, 10, mode=mode)
                    if mode == "full":
                        results.setdefault("reference", {})[i] = result.doc_ids
                    else:
                        overlaps.append(overlap_at(
                            result.doc_ids, results["reference"][i], 10))
                    scored += result.stats["objects_scored"]
            results[mode] = (scored, cost.tuples_read,
                             float(np.mean(overlaps)) if overlaps else 1.0)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    full_scored, _, _ = results["full"]
    unsafe_scored, _, unsafe_overlap = results["unsafe"]
    safe_scored, _, safe_overlap = results["safe"]
    record_table(
        f"E13b: profiled fragmentation over {N_OBJECTS} feature objects "
        "(mirrors E3/E4 on non-text content)",
        ["mode", "objects scored", "vs full", "overlap@10 with exact"],
        [
            ["full scan", full_scored, "100%", 1.0],
            ["unsafe (hot only)", unsafe_scored,
             f"{unsafe_scored / full_scored:.1%}", unsafe_overlap],
            ["safe (bound pruning)", safe_scored,
             f"{safe_scored / full_scored:.1%}", safe_overlap],
        ],
    )
    assert unsafe_scored < full_scored * 0.25  # hot fragment is small
    assert unsafe_overlap < 1.0  # and unsafe is measurably lossy
    assert safe_overlap == pytest.approx(1.0)  # bounds keep safe exact
    assert safe_scored < full_scored  # while pruning real work


def test_e13_bench_safe_query(benchmark, space, fragments):
    query = workload(space, count=1)[0]
    benchmark(lambda: profiled_topn(fragments, query, 10, mode="safe"))


def test_e13_bench_full_query(benchmark, space, fragments):
    query = workload(space, count=1)[0]
    benchmark(lambda: profiled_topn(fragments, query, 10, mode="full"))
