"""E14 — ablations of the design choices DESIGN.md calls out.

Three parameter sweeps that expose *why* the system is configured the
way it is:

* the fragmentation volume cut (Step 1's "95%"): smaller cuts make the
  small fragment cheaper but lossier;
* the quality-check sensitivity (Step 1's switch): lower sensitivity
  switches more often — higher quality, higher cost;
* the quit/continue postings budget (Brown's unsafe pruning): quality
  rises monotonically with budget, continue dominates quit at equal
  budget.
"""

import pytest

from repro.core import MMDatabase, QuerySession
from repro.fragmentation import QualityCheck
from repro.quality import mean_over_queries, overlap_at
from repro.storage import CostCounter
from repro.topn import naive_topn, quit_continue_topn

from conftest import record_table


def test_e14_volume_cut_sweep(benchmark, ft_collection, ft_queries):
    def run():
        rows = []
        for cut in (0.80, 0.90, 0.95, 0.99):
            db = MMDatabase.from_collection(ft_collection)
            db.fragment(volume_cut=cut)
            session = QuerySession(db)
            reference = session.reference_rankings(ft_queries, n=20)
            unsafe = session.run(ft_queries, n=20, strategy="unsafe-small",
                                 reference_rankings=reference)
            exact = session.run(ft_queries, n=20, strategy="unfragmented")
            rows.append([
                f"{cut:.0%}",
                f"{db.fragmented.small_volume_share():.1%}",
                f"{1 - unsafe.tuples_read / exact.tuples_read:.1%}",
                unsafe.mean_overlap_vs_reference,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "E14a: ablation — fragmentation volume cut",
        ["volume cut", "small fragment share", "unsafe data reduction", "overlap@20"],
        rows,
    )
    # a larger volume cut assigns more postings to the LARGE fragment,
    # shrinking the small fragment: cheaper unsafe queries, worse quality
    overlaps = [row[3] for row in rows]
    assert overlaps[0] >= overlaps[-1]
    reductions = [float(row[2].rstrip("%")) for row in rows]
    assert reductions[-1] >= reductions[0]


def test_e14_switch_sensitivity_sweep(benchmark, ft_database, ft_queries):
    def run():
        rows = []
        executor = ft_database._executor
        original_check = executor.quality_check
        try:
            # n=5 so the check's threshold (not the too-few-candidates
            # guard) is what decides; see QualityCheck.decide
            for sensitivity in (0.05, 0.35, 2.0, 1e9):
                executor.quality_check = QualityCheck(sensitivity=sensitivity)
                switched = 0
                overlaps = []
                with CostCounter.activate() as cost:
                    for query in ft_queries:
                        tids = list(query.term_ids)
                        exact = ft_database.search(tids, n=5, strategy="unfragmented")
                        result = ft_database.search(tids, n=5, strategy="safe-switch")
                        switched += bool(result.result.stats["switched"])
                        overlaps.append(overlap_at(result.doc_ids, exact.doc_ids, 5))
                rows.append([
                    sensitivity,
                    f"{switched / len(ft_queries):.0%}",
                    mean_over_queries(overlaps),
                    cost.tuples_read,
                ])
        finally:
            executor.quality_check = original_check
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "E14b: ablation — quality-check sensitivity (switch threshold)",
        ["sensitivity", "switch rate", "overlap@5", "tuples read"],
        rows,
    )
    # laxer checks switch less, cost less, and lose quality
    assert rows[0][2] > rows[-1][2]
    assert rows[0][3] > rows[-1][3]


def test_e14_pruning_budget_sweep(benchmark, ft_database, ft_queries):
    index = ft_database.index
    model = ft_database.model

    def run():
        exact = {q.query_id: naive_topn(index, list(q.term_ids), model, 20).doc_ids
                 for q in ft_queries}
        rows = []
        for budget in (0.1, 0.3, 0.6, 1.0):
            for strategy in ("quit", "continue"):
                overlaps = []
                with CostCounter.activate() as cost:
                    for query in ft_queries:
                        result = quit_continue_topn(
                            index, list(query.term_ids), model, 20,
                            budget_fraction=budget, strategy=strategy,
                        )
                        overlaps.append(overlap_at(result.doc_ids,
                                                   exact[query.query_id], 20))
                rows.append([budget, strategy, mean_over_queries(overlaps),
                             cost.tuples_read])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "E14c: ablation — quit/continue postings budget",
        ["budget", "strategy", "overlap@20", "tuples read"],
        rows,
    )
    by_key = {(row[0], row[1]): row for row in rows}
    # quality rises with budget
    assert by_key[(1.0, "quit")][2] >= by_key[(0.1, "quit")][2]
    # full budget = exact
    assert by_key[(1.0, "quit")][2] == pytest.approx(1.0)
    # continue >= quit at equal budget (it refines survivor scores)
    for budget in (0.1, 0.3, 0.6):
        assert by_key[(budget, "continue")][2] >= by_key[(budget, "quit")][2] - 1e-9
