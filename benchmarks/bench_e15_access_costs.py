"""E15 — middleware access costs: TA vs NRA vs CA.

Paper basis (Section 2): the Fagin framework the paper builds on is a
*middleware* cost model — sorted and random accesses have different
prices depending on the subsystem (a remote image server may not
support random access at all).  This experiment charges
``cost = sorted + h * random`` for a sweep of cost ratios ``h`` and
shows the crossovers: TA wins when random access is cheap, NRA when it
is impossible, CA tracks the best of both — the adaptivity an
integrated MM optimizer (Step 3) must model.
"""

import math

import pytest

from repro.mm import feature_source, query_near_cluster, texture_features
from repro.storage import CostCounter
from repro.topn import SUM, combined_topn, naive_topn_sources, nra_topn, threshold_topn

from conftest import BENCH_SCALE, record_table

N_OBJECTS = max(int(20_000 * BENCH_SCALE), 2000)

#: score comparison tolerance: engines may associate float additions
#: differently (scalar left-to-right fold vs vectorized column fold),
#: so access-cost conformance must not hang on the last ulp of a score
REL_TOL, ABS_TOL = 1e-9, 1e-12


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def ranking_close(result, reference) -> bool:
    """Tolerance-aware ranking agreement: score multisets match within
    tolerance, and ids agree exactly except inside a tolerance-tied
    boundary group (where engine stop order legitimately picks the
    member)."""
    if len(result.items) != len(reference.items):
        return False
    if not all(_close(a, b) for a, b in zip(sorted(result.scores),
                                            sorted(reference.scores))):
        return False
    boundary = reference.scores[-1]
    return all(item.obj_id == ref.obj_id
               for item, ref in zip(result.items, reference.items)
               if not _close(item.score, boundary))


def set_close(result, reference) -> bool:
    """Tolerance-aware membership: every reference id strictly above
    the tolerance-tied boundary must be present (boundary members may
    differ — reported lower bounds break their ties differently)."""
    if len(result.items) != len(reference.items):
        return False
    boundary = reference.scores[-1]
    must_have = {item.obj_id for item in reference.items
                 if not _close(item.score, boundary)}
    return must_have <= set(result.doc_ids)


@pytest.fixture(scope="module")
def spaces():
    return [
        texture_features(N_OBJECTS, dim=8, n_clusters=10, seed=151),
        texture_features(N_OBJECTS, dim=10, n_clusters=10, spread=0.12, seed=152),
        texture_features(N_OBJECTS, dim=6, n_clusters=10, spread=0.18, seed=153),
    ]


def make_sources(spaces, seed):
    return [
        feature_source(space, query_near_cluster(space, cluster=seed % 10,
                                                 seed=seed + i), measure="l2")
        for i, space in enumerate(spaces)
    ]


def run_with_costs(func, spaces, n, seed):
    with CostCounter.activate() as cost:
        result = func(make_sources(spaces, seed), n, SUM)
    return result, cost.sorted_accesses, cost.random_accesses


def test_e15_cost_ratio_sweep(benchmark, spaces):
    def sweep():
        naive_result, _, _ = run_with_costs(naive_topn_sources, spaces, 10, 3)
        ta_result, ta_s, ta_r = run_with_costs(threshold_topn, spaces, 10, 3)
        nra_result, nra_s, nra_r = run_with_costs(nra_topn, spaces, 10, 3)
        assert ranking_close(ta_result, naive_result)
        assert set_close(nra_result, naive_result)
        rows = []
        for h in (1, 4, 16, 64):
            ca_result, ca_s, ca_r = run_with_costs(
                lambda s_, n_, a_: combined_topn(s_, n_, a_, h=h, check_every=8),
                spaces, 10, 3)
            assert set_close(ca_result, naive_result)
            ta_cost = ta_s + h * ta_r
            nra_cost = nra_s + h * nra_r
            ca_cost = ca_s + h * ca_r
            rows.append([h, ta_cost, nra_cost, ca_cost,
                         "TA" if ta_cost < nra_cost else "NRA"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        f"E15: weighted middleware cost (sorted + h*random), {N_OBJECTS} objects, "
        "3 sources, N=10",
        ["h (random/sorted)", "TA cost", "NRA cost", "CA cost", "TA-vs-NRA winner"],
        rows,
    )
    # crossover shape: TA leads at cheap random access, NRA at expensive
    assert rows[0][1] < rows[0][2]  # h=1: TA beats NRA
    assert rows[-1][2] < rows[-1][1]  # h=64: NRA beats TA
    # CA is never catastrophically worse than the per-h winner
    for h, ta_cost, nra_cost, ca_cost, _ in rows:
        assert ca_cost <= 4 * min(ta_cost, nra_cost)


def test_e15_bench_ca(benchmark, spaces):
    benchmark(lambda: combined_topn(make_sources(spaces, 9), 10, SUM, h=8))
