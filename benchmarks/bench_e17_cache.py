"""E17 — multi-level query cache: warm repeats and top-N resume.

Paper basis (Section 3.1): Blok lists reuse of earlier work among the
top-N optimization issues — a repeated query should cost (almost)
nothing, and the user who asked for the top 10 and comes back for the
top 100 should *continue* the first run rather than redo it.  This
experiment measures both reuses with the always-verifying
:func:`repro.cache.bench.bench_cache` harness: warm repeats must cut
charged operations at least 5x (they serve from the result cache and
charge nothing), and every resume (TA frontier, NRA/CA access replay,
quit/continue accumulator) must charge less than its cold reference
while returning an element-for-element identical ranking.
"""

from repro.cache.bench import bench_cache

from conftest import BENCH_SCALE, record_table


def test_e17_cache_warm_and_resume():
    report = bench_cache(scale=max(BENCH_SCALE, 0.05), seed=7,
                         queries=10, n=10, resume_n=100)
    rows = []
    for row in report.rows:
        reduction = ("inf" if row.charged_warm == 0
                     else round(row.charged_cold / row.charged_warm, 2))
        rows.append([row.label, row.queries, row.charged_cold,
                     row.charged_warm, reduction, row.hits, row.resumes,
                     row.mismatches])
    record_table(
        "E17: query cache — cold vs warm charged ops (top-10 -> top-100 resume)",
        ["scenario", "queries", "cold ops", "warm ops", "reduction",
         "hits", "resumes", "mismatches"],
        rows,
    )
    assert report.ok, "a warm or resumed ranking diverged from cold"
    for row in report.rows:
        assert row.mismatches == 0, row.label
