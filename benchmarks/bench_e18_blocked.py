"""E18 — block-at-a-time vectorized engines vs their scalar oracles.

Paper basis (Section 2): the performance argument Blok inherits from
MonetDB is block/column-at-a-time evaluation — amortize the per-tuple
interpretation overhead over whole array slabs.  Our scalar TA/NRA/CA
walk one posting per Python iteration; the blocked variants
(:mod:`repro.topn.blocked`) consume scored blocks with per-block score
upper bounds and do numpy batch work between threshold checks,
skipping blocks the bounds prune.  This experiment measures that
wall-clock win with the always-verifying
:func:`repro.topn.bench.bench_blocks` harness: every blocked ranking
must be bit-identical (ids and scores, canonical tie order) to the
scalar answer, so the speedup column is pure interpretation overhead,
not an accuracy trade.  The acceptance bar is a >=2x win for at least
one engine at bench scale.
"""

from repro.topn.bench import bench_blocks

from conftest import BENCH_SCALE, record_table


def test_e18_blocked_vs_scalar():
    report = bench_blocks(scale=max(BENCH_SCALE, 0.05), seed=7,
                          queries=3, n=10, block_sizes=(16, 128, 1024))
    rows = []
    for row in report.rows:
        rows.append([row.engine, row.block_size, row.queries,
                     round(row.seconds_scalar, 4),
                     round(row.seconds_blocked, 4),
                     round(row.speedup, 2),
                     row.blocks_read, row.blocks_skipped, row.mismatches])
    record_table(
        "E18: blocked vs scalar top-N engines — wall clock by block size",
        ["engine", "block", "queries", "scalar s", "blocked s", "speedup",
         "blocks read", "blocks skipped", "mismatches"],
        rows,
    )
    assert report.ok, "a blocked ranking diverged from its scalar oracle"
    # the tentpole claim: a multi-x win for at least one engine
    assert report.best_speedup >= 2.0, (
        f"best blocked speedup {report.best_speedup:.2f}x is below the 2x bar")
