"""E19 — query service under multi-tenant load: qps, latency, isolation.

Paper basis (Section 4): Blok's optimization issues live inside a
*database service* — queries arrive concurrently, users disconnect and
come back, and the anytime behaviour of the Fagin-family engines is
exactly what a service should surface (stream the certified top-k so
far instead of blocking until the stop condition).  This experiment
drives the :mod:`repro.serve` layer with the closed-loop generator in
:func:`repro.serve.bench.bench_serve`: a steady tenant alone (solo
phase), then the same tenant next to a noisy one whose token bucket
admits ~5 requests/second (mixed phase).  Recorded per tenant and
phase: request counts, completed qps, p50/p99 latency, streamed chunk
counts.  The report verifies that every streamed final was
bit-identical to the direct library call, that at least one pre-final
(anytime) chunk was streamed, that the noisy tenant was actually
throttled, and that the steady tenant's p99 stayed within 2x of its
solo baseline.
"""

from repro.serve.bench import bench_serve

from conftest import BENCH_SCALE, record_table


def test_e19_serve_load_and_isolation():
    report = bench_serve(scale=max(BENCH_SCALE, 0.05), seed=7,
                         duration=1.5, n=10, algorithm="ta",
                         steady_clients=3, noisy_clients=3, chunk_depth=8)
    rows = []
    for row in report.rows:
        rows.append([
            row.phase, row.tenant, row.requests, row.completed,
            row.rejected, round(row.qps, 1),
            None if row.p50_ms is None else round(row.p50_ms, 2),
            None if row.p99_ms is None else round(row.p99_ms, 2),
            row.chunks, row.prefinal_chunks,
            row.mismatches + row.errors,
        ])
    ratio = report.isolation_ratio
    rows.append(["isolation", "steady", None, None, None, None, None,
                 None if ratio is None else round(ratio, 2), None, None, None])
    record_table(
        "E19: query service — per-tenant qps/latency and quota isolation",
        ["phase", "tenant", "requests", "completed", "rejected", "qps",
         "p50 ms", "p99 ms", "chunks", "prefinal", "bad"],
        rows,
    )
    assert report.ok, (
        "serve bench failed: mismatched finals, missing anytime chunks, "
        "unthrottled noisy tenant, or steady p99 degraded beyond 2x "
        f"(isolation ratio {ratio})")
