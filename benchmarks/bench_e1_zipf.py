"""E1 — "text data is Zipf distributed"; frequent terms own the volume.

Paper basis (Section 3, Step 1): the fragmentation argument rests on
the Zipf distribution of terms: "the least frequently occurring terms
are the most interesting ones while the most frequently occurring /
least interesting terms take up most of the storage/memory space."

Reproduced series: the rank-frequency table (log-spaced), the fitted
Zipf exponent/fit quality, and the storage-share table (top-x% of
terms vs share of postings volume).
"""

import pytest

from repro.ir import fit_zipf, rank_frequency_table, volume_share_of_top_terms, vocabulary_share_for_volume

from conftest import record_table


@pytest.fixture(scope="module")
def frequencies(ft_index):
    cf = ft_index.vocabulary.cf_array()
    return cf[cf > 0]


def test_e1_rank_frequency_series(benchmark, ft_index, frequencies):
    fit = benchmark.pedantic(lambda: fit_zipf(frequencies, min_frequency=3),
                             rounds=1, iterations=1)
    table = rank_frequency_table(frequencies, n_points=12)
    rows = [[rank, freq, fit.predicted_cf(rank)] for rank, freq in table]
    record_table(
        "E1a: Zipf rank-frequency (measured vs fitted law)",
        ["rank", "collection freq", "fitted"],
        rows,
    )
    record_table(
        "E1b: Zipf fit",
        ["exponent", "r^2", "terms"],
        [[fit.exponent, fit.r_squared, fit.n_terms]],
    )
    # the paper's premise: a clean Zipf law
    assert 0.8 < fit.exponent < 2.2
    assert fit.r_squared > 0.8


def test_e1_volume_shares(benchmark, frequencies):
    shares = benchmark.pedantic(
        lambda: [(top, volume_share_of_top_terms(frequencies, top))
                 for top in (0.01, 0.05, 0.10, 0.25, 0.50)],
        rounds=1, iterations=1,
    )
    vocab_share_95 = vocabulary_share_for_volume(frequencies, 0.95)
    rows = [[f"top {top:.0%} of terms", f"{share:.1%} of volume"] for top, share in shares]
    rows.append([f"terms needed for 95% volume", f"{vocab_share_95:.1%} of vocabulary"])
    record_table("E1c: storage share of frequent terms", ["vocabulary slice", "postings volume"], rows)
    # paper shape: a small minority of terms owns most of the volume
    top5 = dict(shares)[0.05]
    assert top5 > 0.5
    assert vocab_share_95 < 0.5
