"""E20 — adaptive plan choice beats every static engine policy.

Paper basis (Sections 3-4): the middleware optimizer should pick the
stopping strategy per query from calibrated cost estimates, not commit
to one algorithm globally — no single Fagin-family engine is best
across workload classes.

Reproduced rows: per workload class (uniform / skewed / correlated /
sparse grade matrices), the total charged cost of the four static
policies (always-FA/TA/NRA/CA) against the adaptive policy that picks
per query from the trace-calibrated k-NN predictors.  The acceptance
bar mirrors ``repro bench-adaptive``: adaptive within 1.05x of the
best static per class, strictly cheaper than at least two statics
overall, every answer exact and every chosen plan certified.
"""

from repro.optimizer.adaptive import bench_adaptive

from conftest import BENCH_SCALE, record_table


def test_e20_adaptive_vs_static(benchmark):
    report = benchmark.pedantic(
        lambda: bench_adaptive(scale=max(BENCH_SCALE, 0.25), seed=7),
        rounds=1, iterations=1)

    policies = [*report.rows[0].costs.keys()]
    rows = []
    for row in report.rows:
        rows.append([row.corpus,
                     *[f"{row.costs[name]:,.0f}" for name in policies],
                     row.best_static, f"{row.ratio:.3f}",
                     row.exact, row.certified])
    rows.append(["TOTAL",
                 *[f"{report.totals[name]:,.0f}" for name in policies],
                 "-", "-", "-", "-"])
    picks = {}
    for row in report.rows:
        for engine, count in row.chosen.items():
            picks[engine] = picks.get(engine, 0) + count
    rows.append(["adaptive picks",
                 *[str(picks.get(name, "-")) for name in policies],
                 "-", f"beat {report.statics_beaten} statics", "-", "-"])
    record_table(
        "E20: adaptive plan choice vs static engine policies",
        ["corpus", *policies, "best static", "adaptive/best", "exact",
         "certified"],
        rows,
    )
    assert all(row.ratio <= report.tolerance for row in report.rows)
    assert report.statics_beaten >= 2
    assert all(row.exact and row.certified for row in report.rows)
    assert report.ok
