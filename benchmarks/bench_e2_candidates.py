"""E2 — "usually half of all objects contains at least one query term".

Paper basis (Section 1): the motivation for top-N optimization is that
naive evaluation must consider a huge candidate set — typically around
half the collection for a multi-term query.

Reproduced series: candidate-set size (fraction of the collection)
by query length.
"""

import numpy as np

from conftest import record_table


def test_e2_candidate_set_sizes(benchmark, ft_index, ft_queries):
    def measure():
        by_len: dict[int, list[float]] = {}
        for query in ft_queries:
            candidates = ft_index.candidate_documents(list(query.term_ids))
            fraction = len(candidates) / ft_index.n_docs
            by_len.setdefault(len(query.term_ids), []).append(fraction)
        return by_len

    by_len = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    all_fractions = []
    for k in sorted(by_len):
        fractions = by_len[k]
        all_fractions.extend(fractions)
        rows.append([k, len(fractions), float(np.mean(fractions)), float(np.max(fractions))])
    mean_fraction = float(np.mean(all_fractions))
    rows.append(["all", len(all_fractions), mean_fraction, float(np.max(all_fractions))])
    record_table(
        "E2: candidate set size (fraction of collection with >= 1 query term)",
        ["query terms", "queries", "mean fraction", "max fraction"],
        rows,
    )
    # Our benchmark queries use topical rare ("interesting") terms, so
    # their candidate fraction is small in relative terms — but still
    # well above N documents, i.e. exhaustive ranking remains wasteful.
    # The paper's "usually half of all objects" regime (queries with
    # frequent terms) is measured in E2b below.
    assert mean_fraction * ft_index.n_docs > 20


def test_e2_with_frequent_terms(benchmark, ft_index):
    """Queries that include frequent terms (as real user queries do)
    reach the paper's 'half of all objects' regime."""

    def measure():
        df = ft_index.vocabulary.df_array()
        frequent = np.argsort(-df)[:30]
        rng = np.random.default_rng(5)
        fractions = []
        for _ in range(20):
            tids = rng.choice(frequent, size=3, replace=False).tolist()
            candidates = ft_index.candidate_documents([int(t) for t in tids])
            fractions.append(len(candidates) / ft_index.n_docs)
        return float(np.mean(fractions))

    mean_fraction = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_table(
        "E2b: candidate fraction for queries with frequent terms",
        ["query type", "mean fraction of collection"],
        [["3 frequent terms", mean_fraction]],
    )
    assert mean_fraction > 0.4  # the paper's "usually half of all objects"
