"""E3 — the paper's headline fragmentation claim.

Paper basis (Section 3, Step 1): "By processing only a small portion
of the data of approximately 5% of the unfragmented size, containing
the 95% most interesting terms, I was able to speed up query
processing on the FT collection of TREC with at least 60%.  The answer
quality dropped more than 30% due to the unsafe nature of this
technique."

Reproduced rows: small-fragment share of postings volume and
vocabulary; UNSAFE vs UNFRAGMENTED data-touched reduction, wall-time
reduction, and average-precision drop over the query set.
"""

import time

import pytest

from repro.core import QuerySession

from conftest import record_table


@pytest.fixture(scope="module")
def reports(ft_database, ft_queries):
    session = QuerySession(ft_database)
    reference = session.reference_rankings(ft_queries, n=20)
    exact = session.run(ft_queries, n=20, strategy="unfragmented",
                        reference_rankings=reference)
    unsafe = session.run(ft_queries, n=20, strategy="unsafe-small",
                         reference_rankings=reference)
    return exact, unsafe


def test_e3_fragment_sizing(benchmark, ft_database):
    fragmented = benchmark.pedantic(lambda: ft_database.fragmented, rounds=1, iterations=1)
    record_table(
        "E3a: fragment sizing (paper: small fragment ~5% of data, 95% of terms)",
        ["quantity", "paper", "measured"],
        [
            ["small fragment postings share", "~5%", f"{fragmented.small_volume_share():.1%}"],
            ["small fragment vocabulary share", "~95%",
             f"{fragmented.small_vocabulary_share():.1%}"],
        ],
    )
    assert fragmented.small_volume_share() < 0.12
    assert fragmented.small_vocabulary_share() > 0.75


def test_e3_unsafe_speedup_and_quality_drop(benchmark, reports):
    exact, unsafe = benchmark.pedantic(lambda: reports, rounds=1, iterations=1)
    data_reduction = 1.0 - unsafe.tuples_read / exact.tuples_read
    time_reduction = 1.0 - unsafe.total_seconds / exact.total_seconds
    modeled_reduction = 1.0 - unsafe.modeled_seconds / exact.modeled_seconds
    quality_drop = 1.0 - unsafe.mean_average_precision / exact.mean_average_precision
    overlap = unsafe.mean_overlap_vs_reference
    record_table(
        "E3b: UNSAFE small-fragment execution vs unfragmented "
        "(paper: >=60% speedup, >30% quality drop)",
        ["metric", "paper", "measured"],
        [
            ["data touched reduction", ">= 60%", f"{data_reduction:.1%}"],
            ["modeled-time reduction", ">= 60%", f"{modeled_reduction:.1%}"],
            ["wall-time reduction", ">= 60%", f"{time_reduction:.1%}"],
            ["average-precision drop", "> 30%", f"{quality_drop:.1%}"],
            ["top-20 overlap with exact", "(not reported)", f"{overlap:.1%}"],
            ["MAP unfragmented", "-", f"{exact.mean_average_precision:.4f}"],
            ["MAP unsafe", "-", f"{unsafe.mean_average_precision:.4f}"],
        ],
    )
    # the paper's shape: a large cost reduction paid for with a clear
    # quality loss.  The strong thresholds hold at the calibrated scale
    # (<= 0.3, mirroring the author's single measured configuration);
    # at other scales the query-term/fragment-boundary balance shifts
    # and the shape softens (recorded in EXPERIMENTS.md), so the
    # invariant asserted everywhere is direction + magnitude class.
    from conftest import BENCH_SCALE

    if BENCH_SCALE <= 0.3:
        assert data_reduction >= 0.5
        assert modeled_reduction >= 0.5  # the paper's ">= 60% speedup" measure
    else:
        assert data_reduction >= 0.35
        assert modeled_reduction >= 0.3
    assert quality_drop > 0.05
    assert overlap < 1.0


def test_e3_bench_unsafe_query(benchmark, ft_database, ft_queries):
    """Wall-time microbenchmark of one unsafe query (pytest-benchmark
    timing series)."""
    query = max(ft_queries.queries, key=lambda q: len(q.term_ids))
    tids = list(query.term_ids)
    benchmark(lambda: ft_database.search(tids, n=20, strategy="unsafe-small"))


def test_e3_bench_unfragmented_query(benchmark, ft_database, ft_queries):
    query = max(ft_queries.queries, key=lambda q: len(q.term_ids))
    tids = list(query.term_ids)
    benchmark(lambda: ft_database.search(tids, n=20, strategy="unfragmented"))
