"""E4 — the safe switching variant.

Paper basis (Section 3, Step 1): the early quality check "improved the
answer quality significantly but lowered the speed also quite a lot".

Reproduced rows: SAFE_SWITCH quality (≈ unfragmented) and cost
(between UNSAFE and UNFRAGMENTED), switch rate over the query set.
"""

from repro.core import QuerySession

from conftest import record_table


def test_e4_safe_switch(benchmark, ft_database, ft_queries):
    session = QuerySession(ft_database)

    def run_all():
        reference = session.reference_rankings(ft_queries, n=20)
        exact = session.run(ft_queries, n=20, strategy="unfragmented",
                            reference_rankings=reference)
        unsafe = session.run(ft_queries, n=20, strategy="unsafe-small",
                             reference_rankings=reference)
        switch = session.run(ft_queries, n=20, strategy="safe-switch",
                             reference_rankings=reference)
        return exact, unsafe, switch

    exact, unsafe, switch = benchmark.pedantic(run_all, rounds=1, iterations=1)

    switch_rate = sum(
        1 for query in ft_queries
        if ft_database.search(list(query.term_ids), n=20,
                              strategy="safe-switch").result.stats["switched"]
    ) / len(ft_queries)

    quality_recovery = (
        (switch.mean_average_precision - unsafe.mean_average_precision)
        / max(exact.mean_average_precision - unsafe.mean_average_precision, 1e-12)
    )
    record_table(
        "E4: SAFE_SWITCH vs UNSAFE vs UNFRAGMENTED "
        "(paper: quality improved significantly, speed lowered quite a lot)",
        ["strategy", "tuples read", "MAP", "overlap@20"],
        [
            ["unfragmented", exact.tuples_read, exact.mean_average_precision,
             exact.mean_overlap_vs_reference],
            ["unsafe-small", unsafe.tuples_read, unsafe.mean_average_precision,
             unsafe.mean_overlap_vs_reference],
            ["safe-switch", switch.tuples_read, switch.mean_average_precision,
             switch.mean_overlap_vs_reference],
            ["switch rate", f"{switch_rate:.0%}", "-", "-"],
            ["quality gap recovered", f"{quality_recovery:.0%}", "-", "-"],
        ],
    )
    # shape: switching restores most of the quality gap ...
    assert switch.mean_average_precision >= unsafe.mean_average_precision
    assert switch.mean_overlap_vs_reference >= unsafe.mean_overlap_vs_reference
    # ... but is much more expensive than the unsafe plan
    assert switch.tuples_read > unsafe.tuples_read


def test_e4_bench_safe_switch_query(benchmark, ft_database, ft_queries):
    query = max(ft_queries.queries, key=lambda q: len(q.term_ids))
    tids = list(query.term_ids)
    benchmark(lambda: ft_database.search(tids, n=20, strategy="safe-switch"))
