"""E5 — the non-dense index on the large fragment.

Paper basis (Section 3, Step 1): "plan to introduce a non-dense index
in the system to speed up processing the large fragment.  This even
will allow for extra computations while still decreasing execution
time, bringing the answer quality nearer to or even on the same level
as in the unfragmented case."

Reproduced rows: INDEXED strategy touches far less data than
SAFE_SWITCH (which must scan the unindexed large fragment) at equal
answers; non-dense index size relative to the fragment.
"""

import pytest

from repro.core import QuerySession

from conftest import record_table


def test_e5_indexed_vs_scan_switch(benchmark, ft_database, ft_queries):
    session = QuerySession(ft_database)

    def run_all():
        reference = session.reference_rankings(ft_queries, n=20)
        switch = session.run(ft_queries, n=20, strategy="safe-switch",
                             reference_rankings=reference)
        indexed = session.run(ft_queries, n=20, strategy="indexed",
                              reference_rankings=reference)
        exact = session.run(ft_queries, n=20, strategy="unfragmented",
                            reference_rankings=reference)
        return exact, switch, indexed

    exact, switch, indexed = benchmark.pedantic(run_all, rounds=1, iterations=1)
    sparse = ft_database.fragmented.large._sparse_index
    index_ratio = sparse.size_ratio() if sparse is not None else 0.0
    reduction_vs_switch = 1.0 - indexed.tuples_read / switch.tuples_read

    record_table(
        "E5: non-dense index on the large fragment "
        "(paper: extra computations while still decreasing execution time)",
        ["strategy", "tuples read", "MAP", "overlap@20"],
        [
            ["unfragmented", exact.tuples_read, exact.mean_average_precision,
             exact.mean_overlap_vs_reference],
            ["safe-switch (scan)", switch.tuples_read, switch.mean_average_precision,
             switch.mean_overlap_vs_reference],
            ["indexed (non-dense)", indexed.tuples_read, indexed.mean_average_precision,
             indexed.mean_overlap_vs_reference],
            ["index size / fragment", f"{index_ratio:.2%}", "-", "-"],
            ["data reduction vs scan-switch", f"{reduction_vs_switch:.1%}", "-", "-"],
        ],
    )
    # same answers as the scanning switch...
    assert indexed.mean_overlap_vs_reference == pytest.approx(
        switch.mean_overlap_vs_reference, abs=1e-9
    )
    # ...at a small fraction of the data touched, with a tiny index.
    # (Note: our UNFRAGMENTED baseline already enjoys CSR per-term
    # access, so INDEXED does not beat it in tuples; the paper's
    # comparison point — the scanning switch — is beaten by orders of
    # magnitude.  Recorded as a deviation in EXPERIMENTS.md.)
    assert indexed.tuples_read < switch.tuples_read / 10
    assert index_ratio < 0.05


def test_e5_bench_indexed_query(benchmark, ft_database, ft_queries):
    query = max(ft_queries.queries, key=lambda q: len(q.term_ids))
    tids = list(query.term_ids)
    ft_database.search(tids, n=20, strategy="indexed")  # warm: builds index
    benchmark(lambda: ft_database.search(tids, n=20, strategy="indexed"))
