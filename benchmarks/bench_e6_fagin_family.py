"""E6 — Fagin's bound-administration algorithms stop early.

Paper basis (Section 2): "one can take advantage of lists being
ordered when processing top N like operations by maintaining the
proper upper and lower bound administration ... This allows for ending
the processing as soon as it is certain that the required top N
answers have been computed."

Reproduced series: accesses (sorted + random) of FA / TA / NRA vs the
exhaustive baseline, over an N sweep and a source-count sweep, on a
multimedia feature workload.  Expected shape: all safe algorithms read
a small, slowly growing fraction; TA ≤ FA in depth.
"""

import pytest

from repro.mm import color_histograms, feature_source, query_near_cluster, texture_features
from repro.storage import CostCounter
from repro.topn import SUM, combined_topn, fagin_topn, naive_topn_sources, nra_topn, threshold_topn

from conftest import BENCH_SCALE, record_table

N_OBJECTS = max(int(20_000 * BENCH_SCALE), 2000)


@pytest.fixture(scope="module")
def spaces():
    return [
        color_histograms(N_OBJECTS, bins=16, n_clusters=10, seed=61),
        texture_features(N_OBJECTS, dim=8, n_clusters=10, seed=62),
        texture_features(N_OBJECTS, dim=12, n_clusters=10, spread=0.2, seed=63),
    ]


def make_sources(spaces, m, seed):
    sources = []
    for i, space in enumerate(spaces[:m]):
        query = query_near_cluster(space, cluster=seed % 10, seed=seed + i)
        sources.append(feature_source(space, query, measure="l2"))
    return sources


def measured_accesses(func, sources, n):
    with CostCounter.activate() as cost:
        result = func(sources, n, SUM)
    return result, cost.total_accesses


def test_e6_access_counts_vs_n(benchmark, spaces):
    def sweep():
        rows = []
        for n in (1, 10, 25, 100):
            naive_result, naive_accesses = measured_accesses(
                naive_topn_sources, make_sources(spaces, 2, 3), n)
            fa_result, fa_accesses = measured_accesses(
                fagin_topn, make_sources(spaces, 2, 3), n)
            ta_result, ta_accesses = measured_accesses(
                threshold_topn, make_sources(spaces, 2, 3), n)
            nra_result, nra_accesses = measured_accesses(
                nra_topn, make_sources(spaces, 2, 3), n)
            ca_result, ca_accesses = measured_accesses(
                lambda s_, n_, a_: combined_topn(s_, n_, a_, h=8),
                make_sources(spaces, 2, 3), n)
            assert fa_result.same_ranking(naive_result)
            assert ta_result.same_ranking(naive_result)
            assert nra_result.same_set(naive_result)
            assert ca_result.same_set(naive_result)
            rows.append([n, naive_accesses, fa_accesses, ta_accesses,
                         nra_accesses, ca_accesses])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        f"E6a: accesses vs N ({N_OBJECTS} objects, 2 sources; all safe, exact answers)",
        ["N", "naive", "FA", "TA", "NRA (sorted only)", "CA (h=8)"],
        rows,
    )
    for n, naive, fa, ta, nra, ca in rows:
        assert ta < naive  # bound administration beats exhaustive scoring
        assert fa < 3 * naive  # FA phase 2 random accesses can be heavy but bounded
    # accesses grow sublinearly in N for TA
    n_small = rows[0][3]
    n_big = rows[-1][3]
    assert n_big < (rows[-1][0] / rows[0][0]) * max(n_small, 1) * 5


def test_e6_access_counts_vs_sources(benchmark, spaces):
    def sweep():
        rows = []
        for m in (1, 2, 3):
            naive_result, naive_accesses = measured_accesses(
                naive_topn_sources, make_sources(spaces, m, 5), 10)
            fa_result, fa_accesses = measured_accesses(
                fagin_topn, make_sources(spaces, m, 5), 10)
            ta_result, ta_accesses = measured_accesses(
                threshold_topn, make_sources(spaces, m, 5), 10)
            assert ta_result.same_ranking(naive_result)
            rows.append([m, naive_accesses, fa_accesses, ta_accesses])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "E6b: accesses vs number of graded sources (N=10)",
        ["sources m", "naive", "FA", "TA"],
        rows,
    )
    for m, naive, fa, ta in rows:
        assert ta < naive


def test_e6_bench_ta(benchmark, spaces):
    benchmark(lambda: threshold_topn(make_sources(spaces, 2, 9), 10, SUM))


def test_e6_bench_naive(benchmark, spaces):
    benchmark(lambda: naive_topn_sources(make_sources(spaces, 2, 9), 10, SUM))
