"""E7 — Carey–Kossmann STOP AFTER: reducing the braking distance.

Paper basis (Section 2, [CK98]): relational top-N via STOP AFTER
operators; "the ordering of elements is also exploited to stop
processing earlier when only a top N of best answers is required".

Reproduced series: tuples flowing through the plan ("braking
distance") for the classic sort plan, the sort-stop plan, and the
scan-stop plan over a pre-ordered input, across a K sweep; plus the
conservative vs aggressive stop placement around a filter with its
restart counts.
"""

import numpy as np
import pytest

from repro.storage import BAT, CostCounter, kernel
from repro.topn import classic_topn, scan_stop, sort_stop, stop_after_filter

from conftest import BENCH_SCALE, record_table

N_ROWS = max(int(200_000 * BENCH_SCALE), 20_000)


@pytest.fixture(scope="module")
def scores():
    return BAT(np.random.default_rng(71).random(N_ROWS), persistent=True)


@pytest.fixture(scope="module")
def ordered_scores(scores):
    return kernel.sort_tail(scores, descending=True)


def test_e7_braking_distance(benchmark, scores, ordered_scores):
    def sweep():
        rows = []
        for k in (1, 10, 100, 1000):
            with CostCounter.activate() as classic_cost:
                classic = classic_topn(scores, k)
            with CostCounter.activate() as stop_cost:
                stopped = sort_stop(scores, k)
            with CostCounter.activate() as scan_cost_counter:
                scanned = scan_stop(ordered_scores, k)
            assert stopped.same_ranking(classic)
            assert scanned.same_ranking(classic)
            rows.append([
                k,
                classic_cost.comparisons,
                stop_cost.comparisons,
                scan_cost_counter.tuples_read,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        f"E7a: braking distance over {N_ROWS:,} rows "
        "(comparisons for sort plans; tuples for scan-stop)",
        ["K", "classic sort+slice", "sort-stop (partial)", "scan-stop (pre-ordered)"],
        rows,
    )
    for k, classic, stop, scan in rows:
        assert stop < classic  # folding STOP into the sort always wins
        assert scan <= k  # pre-ordered input: read exactly the prefix


def test_e7_stop_placement_policies(benchmark, scores):
    attrs = BAT(np.random.default_rng(72).integers(0, 100, N_ROWS), persistent=True)

    def sweep():
        rows = []
        for lo, hi, label in ((5, 95, "loose (90%)"), (0, 9, "medium (10%)"), (0, 0, "tight (1%)")):
            with CostCounter.activate() as conservative_cost:
                conservative = stop_after_filter(scores, attrs, 20, lo, hi,
                                                 policy="conservative")
            with CostCounter.activate() as aggressive_cost:
                aggressive = stop_after_filter(scores, attrs, 20, lo, hi,
                                               policy="aggressive")
            assert aggressive.same_ranking(conservative)
            rows.append([
                label,
                conservative_cost.tuples_read,
                aggressive_cost.tuples_read,
                aggressive.stats["restarts"],
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "E7b: STOP placement around a filter (conservative vs aggressive + restarts)",
        ["filter selectivity", "conservative tuples", "aggressive tuples", "restarts"],
        rows,
    )
    # shape: aggressive wins on loose filters, pays restarts on tight ones
    assert rows[0][2] < rows[0][1]
    assert rows[2][3] >= 1


def test_e7_bench_sort_stop(benchmark, scores):
    benchmark(lambda: sort_stop(scores, 10))


def test_e7_bench_classic(benchmark, scores):
    benchmark(lambda: classic_topn(scores, 10))
