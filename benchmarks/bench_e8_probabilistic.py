"""E8 — Donjerkovic–Ramakrishnan probabilistic top-N.

Paper basis (Section 2, [DR99]): convert the top-N into a selection
with a histogram-derived score cutoff; restart when the guess was too
aggressive.

Reproduced series: fraction of the table scanned and restart counts
across an N sweep and a histogram-resolution sweep; cost vs the
sort-stop plan.
"""

import numpy as np
import pytest

from repro.storage import BAT, CostCounter
from repro.topn import ScoreHistogram, probabilistic_topn, sort_stop

from conftest import BENCH_SCALE, record_table

N_ROWS = max(int(200_000 * BENCH_SCALE), 20_000)


@pytest.fixture(scope="module")
def sorted_scores():
    values = np.sort(np.random.default_rng(81).normal(0.5, 0.2, N_ROWS))
    return BAT(values, tail_sorted=True, persistent=True)


@pytest.fixture(scope="module")
def histogram(sorted_scores):
    return ScoreHistogram(sorted_scores.tail, n_buckets=128)


def test_e8_fraction_scanned_vs_n(benchmark, sorted_scores, histogram):
    def sweep():
        rows = []
        for n in (1, 10, 100, 1000):
            with CostCounter.activate() as prob_cost:
                result = probabilistic_topn(sorted_scores, n, histogram)
            with CostCounter.activate() as sort_cost:
                reference = sort_stop(sorted_scores.clone_with(tail_sorted=False), n)
            assert result.same_ranking(reference)
            rows.append([
                n,
                result.stats["fraction_scanned"],
                result.stats["restarts"],
                prob_cost.tuples_read,
                sort_cost.tuples_read,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        f"E8a: probabilistic top-N over {N_ROWS:,} rows (exact answers via restarts)",
        ["N", "fraction scanned", "restarts", "tuples (probabilistic)", "tuples (sort-stop)"],
        rows,
    )
    for n, fraction, restarts, prob_tuples, sort_tuples in rows:
        assert fraction < 0.2  # the cutoff turns top-N into a tiny selection
        assert prob_tuples < sort_tuples


def test_e8_histogram_resolution(benchmark, sorted_scores):
    def sweep():
        rows = []
        for buckets in (4, 16, 64, 256):
            histogram = ScoreHistogram(sorted_scores.tail, n_buckets=buckets)
            with CostCounter.activate() as cost:
                result = probabilistic_topn(sorted_scores, 50, histogram)
            rows.append([
                buckets,
                result.stats["fraction_scanned"],
                result.stats["restarts"],
                cost.tuples_read,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "E8b: histogram resolution vs waste (N=50)",
        ["buckets", "fraction scanned", "restarts", "tuples read"],
        rows,
    )
    # finer histograms waste less: monotone (within noise) decrease
    assert rows[-1][1] <= rows[0][1] + 1e-9


def test_e8_stale_statistics_restart(benchmark, sorted_scores):
    """Restart behaviour under deliberately stale statistics: answers
    stay exact, restarts absorb the estimation error."""

    def run():
        stale = ScoreHistogram(sorted_scores.tail + 0.5, n_buckets=64)
        result = probabilistic_topn(sorted_scores, 100, stale, slack=1.0)
        reference = sort_stop(sorted_scores.clone_with(tail_sorted=False), 100)
        assert result.same_ranking(reference)
        return result.stats["restarts"]

    restarts = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "E8c: stale histogram (shifted by +0.5)",
        ["restarts needed", "answers"],
        [[restarts, "exact"]],
    )
    assert restarts >= 1


def test_e8_bench_probabilistic(benchmark, sorted_scores, histogram):
    benchmark(lambda: probabilistic_topn(sorted_scores, 10, histogram))
