"""E9 — the inter-object rewrite of the paper's Example 1.

Paper basis (Section 3, Step 2): "consider the expression
select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4).  Current optimizer
technology, including the E-ADT system of PREDATOR, cannot optimize
this expression.  However, ... projecttobag(select([...], 2, 4))
produces exactly the same answer but can be executed more efficient
... even more efficiently when the system is aware of the ordering of
the elements."

Reproduced series: measured cost of the original vs the rewritten plan
across a selectivity sweep, on a sorted LIST (order-aware select) and
an unsorted LIST; the optimizer's own rewrite trace.
"""

import numpy as np
import pytest

from repro.algebra import evaluate, make_list, parse
from repro.optimizer import Optimizer
from repro.storage import CostCounter

from conftest import BENCH_SCALE, record_table

N_ELEMENTS = max(int(500_000 * BENCH_SCALE), 50_000)


@pytest.fixture(scope="module")
def sorted_list():
    return make_list(list(range(N_ELEMENTS)))


@pytest.fixture(scope="module")
def unsorted_list():
    values = np.random.default_rng(91).permutation(N_ELEMENTS).tolist()
    return make_list(values)


def run_cost(expr_text, env):
    expr = parse(expr_text)
    with CostCounter.activate() as cost:
        result = evaluate(expr, env)
    return result, cost


def test_e9_selectivity_sweep(benchmark, sorted_list):
    def sweep():
        rows = []
        for selectivity in (0.0001, 0.001, 0.01, 0.1):
            span = int(N_ELEMENTS * selectivity)
            bad_text = f"select(projecttobag(xs), 1000, {1000 + span})"
            good_text = f"projecttobag(select(xs, 1000, {1000 + span}))"
            env = {"xs": sorted_list}
            bad_result, bad_cost = run_cost(bad_text, env)
            good_result, good_cost = run_cost(good_text, env)
            assert bad_result.equals(good_result)
            rows.append([
                f"{selectivity:.2%}",
                bad_cost.tuples_read,
                good_cost.tuples_read,
                bad_cost.tuples_read / max(good_cost.tuples_read, 1),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        f"E9a: Example-1 rewrite on a sorted LIST of {N_ELEMENTS:,} elements",
        ["selectivity", "original plan tuples", "rewritten plan tuples", "speedup"],
        rows,
    )
    # order-aware select makes the rewrite dominant; the win shrinks
    # toward 1/selectivity as the selected range grows
    for (_, bad, good, speedup), min_speedup in zip(rows, (100, 100, 50, 8)):
        assert speedup > min_speedup


def test_e9_unsorted_input_still_wins(benchmark, unsorted_list):
    """Without order-awareness the rewrite still wins (the conversion
    processes fewer elements), just far less dramatically."""

    def run():
        env = {"xs": unsorted_list}
        bad_result, bad_cost = run_cost("select(projecttobag(xs), 1000, 2000)", env)
        good_result, good_cost = run_cost("projecttobag(select(xs, 1000, 2000))", env)
        assert bad_result.equals(good_result)
        return bad_cost.tuples_read, good_cost.tuples_read

    bad, good = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "E9b: the same rewrite on an unsorted LIST",
        ["plan", "tuples read"],
        [["select(projecttobag(xs), ...)", bad],
         ["projecttobag(select(xs, ...))", good]],
    )
    assert good <= bad


def test_e9_optimizer_finds_rewrite(benchmark, sorted_list):
    optimizer = Optimizer()
    env = {"xs": sorted_list}
    expr = parse("select(projecttobag(xs), 1000, 2000)")

    report = benchmark.pedantic(lambda: optimizer.optimize(expr, env),
                                rounds=1, iterations=1)
    record_table(
        "E9c: optimizer trace for Example 1",
        ["step", "value"],
        [
            ["original", str(report.original)],
            ["optimized", str(report.optimized)],
            ["rules fired", ", ".join(report.rules_fired())],
            ["estimated speedup", f"x{report.estimated_speedup:.0f}"],
        ],
    )
    assert str(report.optimized) == "projecttobag(select(xs, 1000, 2000))"
    assert report.estimated_speedup > 5


def test_e9_bench_original_plan(benchmark, sorted_list):
    expr = parse("select(projecttobag(xs), 1000, 2000)")
    benchmark(lambda: evaluate(expr, {"xs": sorted_list}))


def test_e9_bench_rewritten_plan(benchmark, sorted_list):
    expr = parse("projecttobag(select(xs, 1000, 2000))")
    benchmark(lambda: evaluate(expr, {"xs": sorted_list}))
