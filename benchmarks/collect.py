"""Merge the per-experiment JSON tables into one ``BENCH_RESULTS.json``.

Every ``benchmarks/bench_e*.py`` run writes its table(s) to
``benchmarks/results/<slug>.json`` (see ``record_table`` in
``conftest.py``).  This script collects them, sorted by slug, into a
single machine-readable file at the repository root::

    PYTHONPATH=src python -m pytest benchmarks/ -q
    python benchmarks/collect.py            # -> BENCH_RESULTS.json

Run it from anywhere; paths are anchored to this file's location.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parent.parent / "BENCH_RESULTS.json"


def collect(results_dir: Path = RESULTS_DIR, output: Path = OUTPUT) -> dict:
    """Merge every ``results/*.json`` table; returns the payload."""
    tables = []
    for path in sorted(results_dir.glob("*.json")):
        with open(path) as fh:
            tables.append(json.load(fh))
    payload = {
        "source": "benchmarks/results",
        "tables": tables,
    }
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def main() -> int:
    if not RESULTS_DIR.is_dir() or not any(RESULTS_DIR.glob("*.json")):
        print("no JSON tables under benchmarks/results/ — run the "
              "benchmarks first: PYTHONPATH=src python -m pytest benchmarks/ -q",
              file=sys.stderr)
        return 1
    payload = collect()
    print(f"merged {len(payload['tables'])} table(s) into {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
