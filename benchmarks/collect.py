"""Merge the per-experiment JSON tables into one ``BENCH_RESULTS.json``.

Every ``benchmarks/bench_e*.py`` run writes its table(s) to
``benchmarks/results/<slug>.json`` (see ``record_table`` in
``conftest.py``).  This script collects them, sorted by slug, into a
single machine-readable file at the repository root::

    PYTHONPATH=src python -m pytest benchmarks/ -q
    python benchmarks/collect.py            # -> BENCH_RESULTS.json

Run it from anywhere; paths are anchored to this file's location.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parent.parent / "BENCH_RESULTS.json"


#: keys every recorded table must carry (see conftest.record_table)
REQUIRED_KEYS = ("slug", "title", "headers", "rows")


def collect(results_dir: Path = RESULTS_DIR, output: Path = OUTPUT) -> dict:
    """Merge every ``results/*.json`` table; returns the payload.

    A missing, truncated or hand-damaged per-experiment file (an
    interrupted bench run leaves those behind) is *skipped with a
    warning* rather than aborting the merge — the other experiments'
    tables still make it into ``BENCH_RESULTS.json``.

    Tables already in ``BENCH_RESULTS.json`` whose per-experiment file
    is gone (a partial bench run only regenerates some results) are
    kept: a fresh run of one experiment updates its table without
    erasing the others."""
    existing: dict[str, dict] = {}
    if output.is_file():
        try:
            with open(output) as fh:
                previous = json.load(fh)
            for table in previous.get("tables", []):
                if isinstance(table, dict) and "slug" in table:
                    existing[table["slug"]] = table
        except (OSError, json.JSONDecodeError) as exc:
            print(f"collect: ignoring unreadable {output.name}: {exc}",
                  file=sys.stderr)
    skipped = 0
    for path in sorted(results_dir.glob("*.json")):
        try:
            with open(path) as fh:
                table = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"collect: skipping {path.name}: {exc}", file=sys.stderr)
            skipped += 1
            continue
        missing = [key for key in REQUIRED_KEYS
                   if not isinstance(table, dict) or key not in table]
        if missing:
            print(f"collect: skipping {path.name}: not a recorded table "
                  f"(missing {', '.join(missing)})", file=sys.stderr)
            skipped += 1
            continue
        existing[table["slug"]] = table
    payload = {
        "source": "benchmarks/results",
        "skipped": skipped,
        "tables": [existing[slug] for slug in sorted(existing)],
    }
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def main() -> int:
    if not RESULTS_DIR.is_dir() or not any(RESULTS_DIR.glob("*.json")):
        print("no JSON tables under benchmarks/results/ — run the "
              "benchmarks first: PYTHONPATH=src python -m pytest benchmarks/ -q",
              file=sys.stderr)
        return 1
    payload = collect()
    note = (f" ({payload['skipped']} unreadable file(s) skipped)"
            if payload["skipped"] else "")
    print(f"merged {len(payload['tables'])} table(s) into {OUTPUT}{note}")
    if not payload["tables"]:
        print("collect: no readable tables — nothing merged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
