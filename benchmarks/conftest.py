"""Shared infrastructure for the experiment benchmarks.

Each ``bench_eXX_*.py`` module reproduces one experiment from the
DESIGN.md index.  Experiments print their result tables through
:func:`record_table`, which (a) stores them for the end-of-run summary
(visible in ``pytest benchmarks/ --benchmark-only`` output) and
(b) writes them to ``benchmarks/results/`` — both as aligned text
(``<slug>.txt``) and as machine-readable JSON (``<slug>.json``, the
title/headers/rows verbatim plus the workload scale).  Run
``python benchmarks/collect.py`` afterwards to merge every JSON table
into ``BENCH_RESULTS.json`` at the repo root.

``REPRO_BENCH_SCALE`` (default ``0.15``) scales the FT-like workload;
1.0 is the full 20k-document stand-in.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import MMDatabase
from repro.ir import InvertedIndex
from repro.workloads import SyntheticCollection, generate_queries, trec

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))
RESULTS_DIR = Path(__file__).parent / "results"

_TABLES: list[str] = []


def fmt_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _fmt_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.3f}"
    return str(cell)


def record_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Record an experiment table for the run summary and results dir,
    as both aligned text and machine-readable JSON."""
    import json

    table = fmt_table(title, headers, rows)
    _TABLES.append(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = title.split(":")[0].strip().lower().replace(" ", "_")
    with open(RESULTS_DIR / f"{slug}.txt", "w") as fh:
        fh.write(table + "\n")
    payload = {
        "slug": slug,
        "title": title,
        "scale": BENCH_SCALE,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
    }
    with open(RESULTS_DIR / f"{slug}.json", "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return table


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 70)
    terminalreporter.write_line("EXPERIMENT TABLES (paper-shape reproduction)")
    terminalreporter.write_line("=" * 70)
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)


# -- shared workloads --------------------------------------------------------


@pytest.fixture(scope="session")
def ft_collection():
    """The FT-like collection used by the text experiments."""
    return SyntheticCollection.generate(trec.ft_like(scale=BENCH_SCALE, seed=2000))


@pytest.fixture(scope="session")
def ft_index(ft_collection):
    return InvertedIndex.build(ft_collection)


@pytest.fixture(scope="session")
def ft_queries(ft_collection):
    return generate_queries(ft_collection, n_queries=40, terms_range=(3, 8),
                            rare_bias=3.0, seed=7)


@pytest.fixture(scope="session")
def ft_database(ft_collection):
    database = MMDatabase.from_collection(ft_collection)
    database.fragment()
    return database
