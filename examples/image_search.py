"""Multimedia search: multi-feature top-N with Fagin's algorithms.

Run with::

    python examples/image_search.py

Simulates an image archive: every document carries a color histogram
and a texture vector (synthetic, with planted clusters standing in for
visual similarity).  A query asks for the N objects best matching a
color example AND a texture example; the three Fagin-family
algorithms answer it without scoring the whole archive, and a combined
query mixes text terms with feature similarity — the paper's
"integrated top N queries on several content types".
"""

from repro.core import MMDatabase
from repro.mm import color_histograms, query_near_cluster, texture_features
from repro.storage import CostCounter
from repro.topn import WeightedSum
from repro.workloads import SyntheticCollection, generate_queries, trec


def main() -> None:
    collection = SyntheticCollection.generate(trec.tiny(seed=42))
    db = MMDatabase.from_collection(collection)

    # attach two feature spaces (the "multimedia" content)
    color = color_histograms(len(collection), bins=16, n_clusters=8, seed=1)
    texture = texture_features(len(collection), dim=8, n_clusters=8, seed=2)
    db.add_feature_space(color)
    db.add_feature_space(texture)
    print(f"archive: {len(collection)} objects, "
          f"features: {sorted(db.feature_spaces)}\n")

    # a query "image": vectors near cluster 3 in both spaces
    color_query = query_near_cluster(color, cluster=3, seed=10)
    texture_query = query_near_cluster(texture, cluster=3, seed=11)
    queries = {"color": color_query, "texture": texture_query}

    print("top-5 by combined color+texture similarity:")
    for algorithm in ("fa", "ta", "nra"):
        with CostCounter.activate() as cost:
            result = db.feature_search(queries, n=5, algorithm=algorithm)
        print(f"  {algorithm.upper():<4} accesses={cost.total_accesses:>6} "
              f"(sorted={cost.sorted_accesses}, random={cost.random_accesses}) "
              f"-> {result.doc_ids}")

    # how many of the hits are actually from the queried cluster?
    result = db.feature_search(queries, n=5, algorithm="ta")
    in_cluster = sum(1 for d in result.doc_ids if color.cluster_of[d] == 3)
    print(f"\n{in_cluster}/5 hits come from the queried visual cluster")

    # user-weighted aggregation ([FM]: users weight search terms):
    # color matters 3x as much as texture
    weighted = db.feature_search(queries, n=5, algorithm="ta",
                                 agg=WeightedSum([3.0, 1.0]))
    print(f"color-weighted top-5: {weighted.doc_ids}")

    # integrated content query: text terms + a feature example
    text_query = generate_queries(collection, n_queries=1, seed=5).queries[0]
    combined = db.combined_search(text_query.text(collection),
                                  {"color": color_query}, n=5, algorithm="ta")
    print(f"\ncombined text+color query {text_query.text(collection)!r}:")
    for rank, item in enumerate(combined.hits, start=1):
        print(f"  {rank}. doc {item.obj_id} score {item.score:.3f}")


if __name__ == "__main__":
    main()
