"""The three-layer optimizer at work, including the paper's Example 1.

Run with::

    python examples/optimizer_playground.py

Feeds algebra expressions (written in the textual syntax) through the
logical / inter-object / intra-object pipeline, shows the rewrite
traces and cost estimates, and verifies the chosen plans return the
same answers faster.
"""

import numpy as np

from repro.algebra import evaluate, make_bag, make_list, parse
from repro.optimizer import Optimizer
from repro.storage import CostCounter


def show(optimizer, text, env) -> None:
    expr = parse(text)
    report = optimizer.optimize(expr, env)
    print("=" * 72)
    print(report.describe())
    with CostCounter.activate() as before:
        original_value = evaluate(report.original, env)
    with CostCounter.activate() as after:
        optimized_value = evaluate(report.optimized, env)
    assert original_value.equals(optimized_value)
    print(f"measured tuples: {before.tuples_read:,} -> {after.tuples_read:,}  "
          f"comparisons: {before.comparisons:,} -> {after.comparisons:,}")
    print()


def main() -> None:
    optimizer = Optimizer()
    rng = np.random.default_rng(0)

    sorted_list = make_list(list(range(200_000)))
    score_bag = make_bag(rng.random(100_000).tolist())
    env = {"xs": sorted_list, "scores": score_bag}

    # 1. the paper's Example 1, verbatim (small literal)
    print("Example 1 from the paper, literally:")
    expr = parse("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
    report = optimizer.optimize(expr)
    print(f"  {report.original}  =>  {report.optimized}")
    print(f"  result: {sorted(evaluate(report.optimized).to_python())}\n")

    # 2. the same rewrite where it matters: a 200k-element sorted LIST
    show(optimizer, "select(projecttobag(xs), 1000, 1200)", env)

    # 3. top-N through the stack: slice-of-sort becomes the special
    #    top-N operator (Step 1's "special select operator")
    show(optimizer, "slice(sort(scores, 1), 0, 10)", env)

    # 4. all three layers in one query
    show(optimizer,
         "topn(sort(select(select(projecttobag(xs), 0, 150000), 500, 100000), 1), 5)",
         env)

    # 5. aggregates skip content-preserving conversions
    show(optimizer, "count(projecttobag(select(xs, 0, 777)))", env)


if __name__ == "__main__":
    main()
