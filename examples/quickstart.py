"""Quickstart: build a multimedia database and run top-N queries.

Run with::

    python examples/quickstart.py

Builds a small synthetic text collection, indexes it, fragments the
inverted file the way the paper's Step 1 describes, and compares the
execution strategies on a few queries.
"""

from repro.core import MMDatabase
from repro.storage import CostCounter
from repro.workloads import SyntheticCollection, generate_queries, trec


def main() -> None:
    # 1. a synthetic TREC-like collection (Zipf terms, planted topics)
    collection = SyntheticCollection.generate(trec.small(seed=7))
    print(f"collection: {collection.n_docs} docs, "
          f"{collection.n_terms} terms, {collection.total_tokens():,} tokens")

    # 2. the database: inverted index + BM25, then Step-1 fragmentation
    db = MMDatabase.from_collection(collection)
    db.fragment()  # small "interesting" fragment + large heap fragment
    stats = db.stats()
    print(f"fragmented: small fragment holds "
          f"{stats['small_volume_share']:.1%} of postings but "
          f"{stats['small_vocabulary_share']:.1%} of the vocabulary\n")

    # 3. run one query under every strategy
    queries = generate_queries(collection, n_queries=5, rare_bias=3.0, seed=3)
    query = queries.queries[0]
    print(f"query {query.query_id}: {query.text(collection)!r}\n")

    for strategy in ("unfragmented", "unsafe-small", "safe-switch", "indexed"):
        with CostCounter.activate() as cost:
            result = db.search(list(query.term_ids), n=10, strategy=strategy)
        flags = "safe" if result.safe else "UNSAFE"
        print(f"{strategy:<14} [{flags:>6}] tuples={cost.tuples_read:>9,} "
              f"time={result.elapsed_seconds * 1000:6.1f}ms "
              f"top3={result.doc_ids[:3]}")

    # 4. details of the best run
    print("\nfull result (indexed strategy):")
    print(db.search(list(query.term_ids), n=10, strategy="indexed").describe())


if __name__ == "__main__":
    main()
