"""Relational top-N: STOP AFTER and probabilistic optimization.

Run with::

    python examples/relational_topn.py

Simulates the database-side techniques the paper surveys ([CK98],
[DR99]) on a relational score table: how much of the plan each policy
lets tuples flow through ("braking distance"), and how a histogram
turns a top-N into a tiny indexed selection.
"""

import numpy as np

from repro.storage import BAT, CostCounter, SparseIndex, kernel
from repro.topn import (
    ScoreHistogram,
    classic_topn,
    probabilistic_topn,
    scan_stop,
    sort_stop,
    stop_after_filter,
)

N_ROWS = 200_000
N = 25


def main() -> None:
    rng = np.random.default_rng(42)
    scores = BAT(rng.normal(0.5, 0.2, N_ROWS), persistent=True)
    years = BAT(rng.integers(1990, 2000, N_ROWS), persistent=True)
    print(f"relation: {N_ROWS:,} rows (score, year); top N={N}\n")

    # 1. STOP AFTER placement in the sort
    print("-- STOP AFTER in the sort (Carey-Kossmann) --")
    for label, func in (("classic sort+slice", classic_topn),
                        ("sort-stop (partial sort)", sort_stop)):
        with CostCounter.activate() as cost:
            result = func(scores, N)
        print(f"{label:<26} comparisons={cost.comparisons:>10,} "
              f"best={result.scores[0]:.4f}")
    ordered = kernel.sort_tail(scores, descending=True)
    with CostCounter.activate() as cost:
        scan_stop(ordered, N)
    print(f"{'scan-stop (pre-ordered)':<26} tuples={cost.tuples_read:>14,}\n")

    # 2. STOP placement around a filter, conservative vs aggressive
    print("-- STOP placement around a filter: year in [1990, 1994] --")
    for policy in ("conservative", "aggressive"):
        with CostCounter.activate() as cost:
            result = stop_after_filter(scores, years, N, 1990, 1994, policy=policy)
        print(f"{policy:<14} tuples={cost.tuples_read:>10,} "
              f"restarts={result.stats['restarts']}")
    print()

    # 3. probabilistic top-N (Donjerkovic-Ramakrishnan)
    print("-- probabilistic top-N over a score-clustered index --")
    sorted_scores = kernel.sort_tail(scores)  # ascending clustered index
    histogram = ScoreHistogram(sorted_scores.tail, n_buckets=128)
    with CostCounter.activate() as prob_cost:
        result = probabilistic_topn(sorted_scores, N, histogram)
    with CostCounter.activate() as sort_cost:
        reference = sort_stop(scores, N)
    assert result.same_ranking(reference)
    print(f"cutoff {result.stats['cutoff']:.4f}: scanned "
          f"{result.stats['fraction_scanned']:.2%} of the table "
          f"({prob_cost.tuples_read:,} tuples vs {sort_cost.tuples_read:,}), "
          f"restarts={result.stats['restarts']}, answers exact")

    # 4. same, through the non-dense index of the paper's Step 1
    sparse = SparseIndex(sorted_scores)
    from repro.topn import probabilistic_topn_indexed

    with CostCounter.activate() as cost:
        indexed = probabilistic_topn_indexed(sparse, N, histogram)
    assert indexed.same_ranking(reference)
    print(f"via non-dense index ({sparse.size_ratio():.2%} of the data): "
          f"{cost.tuples_read:,} tuples, answers exact")


if __name__ == "__main__":
    main()
