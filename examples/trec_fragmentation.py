"""The paper's Step-1 experiment, end to end.

Run with::

    python examples/trec_fragmentation.py [scale]

Rebuilds the fragmentation study on an FT-like synthetic collection:
Zipf analysis, the 95%-volume fragmentation, and all four execution
strategies measured for cost and answer quality — the numbers behind
the paper's "≥60% speedup / >30% quality drop / switch restores
quality / non-dense index makes it cheap" narrative.
"""

import sys

from repro.core import MMDatabase, QuerySession
from repro.ir import InvertedIndex, fit_zipf
from repro.workloads import SyntheticCollection, generate_queries, trec


def main(scale: float = 0.1) -> None:
    print(f"generating FT-like collection (scale={scale}) ...")
    collection = SyntheticCollection.generate(trec.ft_like(scale=scale, seed=7))
    db = MMDatabase.from_collection(collection)
    queries = generate_queries(collection, n_queries=30, terms_range=(3, 8),
                               rare_bias=3.0, seed=11)

    # the Zipf premise
    cf = db.index.vocabulary.cf_array()
    fit = fit_zipf(cf[cf > 0], min_frequency=3)
    print(f"Zipf fit: exponent={fit.exponent:.2f}, r^2={fit.r_squared:.3f}")

    # Step 1: fragment at the 95% postings-volume cut
    db.fragment(volume_cut=0.95)
    fragmented = db.fragmented
    print(f"small fragment: {fragmented.small_volume_share():.1%} of postings, "
          f"{fragmented.small_vocabulary_share():.1%} of the vocabulary\n")

    session = QuerySession(db)
    reference = session.reference_rankings(queries, n=20)

    print(f"{'strategy':<15} {'tuples read':>12} {'time(ms)':>9} "
          f"{'MAP':>7} {'overlap@20':>11}")
    reports = {}
    for strategy in ("unfragmented", "unsafe-small", "safe-switch", "indexed"):
        report = session.run(queries, n=20, strategy=strategy,
                             reference_rankings=reference)
        reports[strategy] = report
        print(f"{strategy:<15} {report.tuples_read:>12,} "
              f"{report.total_seconds * 1000:>9.1f} "
              f"{report.mean_average_precision:>7.4f} "
              f"{report.mean_overlap_vs_reference:>11.3f}")

    exact = reports["unfragmented"]
    unsafe = reports["unsafe-small"]
    print("\npaper claims vs this run:")
    print(f"  data processed reduction: paper >=60%, "
          f"measured {1 - unsafe.tuples_read / exact.tuples_read:.1%}")
    print(f"  quality (AP) drop:        paper >30%, measured "
          f"{1 - unsafe.mean_average_precision / exact.mean_average_precision:.1%}")
    switch = reports["safe-switch"]
    print(f"  switch restores quality:  MAP {switch.mean_average_precision:.4f} "
          f"vs exact {exact.mean_average_precision:.4f}, at "
          f"{switch.tuples_read / exact.tuples_read:.0f}x the data of exact")
    indexed = reports["indexed"]
    print(f"  non-dense index:          same answers at "
          f"{indexed.tuples_read / switch.tuples_read:.2%} of the switch's data")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
