"""Setup shim so legacy editable installs work offline (no `wheel` package
is available in this environment, which the PEP 517 editable path needs)."""

from setuptools import setup

setup()
