"""repro — reproduction of *"Top N optimization issues in MM databases"*
(H.E. Blok, EDBT 2000 PhD Workshop).

The library implements, from scratch, the full system the paper
describes or depends on:

* :mod:`repro.storage` — a MonetDB-style binary-table (BAT) kernel with
  a simulated, page-granular cost model;
* :mod:`repro.algebra` — a Moa-style extensible structured object
  algebra (ATOMIC / TUPLE / SET / BAG / LIST) flattened onto BATs;
* :mod:`repro.ir` — text-retrieval substrate (inverted index, tf-idf /
  BM25 / language-model ranking, Zipf analysis);
* :mod:`repro.mm` — multimedia feature-space substrate (synthetic
  features, distances, sorted/random-access score sources);
* :mod:`repro.topn` — safe and unsafe top-N operators: naive scan,
  Fagin's FA, TA, NRA, Brown/INQUERY-style quit/continue pruning,
  Carey–Kossmann STOP AFTER, Donjerkovic–Ramakrishnan probabilistic
  top-N;
* :mod:`repro.fragmentation` — the paper's Step 1: Zipf-based
  horizontal fragmentation with unsafe, safe-switching and sparse-index
  execution strategies;
* :mod:`repro.optimizer` — the paper's Steps 2+3: a three-layer
  optimizer (general logical rules, the novel *inter-object* layer, and
  E-ADT-style intra-object optimizers) with a centralized cost model;
* :mod:`repro.quality` — retrieval-quality metrics;
* :mod:`repro.workloads` — synthetic TREC-like collection and query
  generators;
* :mod:`repro.core` — the :class:`~repro.core.database.MMDatabase`
  facade tying everything together.

Quickstart::

    from repro import MMDatabase
    from repro.workloads import SyntheticCollection

    collection = SyntheticCollection.generate(n_docs=2000, seed=7)
    db = MMDatabase.from_collection(collection)
    result = db.search("query terms here", n=10)
    for hit in result.hits:
        print(hit.doc_id, hit.score)
"""

from .errors import ReproError
from . import sync as _sync

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]

# opt-in race sanitizer: REPRO_SANITIZE=1 instruments declared shared
# state before any class is instantiated (free when the env var is off)
_sync.auto_install()


def __getattr__(name):
    # Lazy re-exports keep `import repro` cheap while still offering the
    # convenient flat API documented in the README.
    if name == "MMDatabase":
        from .core.database import MMDatabase

        return MMDatabase
    if name == "BAT":
        from .storage.bat import BAT

        return BAT
    if name == "CostCounter":
        from .storage.stats import CostCounter

        return CostCounter
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
