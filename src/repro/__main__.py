"""``python -m repro`` dispatches to the CLI."""

import signal
import sys

from .cli import main

if __name__ == "__main__":
    # behave like a well-mannered unix tool when piped into `head` etc.
    if hasattr(signal, "SIGPIPE"):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main())
