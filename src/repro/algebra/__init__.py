"""The Moa-style extensible structured object algebra.

Layers:

* :mod:`~repro.algebra.types` — the structure type system
  (ATOMIC / LIST / BAG / SET / TUPLE);
* :mod:`~repro.algebra.values` — values flattened onto BATs;
* :mod:`~repro.algebra.extensions` — the ADT registry with
  optimizer-facing operator metadata;
* :mod:`~repro.algebra.builtin` — the built-in extensions;
* :mod:`~repro.algebra.expr` — logical expression trees;
* :mod:`~repro.algebra.parser` — textual syntax
  (``select(projecttobag([1,2,3,4,4,5]), 2, 4)``);
* :mod:`~repro.algebra.flatten` / :mod:`~repro.algebra.physical` —
  flattening to physical BAT plans;
* :mod:`~repro.algebra.engine` — ``evaluate`` / ``explain``.
"""

from .engine import evaluate, explain, infer_type
from .expr import Apply, Expr, Literal, ScalarLiteral, Var
from .extensions import OperatorDef, Registry, default_registry
from .flatten import flatten
from .parser import parse
from .physical import PhysicalPlan
from .types import (
    AtomicType,
    BagType,
    FLOAT,
    INT,
    ListType,
    STR,
    SetType,
    StructureType,
    TupleType,
)
from .values import (
    AtomValue,
    CollectionValue,
    StructureValue,
    TupleValue,
    make_bag,
    make_list,
    make_set,
)

__all__ = [
    "Apply",
    "AtomValue",
    "AtomicType",
    "BagType",
    "CollectionValue",
    "Expr",
    "FLOAT",
    "INT",
    "ListType",
    "Literal",
    "OperatorDef",
    "PhysicalPlan",
    "Registry",
    "STR",
    "ScalarLiteral",
    "SetType",
    "StructureType",
    "StructureValue",
    "TupleType",
    "TupleValue",
    "Var",
    "default_registry",
    "evaluate",
    "explain",
    "flatten",
    "infer_type",
    "make_bag",
    "make_list",
    "make_set",
    "parse",
]
