"""The built-in extensions: LIST, BAG, SET and TUPLE.

Each extension registers its operators with typing rules, flattening
(build) rules, and the optimizer metadata the inter-object layer needs.
The operator set includes everything the paper's running example uses
— ``select`` (range selection with lower and upper bound, exactly as in
Example 1) and ``projecttobag`` — plus the top-N machinery of Step 1
("special top N operators, which can be seen as special select
operators") and the conversions/aggregates that realistic retrieval
plans need.

Scalar-parameter conventions
----------------------------
Operators on tuple-element collections take the field name as their
first scalar parameter::

    select(xs, 2, 4)                 # atoms: bounds only
    select(docs, "score", 0.5, 1.0)  # tuples: field, then bounds
    topn(docs, "score", 10)
"""

from __future__ import annotations

from ..errors import AlgebraTypeError
from . import physical
from .extensions import OperatorDef, Registry
from .types import (
    AtomicType,
    BagType,
    FLOAT,
    INT,
    ListType,
    STR,
    SetType,
    StructureType,
    TupleType,
    require_collection,
    require_numeric_collection,
    same_type,
)

_STR_SENTINEL = STR


def _field_and_rest(arg_type: StructureType, scalars: list, op: str):
    """Split scalars into (field name or None, remaining scalars) and
    validate the field against the element type."""
    element = require_collection(arg_type, op)
    if isinstance(element, TupleType):
        if not scalars or not isinstance(scalars[0], str):
            raise AlgebraTypeError(f"{op} on tuple elements needs a field name parameter")
        field = scalars[0]
        element.field(field)  # raises if unknown
        return field, scalars[1:]
    # atomic elements: every scalar is an ordinary parameter (string
    # scalars are bounds for string-element collections, not field names)
    return None, scalars


def _select_result_type(arg_types, scalars):
    stype = arg_types[0]
    _field_and_rest(stype, scalars, "select")
    return stype


def _select_build(plans, scalars, arg_types):
    field, bounds = _field_and_rest(arg_types[0], scalars, "select")
    if len(bounds) != 2:
        raise AlgebraTypeError(f"select takes (lo, hi) bounds, got {len(bounds)} scalars")
    element = arg_types[0].element()
    bound_element = element.field(field) if field is not None else element
    for bound in bounds:
        if bound is None:
            continue
        is_str_bound = isinstance(bound, str)
        if is_str_bound != (bound_element == _STR_SENTINEL):
            raise AlgebraTypeError(
                f"select bound {bound!r} does not match element type {bound_element}"
            )
    return physical.RangeSelect(
        column=field, lo=bounds[0], hi=bounds[1],
        result_type=arg_types[0], children=tuple(plans),
    )


def _convert_result(target_factory):
    def result_type(arg_types, scalars):
        element = require_collection(arg_types[0], "convert")
        return target_factory(element)

    return result_type


def _convert_build(target_factory):
    def build(plans, scalars, arg_types):
        element = require_collection(arg_types[0], "convert")
        return physical.Convert(result_type=target_factory(element), children=tuple(plans))

    return build


def _sort_result_type(arg_types, scalars):
    element = require_collection(arg_types[0], "sort")
    field, rest = _field_and_rest(arg_types[0], scalars, "sort")
    return ListType(element)


def _sort_build(plans, scalars, arg_types):
    field, rest = _field_and_rest(arg_types[0], scalars, "sort")
    descending = bool(rest[0]) if rest else False
    element = require_collection(arg_types[0], "sort")
    return physical.Sort(
        column=field, descending=descending,
        result_type=ListType(element), children=tuple(plans),
    )


def _topn_result_type(arg_types, scalars):
    element = require_collection(arg_types[0], "topn")
    field, rest = _field_and_rest(arg_types[0], scalars, "topn")
    if not rest:
        raise AlgebraTypeError("topn needs an N parameter")
    return ListType(element)


def _topn_build(plans, scalars, arg_types):
    field, rest = _field_and_rest(arg_types[0], scalars, "topn")
    n = int(rest[0])
    descending = bool(rest[1]) if len(rest) > 1 else True
    element = require_collection(arg_types[0], "topn")
    return physical.TopN(
        column=field, n=n, descending=descending,
        result_type=ListType(element), children=tuple(plans),
    )


def _slice_result_type(arg_types, scalars):
    if not isinstance(arg_types[0], ListType):
        raise AlgebraTypeError(f"slice is only defined on LIST (order!), got {arg_types[0]}")
    return arg_types[0]


def _slice_build(plans, scalars, arg_types):
    if len(scalars) != 2:
        raise AlgebraTypeError("slice takes (offset, count)")
    return physical.Slice(
        offset=int(scalars[0]), count=int(scalars[1]),
        result_type=arg_types[0], children=tuple(plans),
    )


def _aggregate_defs(which: str):
    def result_type(arg_types, scalars):
        if which == "count":
            return INT
        field, _ = _field_and_rest(arg_types[0], scalars, which)
        if field is None:
            require_numeric_collection(arg_types[0], which)
            element = arg_types[0].element()
        else:
            element = arg_types[0].element().field(field)
            if not (element.is_atomic and element.numeric):
                raise AlgebraTypeError(f"{which} needs a numeric field, got {element}")
        return FLOAT if which in ("sum", "avg") else element

    def build(plans, scalars, arg_types):
        field = None
        if which != "count":
            field, _ = _field_and_rest(arg_types[0], scalars, which)
        return physical.Aggregate(
            column=field, which=which, result_type=result_type(arg_types, scalars),
            children=tuple(plans),
        )

    return result_type, build


def _project_result_type(arg_types, scalars):
    element = require_collection(arg_types[0], "project")
    if not isinstance(element, TupleType):
        raise AlgebraTypeError(f"project needs tuple elements, got {element}")
    if not scalars or not isinstance(scalars[0], str):
        raise AlgebraTypeError("project needs a field-name parameter")
    ftype = element.field(scalars[0])
    return type(arg_types[0])(ftype)


def _project_build(plans, scalars, arg_types):
    return physical.ProjectColumn(
        column=scalars[0], result_type=_project_result_type(arg_types, scalars),
        children=tuple(plans),
    )


def _concat_result_type(arg_types, scalars):
    return same_type(arg_types[0], arg_types[1], "concat")


def _concat_build(plans, scalars, arg_types):
    return physical.Concat(result_type=arg_types[0], children=tuple(plans))


def _setop_defs(which: str):
    def result_type(arg_types, scalars):
        return same_type(arg_types[0], arg_types[1], which)

    def build(plans, scalars, arg_types):
        return physical.SetOp(which=which, result_type=arg_types[0], children=tuple(plans))

    return result_type, build


def _getfield_result_type(arg_types, scalars):
    if not isinstance(arg_types[0], TupleType):
        raise AlgebraTypeError(f"getfield needs a TUPLE, got {arg_types[0]}")
    if not scalars or not isinstance(scalars[0], str):
        raise AlgebraTypeError("getfield needs a field-name parameter")
    return arg_types[0].field(scalars[0])


def _getfield_build(plans, scalars, arg_types):
    return physical.GetField(name=scalars[0], children=tuple(plans))


def install(registry: Registry) -> Registry:
    """Register the built-in extensions into ``registry``."""

    def op(ext, name, result_type, build, **properties):
        registry.register(ext, OperatorDef(
            name=name, result_type=result_type, build=build, properties=properties,
        ))

    filter_props = dict(kind="filter", content_based=True)
    shared_aggregates = ("count", "sum", "avg", "max", "min")

    for ext in ("LIST", "BAG", "SET"):
        op(ext, "select", _select_result_type, _select_build, **filter_props)
        op(ext, "sort", _sort_result_type, _sort_build, kind="reorder")
        op(ext, "topn", _topn_result_type, _topn_build, kind="topn")
        op(ext, "project", _project_result_type, _project_build, kind="generic")
        for which in shared_aggregates:
            result_type, build = _aggregate_defs(which)
            op(ext, which, result_type, build, kind="aggregate")

    # conversions (the inter-object layer keys on this metadata):
    # * content_preserving: the element multiset is unchanged;
    # * dedups: duplicates are eliminated (max/min still commute);
    # * filter_commutes: content-based filters commute with the
    #   conversion (true for all three — select sees elements only)
    op("LIST", "projecttobag", _convert_result(BagType), _convert_build(BagType),
       kind="conversion", target_extension="BAG", content_preserving=True,
       drops_order=True, filter_commutes=True)
    op("LIST", "projecttoset", _convert_result(SetType), _convert_build(SetType),
       kind="conversion", target_extension="SET", content_preserving=False,
       dedups=True, drops_order=True, filter_commutes=True)
    op("BAG", "projecttoset", _convert_result(SetType), _convert_build(SetType),
       kind="conversion", target_extension="SET", content_preserving=False,
       dedups=True, drops_order=True, filter_commutes=True)

    # membership (content-based: commutes with any conversion)
    def contains_result(arg_types, scalars):
        element = require_collection(arg_types[0], "contains")
        if not element.is_atomic:
            raise AlgebraTypeError("contains needs atomic elements")
        if len(scalars) != 1:
            raise AlgebraTypeError("contains takes exactly one value parameter")
        return INT

    def contains_build(plans, scalars, arg_types):
        contains_result(arg_types, scalars)
        return physical.Contains(value=scalars[0], children=tuple(plans))

    for ext in ("LIST", "BAG", "SET"):
        op(ext, "contains", contains_result, contains_build,
           kind="aggregate", content_based=True)

    # order-sensitive operators
    op("LIST", "slice", _slice_result_type, _slice_build, kind="generic", order_sensitive=True)
    op("LIST", "concat", _concat_result_type, _concat_build, kind="generic", order_sensitive=True)

    def reverse_result(arg_types, scalars):
        if not isinstance(arg_types[0], ListType):
            raise AlgebraTypeError("reverse is only defined on LIST")
        return arg_types[0]

    def reverse_build(plans, scalars, arg_types):
        return physical.Reverse(result_type=arg_types[0], children=tuple(plans))

    op("LIST", "reverse", reverse_result, reverse_build,
       kind="generic", order_sensitive=True)

    def getat_result(arg_types, scalars):
        if not isinstance(arg_types[0], ListType):
            raise AlgebraTypeError("getat is only defined on LIST")
        element = arg_types[0].element()
        if not element.is_atomic:
            raise AlgebraTypeError("getat needs atomic elements; project first")
        if len(scalars) != 1 or isinstance(scalars[0], str):
            raise AlgebraTypeError("getat takes one integer position")
        return element

    def getat_build(plans, scalars, arg_types):
        getat_result(arg_types, scalars)
        return physical.GetAt(position=int(scalars[0]), children=tuple(plans))

    op("LIST", "getat", getat_result, getat_build,
       kind="generic", order_sensitive=True)

    # bag/set binary operators
    op("BAG", "union", _concat_result_type, _concat_build, kind="generic")
    for which in ("union", "intersect", "difference"):
        result_type, build = _setop_defs(which)
        op("SET", which, result_type, build, kind="generic")

    # tuples
    op("TUPLE", "getfield", _getfield_result_type, _getfield_build, kind="generic")

    return registry
