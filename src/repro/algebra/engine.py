"""The algebra evaluator: flatten, then execute.

:func:`evaluate` is the one-call entry point used by examples and
tests.  Optimized execution goes through
:class:`repro.optimizer.pipeline.Optimizer` first, which rewrites the
expression before handing it here.
"""

from __future__ import annotations

from typing import Mapping

from ..obs import tracer
from .expr import Expr
from .extensions import Registry, default_registry
from .flatten import flatten
from .types import StructureType
from .values import StructureValue


def evaluate(
    expr: Expr,
    env: Mapping[str, StructureValue] | None = None,
    registry: Registry | None = None,
) -> StructureValue:
    """Evaluate ``expr`` against an environment of named values."""
    env = dict(env or {})
    env_types = {name: value.stype for name, value in env.items()}
    with tracer.span("algebra.evaluate"):
        plan = flatten(expr, env_types, registry or default_registry())
        return plan.execute(env)


def explain(
    expr: Expr,
    env: Mapping[str, StructureValue] | None = None,
    registry: Registry | None = None,
) -> str:
    """The physical plan of ``expr``, as an indented tree string."""
    env = dict(env or {})
    env_types = {name: value.stype for name, value in env.items()}
    plan = flatten(expr, env_types, registry or default_registry())
    return plan.explain()


def infer_type(
    expr: Expr,
    env: Mapping[str, StructureValue] | None = None,
    registry: Registry | None = None,
) -> StructureType:
    """Static type of ``expr`` under the given environment."""
    env_types = {name: value.stype for name, value in (env or {}).items()}
    return expr.infer_type(env_types, registry or default_registry())
