"""Logical expression trees of the object algebra.

An expression is a tree of :class:`Apply` nodes over :class:`Var` /
:class:`Literal` / :class:`ScalarLiteral` leaves.  Expressions are
immutable; the optimizer rewrites by building new trees.

Scalar parameters (selection bounds, top-N counts, field names) are
ordinary argument expressions of atomic type; dispatching splits the
argument list into *value* arguments (collections/tuples) and *scalar*
parameters by their inferred types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import AlgebraTypeError
from .extensions import OperatorDef, Registry, default_registry
from .types import StructureType
from .values import AtomValue, StructureValue, _infer_atom_type


class Expr:
    """Base class of all expression nodes (immutable)."""

    def infer_type(self, env_types: Mapping[str, StructureType] | None = None,
                   registry: Registry | None = None) -> StructureType:
        """Static result type of this expression."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """Number of nodes in the tree."""
        return sum(1 for _ in self.walk())

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """A named input (bound in the evaluation environment)."""

    name: str

    def infer_type(self, env_types=None, registry=None) -> StructureType:
        if not env_types or self.name not in env_types:
            raise AlgebraTypeError(f"unbound variable {self.name!r}")
        return env_types[self.name]

    def _key(self):
        return (self.name,)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Literal(Expr):
    """An inline structure value (collection or tuple literal)."""

    value: StructureValue

    def infer_type(self, env_types=None, registry=None) -> StructureType:
        return self.value.stype

    def _key(self):
        # identity-keyed: structure values are not hashable in general
        return (id(self.value),)

    def __str__(self) -> str:
        # small atomic collections print as source-syntax literals, so
        # rewrites of the paper's Example 1 render verbatim
        from .values import CollectionValue

        value = self.value
        if isinstance(value, CollectionValue) and value.is_atomic_elements and value.count <= 12:
            elements = ", ".join(repr(e) for e in value.iter_elements())
            brackets = "{}" if value.stype.extension_name in ("BAG", "SET") else "[]"
            return f"{brackets[0]}{elements}{brackets[1]}"
        return repr(value)


@dataclass(frozen=True, eq=False)
class ScalarLiteral(Expr):
    """An inline atomic constant (selection bound, N, field name...)."""

    value: object

    def infer_type(self, env_types=None, registry=None) -> StructureType:
        return _infer_atom_type(self.value)

    def _key(self):
        return (self.value,)

    def __str__(self) -> str:
        return repr(self.value)


class Apply(Expr):
    """Application of a named operator to argument expressions."""

    def __init__(self, op: str, *args: Expr) -> None:
        coerced = []
        for arg in args:
            if isinstance(arg, Expr):
                coerced.append(arg)
            elif isinstance(arg, StructureValue) and isinstance(arg, AtomValue):
                coerced.append(ScalarLiteral(arg.value))
            elif isinstance(arg, StructureValue):
                coerced.append(Literal(arg))
            elif isinstance(arg, (int, float, str)):
                coerced.append(ScalarLiteral(arg))
            else:
                raise AlgebraTypeError(f"cannot use {arg!r} as an expression argument")
        self.op = op
        self.args = tuple(coerced)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def _key(self):
        return (self.op, self.args)

    def split_args(self, env_types=None, registry=None) -> tuple[list[Expr], list[Expr]]:
        """Partition arguments into (value args, scalar args) by type."""
        values, scalars = [], []
        for arg in self.args:
            stype = arg.infer_type(env_types, registry)
            if stype.is_atomic:
                scalars.append(arg)
            else:
                values.append(arg)
        return values, scalars

    def dispatch(self, env_types=None, registry=None) -> OperatorDef:
        """Resolve the operator definition this node applies."""
        registry = registry or default_registry()
        values, _ = self.split_args(env_types, registry)
        if not values:
            raise AlgebraTypeError(
                f"operator {self.op!r} has no collection argument to dispatch on"
            )
        receiver_type = values[0].infer_type(env_types, registry)
        return registry.operator_for(receiver_type, self.op)

    def scalar_values(self, env_types=None, registry=None) -> list:
        """Literal scalar parameter values (None for non-literals)."""
        _, scalars = self.split_args(env_types, registry)
        return [arg.value if isinstance(arg, ScalarLiteral) else None for arg in scalars]

    def infer_type(self, env_types=None, registry=None) -> StructureType:
        registry = registry or default_registry()
        opdef = self.dispatch(env_types, registry)
        values, _ = self.split_args(env_types, registry)
        arg_types = [arg.infer_type(env_types, registry) for arg in values]
        return opdef.result_type(arg_types, self.scalar_values(env_types, registry))

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.op}({inner})"


def rebuild(expr: Expr, new_children: tuple[Expr, ...]) -> Expr:
    """Copy an expression node with different children (rewrite helper)."""
    if isinstance(expr, Apply):
        clone = Apply.__new__(Apply)
        clone.op = expr.op
        clone.args = tuple(new_children)
        return clone
    if new_children:
        raise AlgebraTypeError(f"leaf node {expr} cannot take children")
    return expr
