"""The extension (ADT) registry of the object algebra.

Moa is *extensible*: each structure (LIST, BAG, SET, ...) is provided
by an extension that contributes its operators.  The paper's central
observation (Step 2) is that optimizers must be able to *reason over
operators defined in extensions* — including across two distinct
extensions.  To make that possible, every registered operator carries
machine-readable metadata (:attr:`OperatorDef.properties`) that the
inter-object optimizer layer consumes without knowing the extension's
internals:

``kind``
    ``"filter"`` (content-based selection), ``"conversion"``
    (structure-to-structure, content preserving), ``"reorder"``
    (sort-like), ``"topn"``, ``"aggregate"``, or ``"generic"``.
``content_preserving``
    conversions only: the element multiset is unchanged.
``target_extension``
    conversions only: name of the produced structure.
``order_sensitive``
    result depends on input element order (e.g. ``slice`` on a LIST).

This is exactly the registry-published knowledge the paper asks for:
"the new inter-object optimizer layer will be responsible for
coordinating optimization between operators on distinct extensions".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import UnknownExtensionError, UnknownOperatorError
from .types import StructureType

#: valid operator kinds, as consumed by the optimizer layers
OPERATOR_KINDS = ("filter", "conversion", "reorder", "topn", "aggregate", "generic")


@dataclass
class OperatorDef:
    """One operator contributed by an extension.

    Parameters
    ----------
    name:
        Operator name as used in expressions (``select``, ``topn``...).
    extension:
        Owning extension name (``LIST``...), filled in on registration.
    result_type:
        ``(arg_types, scalars) -> StructureType`` — static typing rule.
        ``arg_types`` are the structure types of the *value* arguments;
        ``scalars`` the literal scalar parameters (may contain None for
        non-literal scalars).
    build:
        ``(plans, scalars, arg_types) -> PhysicalOp`` — flattening rule
        producing a physical operator over the argument plans.
    properties:
        Optimizer-facing metadata, see module docstring.
    """

    name: str
    result_type: Callable
    build: Callable
    extension: str = "?"
    properties: dict = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return self.properties.get("kind", "generic")

    def qualified_name(self) -> str:
        return f"{self.extension}.{self.name}"


class Extension:
    """A named bundle of operators over one structure kind."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.operators: dict[str, OperatorDef] = {}

    def register(self, opdef: OperatorDef) -> OperatorDef:
        opdef.extension = self.name
        if opdef.kind not in OPERATOR_KINDS:
            raise UnknownOperatorError(
                f"operator {opdef.qualified_name()} declares unknown kind {opdef.kind!r}"
            )
        self.operators[opdef.name] = opdef
        return opdef

    def operator(self, name: str) -> OperatorDef:
        try:
            return self.operators[name]
        except KeyError:
            raise UnknownOperatorError(
                f"extension {self.name!r} has no operator {name!r} "
                f"(available: {sorted(self.operators)})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.operators


class Registry:
    """Maps structure kinds to extensions and dispatches operators.

    A fresh registry is empty; :func:`repro.algebra.builtin.install`
    populates it with the built-in LIST/BAG/SET/TUPLE extensions.  Tests
    can build private registries to model third-party extensions.
    """

    def __init__(self) -> None:
        self.extensions: dict[str, Extension] = {}

    def extension(self, name: str) -> Extension:
        try:
            return self.extensions[name]
        except KeyError:
            raise UnknownExtensionError(
                f"no extension named {name!r} registered (have: {sorted(self.extensions)})"
            ) from None

    def add_extension(self, name: str) -> Extension:
        if name not in self.extensions:
            self.extensions[name] = Extension(name)
        return self.extensions[name]

    def register(self, extension_name: str, opdef: OperatorDef) -> OperatorDef:
        return self.add_extension(extension_name).register(opdef)

    def operator_for(self, stype: StructureType, op_name: str) -> OperatorDef:
        """Dispatch ``op_name`` on the extension providing ``stype``."""
        return self.extension(stype.extension_name).operator(op_name)

    def has_operator(self, stype: StructureType, op_name: str) -> bool:
        ext = self.extensions.get(stype.extension_name)
        return ext is not None and op_name in ext

    def all_operators(self) -> list[OperatorDef]:
        return [
            opdef
            for extension in self.extensions.values()
            for opdef in extension.operators.values()
        ]


_default_registry: Registry | None = None


def default_registry() -> Registry:
    """The process-wide registry with the built-in extensions installed."""
    global _default_registry
    if _default_registry is None:
        from . import builtin

        registry = Registry()
        builtin.install(registry)
        _default_registry = registry
    return _default_registry
