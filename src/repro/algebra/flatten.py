"""Flattening: logical expressions → physical plans.

This is the reproduction of Moa's defining mechanism: a structured
algebra expression is translated into a plan over flat binary tables.
Each operator's extension supplies the translation (its ``build``
rule); flattening itself is a simple bottom-up fold.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import AlgebraTypeError
from .expr import Apply, Expr, Literal, ScalarLiteral, Var
from .extensions import Registry, default_registry
from .physical import PhysicalOp, PhysicalPlan, SourceLiteral, SourceVar
from .types import StructureType


def flatten(
    expr: Expr,
    env_types: Mapping[str, StructureType] | None = None,
    registry: Registry | None = None,
) -> PhysicalPlan:
    """Translate ``expr`` into an executable :class:`PhysicalPlan`.

    ``env_types`` gives the structure types of free variables; literal
    leaves carry their own types.  Raises
    :class:`~repro.errors.AlgebraTypeError` on ill-typed expressions —
    flattening doubles as the algebra's type checker.
    """
    registry = registry or default_registry()
    result_type = expr.infer_type(env_types, registry)
    root = _flatten_node(expr, env_types, registry)
    return PhysicalPlan(root, result_type)


def _flatten_node(expr: Expr, env_types, registry) -> PhysicalOp:
    if isinstance(expr, Var):
        return SourceVar(name=expr.name)
    if isinstance(expr, Literal):
        return SourceLiteral(value=expr.value)
    if isinstance(expr, ScalarLiteral):
        raise AlgebraTypeError(
            f"scalar literal {expr.value!r} cannot be flattened standalone"
        )
    if isinstance(expr, Apply):
        opdef = expr.dispatch(env_types, registry)
        value_args, scalar_args = expr.split_args(env_types, registry)
        plans = [_flatten_node(arg, env_types, registry) for arg in value_args]
        scalars = []
        for arg in scalar_args:
            if isinstance(arg, ScalarLiteral):
                scalars.append(arg.value)
            else:
                raise AlgebraTypeError(
                    f"scalar parameter of {expr.op!r} must be a literal, got {arg}"
                )
        arg_types = [arg.infer_type(env_types, registry) for arg in value_args]
        return opdef.build(plans, scalars, arg_types)
    raise AlgebraTypeError(f"cannot flatten expression node {expr!r}")
