"""A small textual syntax for algebra expressions.

Lets tests, examples and docs write the paper's expressions verbatim::

    parse("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")

Grammar (whitespace-insensitive)::

    expr     := call | listlit | baglit | number | string | ident
    call     := ident '(' expr (',' expr)* ')'
    listlit  := '[' atoms? ']'          -- a LIST literal
    baglit   := '{' atoms? '}'          -- a BAG literal
    atoms    := atom (',' atom)*
    atom     := number | string

Identifiers not followed by ``(`` are variables.  Numbers become scalar
literals (selection bounds, top-N counts); quoted strings become scalar
string literals (field names).
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .expr import Apply, Expr, Literal, ScalarLiteral, Var
from .values import make_bag, make_list

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct>[()\[\]{},])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, text: str) -> None:
        kind, value = self.next()
        if value != text:
            raise ParseError(f"expected {text!r}, got {value!r}")

    def parse_expr(self) -> Expr:
        kind, value = self.peek()
        if kind == "number":
            self.next()
            scalar = float(value) if "." in value else int(value)
            return ScalarLiteral(scalar)
        if kind == "string":
            self.next()
            return ScalarLiteral(value[1:-1])
        if kind == "ident":
            self.next()
            if self.peek()[1] == "(":
                return self.parse_call(value)
            return Var(value)
        if value == "[":
            return Literal(make_list(self.parse_atoms("[", "]")))
        if value == "{":
            return Literal(make_bag(self.parse_atoms("{", "}")))
        raise ParseError(f"unexpected token {value!r}")

    def parse_call(self, name: str) -> Expr:
        self.expect("(")
        args = []
        if self.peek()[1] != ")":
            args.append(self.parse_expr())
            while self.peek()[1] == ",":
                self.next()
                args.append(self.parse_expr())
        self.expect(")")
        return Apply(name, *args)

    def parse_atoms(self, open_char: str, close_char: str) -> list:
        self.expect(open_char)
        atoms = []
        if self.peek()[1] != close_char:
            atoms.append(self.parse_atom())
            while self.peek()[1] == ",":
                self.next()
                atoms.append(self.parse_atom())
        self.expect(close_char)
        return atoms

    def parse_atom(self):
        kind, value = self.next()
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "string":
            return value[1:-1]
        raise ParseError(f"collection literals may only contain atoms, got {value!r}")


def parse(text: str) -> Expr:
    """Parse ``text`` into an :class:`~repro.algebra.expr.Expr`."""
    parser = _Parser(_tokenize(text))
    expr = parser.parse_expr()
    if parser.peek()[0] != "eof":
        raise ParseError(f"trailing input starting at {parser.peek()[1]!r}")
    return expr
