"""Physical operators: the flattened form of algebra expressions.

Flattening (:mod:`repro.algebra.flatten`) turns a logical expression
tree into a tree of :class:`PhysicalOp` nodes, each of which executes
as a handful of BAT-kernel calls.  Physical operators

* carry no optimizer logic — plan choice happens before flattening
  (logical/inter-object layers) and after it (cost-based selection in
  :mod:`repro.optimizer.cost`, which costs these nodes);
* are *order-aware at runtime*: a range select consults the BAT's
  sortedness property and uses binary search when it can, which is how
  the LIST extension's knowledge of ordering turns into fewer page
  reads (paper Example 1);
* produce :class:`~repro.algebra.values.StructureValue` payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import EvaluationError
from ..obs import tracer
from ..storage import kernel
from ..storage.bat import BAT
from .types import SetType, StructureType, INT, FLOAT
from .values import AtomValue, CollectionValue, ELEM, StructureValue, TupleValue


@dataclass
class PhysicalOp:
    """Base class for physical operator nodes."""

    children: tuple["PhysicalOp", ...] = field(default=(), kw_only=True)

    def execute(self, env: Mapping[str, StructureValue]) -> StructureValue:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan tree."""
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    # -- helpers shared by subclasses ------------------------------------

    @staticmethod
    def _collection(value: StructureValue, op: str) -> CollectionValue:
        if not isinstance(value, CollectionValue):
            raise EvaluationError(f"{op} expected a collection, got {value!r}")
        return value

    @staticmethod
    def _pick_column(value: CollectionValue, column: str | None, op: str) -> tuple[str, BAT]:
        if column is None:
            if not value.is_atomic_elements:
                raise EvaluationError(
                    f"{op} on a tuple-element collection needs a field name"
                )
            return ELEM, value.bat
        return column, value.column(column)


@dataclass
class SourceVar(PhysicalOp):
    """Leaf: a variable bound in the evaluation environment."""

    name: str = ""

    def execute(self, env):
        try:
            return env[self.name]
        except (KeyError, TypeError):
            raise EvaluationError(f"unbound variable {self.name!r} at execution time") from None

    def label(self):
        return f"var({self.name})"


@dataclass
class SourceLiteral(PhysicalOp):
    """Leaf: an inline structure value."""

    value: StructureValue = None

    def execute(self, env):
        return self.value

    def label(self):
        n = self.value.count if isinstance(self.value, CollectionValue) else 1
        return f"literal({self.value.stype}, n={n})"


def _apply_positions(value: CollectionValue, positions: np.ndarray,
                     stype: StructureType) -> CollectionValue:
    """Build a new collection taking ``positions`` from every column."""
    columns = {}
    for name, bat in value.columns.items():
        kernel.scan_cost(bat, len(positions))
        columns[name] = BAT(bat.tail[positions]).refresh_sortedness()
    from ..storage import stats as _stats

    _stats.charge_tuples_written(len(positions) * len(value.columns))
    return CollectionValue(stype, columns)


@dataclass
class RangeSelect(PhysicalOp):
    """Content-based range selection on one column.

    On an atomic-element collection whose BAT is tail-sorted this uses
    the kernel's binary-search path; otherwise it scans.
    """

    column: str | None = None
    lo: object = None
    hi: object = None
    include_lo: bool = True
    include_hi: bool = True
    result_type: StructureType = None

    def execute(self, env):
        value = self._collection(self.children[0].execute(env), "select")
        name, bat = self._pick_column(value, self.column, "select")
        if value.is_atomic_elements:
            out = kernel.select_range(bat, self.lo, self.hi, self.include_lo, self.include_hi)
            if tracer.enabled():
                # observed selectivity: the calibration store fits the
                # cost model's select_selectivity constant from these
                tracer.event("select.range", rows_in=len(bat), rows_out=len(out))
            return CollectionValue(self.result_type, {ELEM: BAT(
                out.tail,
                tail_sorted=out.tail_sorted,
                tail_sorted_desc=out.tail_sorted_desc,
                tail_key=out.tail_key,
            )})
        selected = kernel.select_range(bat, self.lo, self.hi, self.include_lo, self.include_hi)
        positions = selected.head_array()
        if tracer.enabled():
            tracer.event("select.range", rows_in=len(bat), rows_out=len(positions))
        return _apply_positions(value, positions, self.result_type)

    def label(self):
        bounds = f"{self.lo!r}..{self.hi!r}"
        col = f" on {self.column}" if self.column else ""
        return f"range_select[{bounds}]{col}"


@dataclass
class Convert(PhysicalOp):
    """Structure conversion (``projecttobag`` / ``projecttoset`` ...).

    LIST->BAG is physically free (the order property is dropped
    logically); conversions to SET deduplicate.
    """

    result_type: StructureType = None

    def execute(self, env):
        value = self._collection(self.children[0].execute(env), "convert")
        if isinstance(self.result_type, SetType):
            if not value.is_atomic_elements:
                raise EvaluationError("SET conversion requires atomic elements")
            deduped = kernel.unique_tail(value.bat)
            if tracer.enabled():
                # observed dedup ratio: calibrates the cost model's
                # dedup_ratio constant
                tracer.event("convert.dedup", rows_in=value.count,
                             rows_out=len(deduped))
            return CollectionValue(
                self.result_type,
                {ELEM: BAT(deduped.tail, tail_sorted=True, tail_key=True)},
            )
        # conversion to an unordered structure *forgets* the ordering
        # knowledge: "the ordering ... formally does not exist for a
        # bag" (paper, Example 1).  The arrays are shared (physically
        # free) but the sortedness properties are dropped, so operators
        # on the BAG cannot use order-aware fast paths — which is
        # exactly why pushing work below the conversion wins.
        columns = {
            name: BAT(bat.tail) for name, bat in value.columns.items()
        }
        return CollectionValue(self.result_type, columns)

    def label(self):
        return f"convert->{self.result_type.extension_name}"


@dataclass
class Sort(PhysicalOp):
    """Full sort producing a LIST."""

    column: str | None = None
    descending: bool = False
    result_type: StructureType = None

    def execute(self, env):
        value = self._collection(self.children[0].execute(env), "sort")
        name, bat = self._pick_column(value, self.column, "sort")
        if value.is_atomic_elements:
            already = bat.tail_sorted_desc if self.descending else bat.tail_sorted
            if already:
                return CollectionValue(self.result_type, {ELEM: bat})
            out = kernel.sort_tail(bat, descending=self.descending)
            return CollectionValue(self.result_type, {ELEM: BAT(
                out.tail, tail_sorted=out.tail_sorted, tail_sorted_desc=out.tail_sorted_desc,
                tail_key=out.tail_key,
            )})
        out = kernel.sort_tail(bat, descending=self.descending)
        return _apply_positions(value, out.head_array(), self.result_type)

    def label(self):
        direction = "desc" if self.descending else "asc"
        col = f" by {self.column}" if self.column else ""
        return f"sort[{direction}]{col}"


@dataclass
class TopN(PhysicalOp):
    """The paper's special top-N operator: best N by one column."""

    column: str | None = None
    n: int = 0
    descending: bool = True
    result_type: StructureType = None

    def execute(self, env):
        value = self._collection(self.children[0].execute(env), "topn")
        name, bat = self._pick_column(value, self.column, "topn")
        presorted = bat.tail_sorted_desc if self.descending else bat.tail_sorted
        if presorted:
            # order-aware fast path: the prefix *is* the answer
            out = kernel.slice_pairs(bat, 0, self.n)
        else:
            out = kernel.topn_tail(bat, self.n, descending=self.descending)
        if value.is_atomic_elements:
            return CollectionValue(self.result_type, {ELEM: BAT(
                out.tail, tail_sorted=out.tail_sorted, tail_sorted_desc=out.tail_sorted_desc,
            )})
        return _apply_positions(value, out.head_array(), self.result_type)

    def label(self):
        col = f" by {self.column}" if self.column else ""
        direction = "desc" if self.descending else "asc"
        return f"topn[{self.n} {direction}]{col}"


@dataclass
class Slice(PhysicalOp):
    """Positional slice (order-sensitive; LIST only)."""

    offset: int = 0
    count: int = 0
    result_type: StructureType = None

    def execute(self, env):
        value = self._collection(self.children[0].execute(env), "slice")
        if value.is_atomic_elements:
            out = kernel.slice_pairs(value.bat, self.offset, self.count)
            return CollectionValue(self.result_type, {ELEM: BAT(
                out.tail, tail_sorted=out.tail_sorted, tail_sorted_desc=out.tail_sorted_desc,
            )})
        positions = np.arange(self.offset, min(self.offset + self.count, value.count))
        return _apply_positions(value, positions, self.result_type)

    def label(self):
        return f"slice[{self.offset}:{self.offset + self.count}]"


@dataclass
class Aggregate(PhysicalOp):
    """Collection-to-atom aggregate: sum/count/max/min."""

    column: str | None = None
    which: str = "count"
    result_type: StructureType = None

    def execute(self, env):
        value = self._collection(self.children[0].execute(env), self.which)
        if self.which == "count":
            return AtomValue(value.count, INT)
        name, bat = self._pick_column(value, self.column, self.which)
        if self.which == "sum":
            return AtomValue(kernel.sum_tail(bat), FLOAT)
        if self.which == "avg":
            if value.count == 0:
                raise EvaluationError("avg of an empty collection is undefined")
            return AtomValue(kernel.sum_tail(bat) / value.count, FLOAT)
        if self.which == "max":
            result = kernel.max_tail(bat)
        elif self.which == "min":
            result = kernel.min_tail(bat)
        else:
            raise EvaluationError(f"unknown aggregate {self.which!r}")
        if result is None:
            raise EvaluationError(f"{self.which} of an empty collection is undefined")
        return AtomValue(result)

    def label(self):
        col = f"({self.column})" if self.column else ""
        return f"{self.which}{col}"


@dataclass
class Reverse(PhysicalOp):
    """Reverse LIST element order (flips sortedness properties)."""

    result_type: StructureType = None

    def execute(self, env):
        value = self._collection(self.children[0].execute(env), "reverse")
        columns = {}
        for name, bat in value.columns.items():
            kernel.scan_cost(bat)
            columns[name] = BAT(
                bat.tail[::-1].copy(),
                tail_sorted=bat.tail_sorted_desc,
                tail_sorted_desc=bat.tail_sorted,
                tail_key=bat.tail_key,
            )
        from ..storage import stats as _stats

        _stats.charge_tuples_written(value.count * len(value.columns))
        return CollectionValue(self.result_type, columns)

    def label(self):
        return "reverse"


@dataclass
class Contains(PhysicalOp):
    """Membership test: 1 if the value occurs, else 0.

    Uses binary search on sorted columns, scan otherwise."""

    value: object = None

    def execute(self, env):
        collection = self._collection(self.children[0].execute(env), "contains")
        bat = collection.bat
        hits = kernel.select_eq(bat, self.value)
        return AtomValue(1 if len(hits) else 0, INT)

    def label(self):
        return f"contains[{self.value!r}]"


@dataclass
class GetAt(PhysicalOp):
    """Positional element access on a LIST (atoms -> atom value)."""

    position: int = 0

    def execute(self, env):
        value = self._collection(self.children[0].execute(env), "getat")
        if not 0 <= self.position < value.count:
            raise EvaluationError(
                f"getat position {self.position} outside list of {value.count}"
            )
        if value.is_atomic_elements:
            from ..storage import stats as _stats

            _stats.charge_tuples_read(1)
            element = value.bat.tail[self.position]
            return AtomValue(element.item() if hasattr(element, "item") else element)
        raise EvaluationError("getat on tuple elements is not supported; project first")

    def label(self):
        return f"getat[{self.position}]"


@dataclass
class ProjectColumn(PhysicalOp):
    """Extract one field column of a tuple-element collection."""

    column: str = ""
    result_type: StructureType = None

    def execute(self, env):
        value = self._collection(self.children[0].execute(env), "project")
        bat = value.column(self.column)
        kernel.scan_cost(bat)
        return CollectionValue(
            self.result_type,
            {ELEM: BAT(bat.tail.copy()).refresh_sortedness()},
        )

    def label(self):
        return f"project[{self.column}]"


@dataclass
class Concat(PhysicalOp):
    """LIST concatenation / BAG additive union."""

    result_type: StructureType = None

    def execute(self, env):
        first = self._collection(self.children[0].execute(env), "concat")
        second = self._collection(self.children[1].execute(env), "concat")
        if first.is_atomic_elements:
            out = kernel.append(first.bat, second.bat)
            return CollectionValue(self.result_type, {ELEM: BAT(out.tail).refresh_sortedness()})
        columns = {}
        for name in first.columns:
            out = kernel.append(first.columns[name], second.columns[name])
            columns[name] = BAT(out.tail)
        return CollectionValue(self.result_type, columns)

    def label(self):
        return "concat"


@dataclass
class SetOp(PhysicalOp):
    """SET union / intersection / difference (atomic elements)."""

    which: str = "union"
    result_type: StructureType = None

    def execute(self, env):
        first = self._collection(self.children[0].execute(env), self.which)
        second = self._collection(self.children[1].execute(env), self.which)
        a, b = first.bat, second.bat
        kernel.scan_cost(a)
        kernel.scan_cost(b)
        from ..storage import stats as _stats

        _stats.charge_comparisons(len(a) + len(b))
        if self.which == "union":
            out = np.union1d(a.tail, b.tail)
        elif self.which == "intersect":
            out = np.intersect1d(a.tail, b.tail)
        elif self.which == "difference":
            out = np.setdiff1d(a.tail, b.tail)
        else:
            raise EvaluationError(f"unknown set operation {self.which!r}")
        _stats.charge_tuples_written(len(out))
        return CollectionValue(
            self.result_type, {ELEM: BAT(out, tail_sorted=True, tail_key=True)}
        )

    def label(self):
        return self.which


@dataclass
class GetField(PhysicalOp):
    """Extract a named field of a TUPLE value."""

    name: str = ""

    def execute(self, env):
        value = self.children[0].execute(env)
        if not isinstance(value, TupleValue):
            raise EvaluationError(f"getfield expected a tuple value, got {value!r}")
        return value.field(self.name)

    def label(self):
        return f"getfield[{self.name}]"


class PhysicalPlan:
    """A rooted physical operator tree plus its static result type."""

    def __init__(self, root: PhysicalOp, result_type: StructureType) -> None:
        self.root = root
        self.result_type = result_type

    def execute(self, env: Mapping[str, StructureValue] | None = None) -> StructureValue:
        return self.root.execute(env or {})

    def explain(self) -> str:
        return self.root.explain()

    def operators(self) -> list[PhysicalOp]:
        return list(self.root.walk())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhysicalPlan<{self.result_type}>\n{self.explain()}"
