"""The structure type system of the Moa-style object algebra.

Moa (Boncz/Wilschut/Kersten 1998; de Vries/Wilschut 1999) is a
*structured object algebra*: values are built from a small set of
orthogonal structures — ATOMIC base types and the bulk structures
LIST, BAG and SET, plus named-field TUPLEs — and every structure is
provided by an *extension* that also supplies its operators.

Types matter to the optimizer: the paper's Example 1 turns on the fact
that a LIST "is aware of the ordering of the elements, which ... in
case of a list is well defined, but formally does not exist for a bag".
:attr:`StructureType.ordered` exposes exactly that property to the
inter-object optimizer layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AlgebraTypeError

#: atomic base-type kinds supported by the storage kernel
ATOM_KINDS = ("int", "float", "str")


class StructureType:
    """Base class for all structure types.  Instances are immutable
    value objects: equality is structural."""

    #: does this structure maintain a well-defined element order?
    ordered: bool = False
    #: may this structure contain duplicate elements?
    allows_duplicates: bool = True
    #: name of the extension providing this structure ("LIST", ...)
    extension_name: str = "?"

    def element(self) -> "StructureType":
        """The element type for collection structures; raises for
        non-collections."""
        raise AlgebraTypeError(f"{self} has no element type")

    @property
    def is_collection(self) -> bool:
        return False

    @property
    def is_atomic(self) -> bool:
        return False


@dataclass(frozen=True)
class AtomicType(StructureType):
    """An ATOMIC base type: ``int``, ``float`` or ``str``."""

    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ATOM_KINDS:
            raise AlgebraTypeError(
                f"unknown atomic kind {self.kind!r}; expected one of {ATOM_KINDS}")

    extension_name = "ATOMIC"

    @property
    def is_atomic(self) -> bool:
        return True

    @property
    def numeric(self) -> bool:
        """Whether values of this type support arithmetic/comparison."""
        return self.kind in ("int", "float")

    def __str__(self) -> str:
        return self.kind


INT = AtomicType("int")
FLOAT = AtomicType("float")
STR = AtomicType("str")


def atom_for_dtype_kind(kind: str) -> AtomicType:
    """Map a numpy dtype kind ('i', 'f', 'U') to an atomic type."""
    mapping = {"i": INT, "f": FLOAT, "U": STR}
    try:
        return mapping[kind]
    except KeyError:
        raise AlgebraTypeError(f"no atomic type for dtype kind {kind!r}") from None


@dataclass(frozen=True)
class _CollectionType(StructureType):
    element_type: StructureType

    def element(self) -> StructureType:
        return self.element_type

    @property
    def is_collection(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.extension_name}<{self.element_type}>"


class ListType(_CollectionType):
    """LIST — ordered, duplicates allowed.  The structure of ranked
    retrieval results."""

    ordered = True
    allows_duplicates = True
    extension_name = "LIST"


class BagType(_CollectionType):
    """BAG — unordered, duplicates allowed."""

    ordered = False
    allows_duplicates = True
    extension_name = "BAG"


class SetType(_CollectionType):
    """SET — unordered, duplicates eliminated."""

    ordered = False
    allows_duplicates = False
    extension_name = "SET"


@dataclass(frozen=True)
class TupleType(StructureType):
    """TUPLE — a record of named fields, each with its own structure."""

    fields: tuple[tuple[str, StructureType], ...]

    extension_name = "TUPLE"

    @classmethod
    def of(cls, **fields: StructureType) -> "TupleType":
        return cls(tuple(sorted(fields.items())))

    def field(self, name: str) -> StructureType:
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        raise AlgebraTypeError(f"tuple type has no field {name!r}: {self}")

    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def __str__(self) -> str:
        inner = ", ".join(f"{name}: {ftype}" for name, ftype in self.fields)
        return f"TUPLE<{inner}>"


def require_collection(stype: StructureType, op: str) -> StructureType:
    """Validate that ``stype`` is a collection; return its element type."""
    if not stype.is_collection:
        raise AlgebraTypeError(f"operator {op!r} requires a collection, got {stype}")
    return stype.element()


def require_numeric_collection(stype: StructureType, op: str) -> AtomicType:
    """Validate a collection of numeric atoms; return the element type."""
    element = require_collection(stype, op)
    if not (element.is_atomic and element.numeric):
        raise AlgebraTypeError(
            f"operator {op!r} requires a collection of numeric atoms, got {stype}"
        )
    return element


def same_type(a: StructureType, b: StructureType, op: str) -> StructureType:
    """Validate type equality between two operands."""
    if a != b:
        raise AlgebraTypeError(f"operator {op!r} requires equal types, got {a} vs {b}")
    return a
