"""Structure *values*: Moa objects materialized over BATs.

Flattening is the defining idea of Moa: a structured value is
represented as a small set of flat binary tables.  Here

* a collection of atoms is one BAT ``[(position, element)]`` with a
  dense head (the position encodes LIST order; BAG/SET ignore it);
* a collection of flat tuples is a *column group*: one aligned BAT per
  field, all sharing the dense position head;
* an atomic value is a bare python scalar with its type;
* a tuple value is a record of named structure values.

Equality respects structure semantics: LISTs compare elementwise in
order, BAGs as multisets, SETs as sets.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Mapping

import numpy as np

from ..errors import AlgebraTypeError
from ..storage.bat import BAT
from .types import (
    AtomicType,
    BagType,
    FLOAT,
    INT,
    ListType,
    STR,
    SetType,
    StructureType,
    TupleType,
    atom_for_dtype_kind,
)

#: column name used for the single column of atomic-element collections
ELEM = "_elem"


class StructureValue:
    """Base class for all algebra values."""

    stype: StructureType

    def equals(self, other: "StructureValue") -> bool:
        """Structural equality under this structure's semantics."""
        raise NotImplementedError

    def to_python(self):
        """Convert to a plain python object (lists/sets/dicts/scalars)."""
        raise NotImplementedError


class AtomValue(StructureValue):
    """An atomic value: a python scalar plus its atomic type."""

    def __init__(self, value, stype: AtomicType | None = None) -> None:
        if stype is None:
            stype = _infer_atom_type(value)
        if stype.kind == "int":
            value = int(value)
        elif stype.kind == "float":
            value = float(value)
        else:
            value = str(value)
        self.value = value
        self.stype = stype

    def equals(self, other: StructureValue) -> bool:
        return (isinstance(other, AtomValue) and self.stype == other.stype
                and self.value == other.value)

    def to_python(self):
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AtomValue({self.value!r}: {self.stype})"


def _infer_atom_type(value) -> AtomicType:
    if isinstance(value, bool):
        return INT
    if isinstance(value, (int, np.integer)):
        return INT
    if isinstance(value, (float, np.floating)):
        return FLOAT
    if isinstance(value, str):
        return STR
    raise AlgebraTypeError(f"cannot infer an atomic type for {value!r}")


class CollectionValue(StructureValue):
    """A LIST/BAG/SET value flattened onto aligned BATs.

    ``columns`` maps field names to BATs; atomic-element collections
    use the single pseudo-field :data:`ELEM`.  All BATs must be equal
    length; positions are implicit (dense heads).
    """

    def __init__(self, stype: StructureType, columns: Mapping[str, BAT]) -> None:
        if not stype.is_collection:
            raise AlgebraTypeError(f"CollectionValue needs a collection type, got {stype}")
        element = stype.element()
        columns = dict(columns)
        if element.is_atomic:
            if set(columns) != {ELEM}:
                raise AlgebraTypeError(
                    f"atomic-element collection must have exactly the {ELEM!r} column"
                )
        elif isinstance(element, TupleType):
            expected = set(element.field_names())
            if set(columns) != expected:
                raise AlgebraTypeError(
                    f"tuple-element collection columns {sorted(columns)} "
                    f"!= fields {sorted(expected)}"
                )
        else:
            raise AlgebraTypeError(f"unsupported element type {element} (no nested collections)")
        lengths = {name: len(bat) for name, bat in columns.items()}
        if len(set(lengths.values())) > 1:
            raise AlgebraTypeError(f"column group is ragged: {lengths}")
        self.stype = stype
        self.columns = columns

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_atoms(cls, stype: StructureType, elements) -> "CollectionValue":
        """Build an atomic-element collection from a python sequence.

        SETs deduplicate (and, being unordered, store elements sorted
        for canonical form).
        """
        element = stype.element()
        if not element.is_atomic:
            raise AlgebraTypeError(f"from_atoms needs an atomic element type, got {element}")
        arr = _atoms_to_array(elements, element)
        if isinstance(stype, SetType):
            arr = np.unique(arr)
            bat = BAT(arr, tail_sorted=True, tail_key=True)
        else:
            # record sortedness so order-aware operators (binary-search
            # select, prefix top-N) can exploit it — the LIST extension's
            # "awareness of ordering" from the paper's Example 1
            bat = BAT(arr).refresh_sortedness()
        return cls(stype, {ELEM: bat})

    @classmethod
    def from_rows(cls, stype: StructureType, rows) -> "CollectionValue":
        """Build a tuple-element collection from dict rows."""
        element = stype.element()
        if not isinstance(element, TupleType):
            raise AlgebraTypeError(f"from_rows needs a tuple element type, got {element}")
        rows = list(rows)
        columns = {}
        for name in element.field_names():
            ftype = element.field(name)
            if not ftype.is_atomic:
                raise AlgebraTypeError(f"tuple field {name!r} must be atomic, got {ftype}")
            columns[name] = BAT(_atoms_to_array([row[name] for row in rows], ftype))
        return cls(stype, columns)

    # -- accessors ----------------------------------------------------------

    @property
    def element_type(self) -> StructureType:
        return self.stype.element()

    @property
    def is_atomic_elements(self) -> bool:
        return self.element_type.is_atomic

    @property
    def bat(self) -> BAT:
        """The single column of an atomic-element collection."""
        if not self.is_atomic_elements:
            raise AlgebraTypeError("`.bat` is only defined for atomic-element collections")
        return self.columns[ELEM]

    def column(self, name: str) -> BAT:
        """One column of a tuple-element collection (or ELEM)."""
        try:
            return self.columns[name]
        except KeyError:
            raise AlgebraTypeError(f"collection has no column {name!r}") from None

    @property
    def count(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def __len__(self) -> int:
        return self.count

    def iter_elements(self) -> Iterator:
        """Yield python elements: scalars, or field dicts for tuples."""
        if self.is_atomic_elements:
            for _, value in self.bat.pairs():
                yield value
        else:
            names = list(self.columns)
            iters = [self.columns[name].pairs() for name in names]
            for parts in zip(*iters):
                yield {name: value for name, (_, value) in zip(names, parts)}

    def to_python(self):
        elements = list(self.iter_elements())
        if isinstance(self.stype, SetType):
            return set(elements)
        return elements

    def replace_columns(self, columns: Mapping[str, BAT],
                        stype: StructureType | None = None) -> "CollectionValue":
        """A new value with the same (or given) type over new columns."""
        return CollectionValue(stype or self.stype, columns)

    # -- semantics-aware equality ------------------------------------------------

    def equals(self, other: StructureValue) -> bool:
        if not isinstance(other, CollectionValue) or self.stype != other.stype:
            return False
        if self.count != other.count:
            return False
        mine, theirs = list(self.iter_elements()), list(other.iter_elements())
        if isinstance(self.stype, ListType):
            return mine == theirs
        if isinstance(self.stype, SetType):
            return set(mine) == set(theirs)
        # BAG: multiset equality
        key = ((lambda e: tuple(sorted(e.items())))
               if mine and isinstance(mine[0], dict) else (lambda e: e))
        return Counter(map(key, mine)) == Counter(map(key, theirs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = list(self.iter_elements())[:5]
        suffix = ", ..." if self.count > 5 else ""
        return f"{self.stype}({preview}{suffix}, n={self.count})"


class TupleValue(StructureValue):
    """A record of named structure values."""

    def __init__(self, fields: Mapping[str, StructureValue]) -> None:
        self.fields = dict(fields)
        self.stype = TupleType.of(**{name: value.stype for name, value in self.fields.items()})

    def field(self, name: str) -> StructureValue:
        try:
            return self.fields[name]
        except KeyError:
            raise AlgebraTypeError(f"tuple value has no field {name!r}") from None

    def equals(self, other: StructureValue) -> bool:
        if not isinstance(other, TupleValue) or self.stype != other.stype:
            return False
        return all(value.equals(other.fields[name]) for name, value in self.fields.items())

    def to_python(self):
        return {name: value.to_python() for name, value in self.fields.items()}


def _atoms_to_array(elements, element_type: AtomicType) -> np.ndarray:
    elements = list(elements)
    if element_type.kind == "str":
        if not elements:
            return np.asarray([], dtype="U1")
        return np.asarray([str(e) for e in elements])
    dtype = np.int64 if element_type.kind == "int" else np.float64
    return np.asarray(elements, dtype=dtype)


# -- convenient literal constructors ----------------------------------------


def make_list(elements, element_type: AtomicType | None = None) -> CollectionValue:
    """Build a ``LIST<atom>`` value from a python sequence."""
    element_type = element_type or _infer_elements_type(elements)
    return CollectionValue.from_atoms(ListType(element_type), elements)


def make_bag(elements, element_type: AtomicType | None = None) -> CollectionValue:
    """Build a ``BAG<atom>`` value from a python sequence."""
    element_type = element_type or _infer_elements_type(elements)
    return CollectionValue.from_atoms(BagType(element_type), elements)


def make_set(elements, element_type: AtomicType | None = None) -> CollectionValue:
    """Build a ``SET<atom>`` value (duplicates removed)."""
    element_type = element_type or _infer_elements_type(elements)
    return CollectionValue.from_atoms(SetType(element_type), elements)


def _infer_elements_type(elements) -> AtomicType:
    for element in elements:
        return _infer_atom_type(element)
    return INT  # empty collections default to int elements
