"""Static analysis of algebra plans: the plan verifier.

The correctness tooling around the optimizer (see ``docs/API.md``,
"Plan verification"):

* :mod:`~repro.analysis.codes` — the stable ``MOA001``... diagnostic
  code registry;
* :mod:`~repro.analysis.diagnostics` — ``Diagnostic`` records with
  expr-path locations and text/JSON report rendering;
* :mod:`~repro.analysis.properties` — static ordering / duplicate /
  cardinality property inference over ``Expr`` trees;
* :mod:`~repro.analysis.analyzers` — the analyzer suite (type
  soundness, ordering, safe-vs-unsafe cut-off classification,
  cardinality, fragment coverage, shard safety of parallel plans)
  plus per-rewrite step checks;
* :mod:`~repro.analysis.bounds` — the interval-domain abstract
  interpreter behind ``repro bounds``: certified score intervals at
  every plan edge and the ``MOA9xx`` bound-certification family;
* :mod:`~repro.analysis.soundness` — the differential rewrite-rule
  soundness harness and the verified safety-label cache;
* :mod:`~repro.analysis.lint` — ``repro lint`` entry points and the
  seeded unsafe ``stop_after`` pushdown exemplar;
* :mod:`~repro.analysis.concurrency` — the ``repro check`` pass:
  AST-based effect inference over the Python codebase itself plus a
  lock-discipline / race analyzer (the ``MOA7xx`` family);
* :mod:`~repro.analysis.lifecycle` — resource-lifecycle & async
  cancellation safety (the ``MOA11xx`` family): CFG typestate
  dataflow for acquire/release discipline, await-hazard analysis,
  and the static lock-order deadlock graph cross-checked against the
  runtime sanitizer.
"""

from .analyzers import (
    DEFAULT_ANALYZERS,
    AnalysisContext,
    Analyzer,
    BoundFlowAnalyzer,
    CacheReuseAnalyzer,
    CacheReuseDeclaration,
    CardinalityAnalyzer,
    CutoffClassification,
    CutoffSafetyAnalyzer,
    FragmentCoverageAnalyzer,
    FragmentDeclaration,
    OrderingAnalyzer,
    ShardDeclaration,
    ShardSafetyAnalyzer,
    TypeSoundnessAnalyzer,
    analyze_expr,
    check_rewrite_step,
    classify_cutoffs,
)
from .bounds import (
    BoundCertificate,
    BoundFlow,
    BoundSeedDeclaration,
    PruningDeclaration,
    ResumeSourceDeclaration,
    WorstCaseError,
    analyze_bound_flow,
    block_bound_declarations,
    certify,
    check_bounds_rewrite,
    derive_bounds,
)
from .codes import CODES, SEVERITIES, DiagnosticCode, all_codes, code_info
from .concurrency import (
    WORKER_ROOTS,
    analyze_effects,
    check_package,
    check_paths,
    effect_summary,
    infer_module_effects,
    infer_package_effects,
)
from .diagnostics import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    Diagnostic,
    DiagnosticReport,
    cli_payload,
    exit_code_for,
    format_path,
    make_diagnostic,
    severity_rank,
    subexpr_at,
)
from .lifecycle import (
    build_lock_graph,
    check_lifecycle,
    check_lifecycle_paths,
    crosscheck_lock_order,
    lock_graph_diagnostics,
    lock_order_cycles,
    static_lock_order_edges,
)
from .lint import (
    DEMO_EXPRESSION,
    SEEDED_UNSOUND_RULES,
    WIDENING_DEMO_EXPRESSION,
    UnsafeSelectWidening,
    UnsafeStopAfterPushdown,
    demo_unsafe_rewrite,
    demo_widening_rewrite,
    lint_expr,
    lint_file,
    lint_text,
)
from .properties import (
    ORDER_SENSITIVE_OPS,
    PlanProperties,
    infer_properties,
    properties_of,
)
from .serve import check_serve, check_serve_paths, epoch_mismatch_diagnostic
from .soundness import (
    RuleVerdict,
    SoundnessHarness,
    apply_rule_somewhere,
    clear_verified_cache,
    default_corpus,
    ensure_verified,
    verified_verdict,
)

__all__ = [
    "AnalysisContext",
    "Analyzer",
    "BoundCertificate",
    "BoundFlow",
    "BoundFlowAnalyzer",
    "BoundSeedDeclaration",
    "CODES",
    "CacheReuseAnalyzer",
    "CacheReuseDeclaration",
    "CardinalityAnalyzer",
    "CutoffClassification",
    "CutoffSafetyAnalyzer",
    "DEFAULT_ANALYZERS",
    "DEMO_EXPRESSION",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "Diagnostic",
    "DiagnosticCode",
    "DiagnosticReport",
    "FragmentCoverageAnalyzer",
    "FragmentDeclaration",
    "ORDER_SENSITIVE_OPS",
    "OrderingAnalyzer",
    "PlanProperties",
    "PruningDeclaration",
    "ResumeSourceDeclaration",
    "RuleVerdict",
    "SEEDED_UNSOUND_RULES",
    "SEVERITIES",
    "ShardDeclaration",
    "ShardSafetyAnalyzer",
    "SoundnessHarness",
    "TypeSoundnessAnalyzer",
    "UnsafeSelectWidening",
    "UnsafeStopAfterPushdown",
    "WIDENING_DEMO_EXPRESSION",
    "WORKER_ROOTS",
    "WorstCaseError",
    "all_codes",
    "analyze_bound_flow",
    "block_bound_declarations",
    "build_lock_graph",
    "analyze_effects",
    "analyze_expr",
    "apply_rule_somewhere",
    "certify",
    "check_bounds_rewrite",
    "check_lifecycle",
    "check_lifecycle_paths",
    "check_package",
    "check_paths",
    "check_rewrite_step",
    "check_serve",
    "check_serve_paths",
    "crosscheck_lock_order",
    "lock_graph_diagnostics",
    "lock_order_cycles",
    "static_lock_order_edges",
    "derive_bounds",
    "classify_cutoffs",
    "clear_verified_cache",
    "cli_payload",
    "code_info",
    "default_corpus",
    "effect_summary",
    "exit_code_for",
    "demo_unsafe_rewrite",
    "demo_widening_rewrite",
    "ensure_verified",
    "epoch_mismatch_diagnostic",
    "format_path",
    "infer_module_effects",
    "infer_package_effects",
    "infer_properties",
    "lint_expr",
    "lint_file",
    "lint_text",
    "make_diagnostic",
    "properties_of",
    "severity_rank",
    "subexpr_at",
    "verified_verdict",
]
