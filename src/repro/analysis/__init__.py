"""Static analysis of algebra plans: the plan verifier.

The correctness tooling around the optimizer (see ``docs/API.md``,
"Plan verification"):

* :mod:`~repro.analysis.codes` — the stable ``MOA001``... diagnostic
  code registry;
* :mod:`~repro.analysis.diagnostics` — ``Diagnostic`` records with
  expr-path locations and text/JSON report rendering;
* :mod:`~repro.analysis.properties` — static ordering / duplicate /
  cardinality property inference over ``Expr`` trees;
* :mod:`~repro.analysis.analyzers` — the analyzer suite (type
  soundness, ordering, safe-vs-unsafe cut-off classification,
  cardinality, fragment coverage, shard safety of parallel plans)
  plus per-rewrite step checks;
* :mod:`~repro.analysis.soundness` — the differential rewrite-rule
  soundness harness and the verified safety-label cache;
* :mod:`~repro.analysis.lint` — ``repro lint`` entry points and the
  seeded unsafe ``stop_after`` pushdown exemplar.
"""

from .analyzers import (
    DEFAULT_ANALYZERS,
    AnalysisContext,
    Analyzer,
    CardinalityAnalyzer,
    CutoffClassification,
    CutoffSafetyAnalyzer,
    FragmentCoverageAnalyzer,
    FragmentDeclaration,
    OrderingAnalyzer,
    ShardDeclaration,
    ShardSafetyAnalyzer,
    TypeSoundnessAnalyzer,
    analyze_expr,
    check_rewrite_step,
    classify_cutoffs,
)
from .codes import CODES, SEVERITIES, DiagnosticCode, all_codes, code_info
from .diagnostics import (
    Diagnostic,
    DiagnosticReport,
    format_path,
    make_diagnostic,
    severity_rank,
    subexpr_at,
)
from .lint import (
    DEMO_EXPRESSION,
    UnsafeStopAfterPushdown,
    demo_unsafe_rewrite,
    lint_expr,
    lint_file,
    lint_text,
)
from .properties import (
    ORDER_SENSITIVE_OPS,
    PlanProperties,
    infer_properties,
    properties_of,
)
from .soundness import (
    RuleVerdict,
    SoundnessHarness,
    apply_rule_somewhere,
    clear_verified_cache,
    default_corpus,
    ensure_verified,
    verified_verdict,
)

__all__ = [
    "AnalysisContext",
    "Analyzer",
    "CODES",
    "CardinalityAnalyzer",
    "CutoffClassification",
    "CutoffSafetyAnalyzer",
    "DEFAULT_ANALYZERS",
    "DEMO_EXPRESSION",
    "Diagnostic",
    "DiagnosticCode",
    "DiagnosticReport",
    "FragmentCoverageAnalyzer",
    "FragmentDeclaration",
    "ORDER_SENSITIVE_OPS",
    "OrderingAnalyzer",
    "PlanProperties",
    "RuleVerdict",
    "SEVERITIES",
    "ShardDeclaration",
    "ShardSafetyAnalyzer",
    "SoundnessHarness",
    "TypeSoundnessAnalyzer",
    "UnsafeStopAfterPushdown",
    "all_codes",
    "analyze_expr",
    "apply_rule_somewhere",
    "check_rewrite_step",
    "classify_cutoffs",
    "clear_verified_cache",
    "code_info",
    "default_corpus",
    "demo_unsafe_rewrite",
    "ensure_verified",
    "format_path",
    "infer_properties",
    "lint_expr",
    "lint_file",
    "lint_text",
    "make_diagnostic",
    "properties_of",
    "severity_rank",
    "subexpr_at",
    "verified_verdict",
]
