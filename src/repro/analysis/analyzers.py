"""The analyzer suite: static checks over logical plans and rewrites.

Each :class:`Analyzer` walks one expression tree under an
:class:`AnalysisContext` and yields :class:`Diagnostic` records.  The
suite covers the verifier's five dimensions:

* type soundness (:class:`TypeSoundnessAnalyzer`),
* ordering discipline (:class:`OrderingAnalyzer`),
* safe vs unsafe top-N / ``stop_after`` classification
  (:class:`CutoffSafetyAnalyzer`, :func:`classify_cutoffs`),
* cardinality bounds (:class:`CardinalityAnalyzer`),
* fragment coverage (:class:`FragmentCoverageAnalyzer`),
* shard safety of parallel plans (:class:`ShardSafetyAnalyzer`),
* cache-reuse safety (:class:`CacheReuseAnalyzer`),
* score-bound certification (:class:`BoundFlowAnalyzer`, backed by the
  interval abstract interpreter in :mod:`repro.analysis.bounds`).

:func:`check_rewrite_step` applies the cross-rewrite checks (ordering /
duplicate-semantics preservation, cardinality monotonicity, rule safety
labels) to one ``before => after`` rule application — the pipeline's
``verify=True`` mode runs it over every trace entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..algebra.expr import Apply, Expr, ScalarLiteral, Var
from ..algebra.extensions import Registry, default_registry
from ..algebra.types import ListType, StructureType
from ..errors import AlgebraTypeError, UnknownExtensionError, UnknownOperatorError
from .diagnostics import Diagnostic, ExprPath, make_diagnostic
from .properties import (
    ORDER_SENSITIVE_OPS,
    PlanProperties,
    infer_properties,
)


@dataclass(frozen=True)
class FragmentDeclaration:
    """Declares an environment variable as one fragment of a parent
    collection split into ``total`` fragments."""

    parent: str
    index: int
    total: int


@dataclass(frozen=True)
class ShardDeclaration:
    """Declares an environment variable as one document-range shard of
    a parent collection partitioned into ``total`` shards (the
    :mod:`repro.parallel` sharder's layout, seen statically)."""

    parent: str
    index: int
    total: int


@dataclass(frozen=True)
class CacheReuseDeclaration:
    """Declares one proposed reuse of cached query state.

    Describes what the cache holds (built under which epoch, aggregate,
    fragment set and shard layout, to which depth, with which safety)
    against what the query at hand needs; ``None`` fields are "not
    applicable / unknown" and skip the corresponding check.  The
    :class:`CacheReuseAnalyzer` turns every unsound pairing into an
    ``MOA8xx`` diagnostic, and the optimizer consults :meth:`violations`
    before granting a plan the ``cache_hit`` / ``resume_from`` fast-path
    properties.
    """

    #: label for messages (e.g. the fingerprint digest or query text)
    name: str = "cache entry"
    cached_epoch: int | None = None
    current_epoch: int | None = None
    cached_aggregate: str | None = None
    query_aggregate: str | None = None
    cached_fragments: tuple | None = None
    current_fragments: tuple | None = None
    cached_shard_layout: tuple | None = None
    current_shard_layout: tuple | None = None
    #: deepest cached answer and the depth the query requests
    cached_n: int | None = None
    requested_n: int | None = None
    #: whether the entry's scores are independent of its stopping depth
    prefix_safe: bool = True
    #: whether the entry holds the complete corpus ranking
    complete: bool = False
    #: whether the entry carries certified resume state (frontier/replay)
    has_resume: bool = False

    def violations(self) -> list[tuple[str, str]]:
        """Every ``(code, message)`` that makes this reuse unsound."""
        out: list[tuple[str, str]] = []
        if (self.cached_epoch is not None and self.current_epoch is not None
                and self.cached_epoch < self.current_epoch):
            out.append((
                "MOA801",
                f"{self.name}: built at corpus epoch {self.cached_epoch}, "
                f"query runs at epoch {self.current_epoch} — scores may "
                f"have changed",
            ))
        if (self.cached_aggregate is not None and self.query_aggregate is not None
                and self.cached_aggregate != self.query_aggregate):
            out.append((
                "MOA802",
                f"{self.name}: cached under aggregate "
                f"{self.cached_aggregate!r}, query aggregates with "
                f"{self.query_aggregate!r}",
            ))
        if (self.cached_fragments is not None and self.current_fragments is not None
                and tuple(self.cached_fragments) != tuple(self.current_fragments)):
            out.append((
                "MOA803",
                f"{self.name}: cached over fragments "
                f"{tuple(self.cached_fragments)}, query reads "
                f"{tuple(self.current_fragments)} — different candidate "
                f"populations",
            ))
        if (self.cached_shard_layout is not None
                and self.current_shard_layout is not None
                and tuple(self.cached_shard_layout) != tuple(self.current_shard_layout)):
            out.append((
                "MOA804",
                f"{self.name}: bounds keyed to shard layout "
                f"{tuple(self.cached_shard_layout)}, current layout is "
                f"{tuple(self.current_shard_layout)}",
            ))
        if (self.cached_n is not None and self.requested_n is not None
                and not self.complete):
            deeper = self.requested_n > self.cached_n
            mismatched = self.requested_n != self.cached_n
            if (deeper and not self.has_resume) or (not self.prefix_safe and mismatched):
                out.append((
                    "MOA805",
                    f"{self.name}: top-{self.requested_n} requested from a "
                    f"{'non-prefix-safe ' if not self.prefix_safe else ''}"
                    f"top-{self.cached_n} entry with no resume state",
                ))
        return out


@dataclass
class AnalysisContext:
    """Static context shared by all analyzers."""

    env_types: Mapping[str, StructureType] = field(default_factory=dict)
    registry: Registry = field(default_factory=default_registry)
    #: optional fragment metadata: var name -> FragmentDeclaration
    fragments: Mapping[str, FragmentDeclaration] = field(default_factory=dict)
    #: optional shard metadata: var name -> ShardDeclaration
    shards: Mapping[str, ShardDeclaration] = field(default_factory=dict)
    #: the plan's declared `parallel=K` property: the plan runs under
    #: the distributed coordinator with K-way sharding (None = serial)
    parallel: int | None = None
    #: whether the coordinator's round-2 probe is enabled (the merge
    #: may re-fetch a shard's items deeper than a shard-local cut-off)
    merge_probe: bool = True
    #: proposed cache reuses the plan depends on (MOA8xx checks)
    cache_reuse: tuple = ()
    #: declared score intervals per environment variable (var name ->
    #: :class:`~repro.intervals.ScoreInterval`), the bound analyzer's
    #: source facts
    score_bounds: Mapping[str, object] = field(default_factory=dict)
    #: the aggregate the plan's threshold engine combines with (an
    #: :class:`~repro.topn.aggregates.AggregateFunction` or its name)
    aggregate: object | None = None
    #: which threshold engine the plan runs under ("TA", "NRA", "CA",
    #: "FA", "coordinator"...; None = no threshold administration)
    threshold_engine: str | None = None
    #: pruning decisions to certify (MOA902):
    #: :class:`~repro.analysis.bounds.PruningDeclaration` records
    pruning: tuple = ()
    #: seeded threshold bounds to epoch-check (MOA905):
    #: :class:`~repro.analysis.bounds.BoundSeedDeclaration` records
    bound_seeds: tuple = ()
    #: resumed-from-cache frontiers (feedback edges of the bound flow):
    #: :class:`~repro.analysis.bounds.ResumeSourceDeclaration` records
    resume_sources: tuple = ()

    def properties(self, expr: Expr) -> dict[ExprPath, PlanProperties]:
        return infer_properties(expr, self.env_types, self.registry)

    def order_sensitive_ops(self) -> frozenset:
        """Operator names whose results depend on input order: the
        built-in set plus anything the registry declares."""
        declared = {
            opdef.name
            for opdef in self.registry.all_operators()
            if opdef.properties.get("order_sensitive")
        }
        return ORDER_SENSITIVE_OPS | frozenset(declared)


class Analyzer:
    """Base class: one static check over an expression tree."""

    #: short analyzer name for reports
    name = "abstract"

    def analyze(self, expr: Expr, context: AnalysisContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<analyzer {self.name}>"


def _walk_with_paths(expr: Expr, path: ExprPath = ()) -> Iterator[tuple[ExprPath, Expr]]:
    yield path, expr
    for index, child in enumerate(expr.children()):
        yield from _walk_with_paths(child, path + (index,))


def _first_value_child(expr: Apply) -> tuple[int, Expr] | None:
    """Index and node of the first non-scalar-literal argument."""
    for index, child in enumerate(expr.children()):
        if not isinstance(child, ScalarLiteral):
            return index, child
    return None


class TypeSoundnessAnalyzer(Analyzer):
    """Every node must type-check; failures are classified into
    unbound variables (MOA002), unknown operators (MOA003) and general
    type errors (MOA001).  Only the deepest failing nodes report, so
    one root cause yields one diagnostic."""

    name = "type-soundness"

    def analyze(self, expr, context):
        failed: set[ExprPath] = set()
        # deepest-first so parents of a failing child stay quiet
        for path, node in sorted(_walk_with_paths(expr), key=lambda pair: -len(pair[0])):
            if any(child_path in failed for child_path, _ in _walk_with_paths(node, path)
                   if child_path != path):
                failed.add(path)
                continue
            try:
                node.infer_type(context.env_types, context.registry)
            except (UnknownOperatorError, UnknownExtensionError) as exc:
                failed.add(path)
                yield make_diagnostic("MOA003", str(exc), path, node)
            except AlgebraTypeError as exc:
                failed.add(path)
                if isinstance(node, Var):
                    yield make_diagnostic("MOA002", str(exc), path, node)
                else:
                    yield make_diagnostic("MOA001", str(exc), path, node)


class OrderingAnalyzer(Analyzer):
    """Order-sensitive operators must consume ordered structures: a
    ``slice``/``getat``/``concat``/``reverse`` (or any operator the
    registry marks ``order_sensitive``) over a BAG or SET is flagged
    (MOA101)."""

    name = "ordering"

    def analyze(self, expr, context):
        order_sensitive = context.order_sensitive_ops()
        props = context.properties(expr)
        for path, node in _walk_with_paths(expr):
            if not isinstance(node, Apply) or node.op not in order_sensitive:
                continue
            for index, child in enumerate(node.children()):
                if isinstance(child, ScalarLiteral):
                    continue
                child_props = props[path + (index,)]
                if child_props.stype is None:
                    continue  # typing failure reported separately
                if not child_props.stype.ordered:
                    yield make_diagnostic(
                        "MOA101",
                        f"order-sensitive operator {node.op!r} consumes an "
                        f"unordered {child_props.stype}: element order "
                        f"formally does not exist for this structure",
                        path, node,
                    )


@dataclass(frozen=True)
class CutoffClassification:
    """One cut-off (stop_after-style prefix) node and its safety."""

    path: ExprPath
    expr: str
    op: str
    safe: bool
    reason: str


def classify_cutoffs(expr: Expr, context: AnalysisContext) -> list[CutoffClassification]:
    """Classify every cut-off node as safe or unsafe.

    Cut-offs are ``topn`` (always safe: it establishes its own
    ordering), prefix ``slice`` at offset 0, and any explicit
    ``stopafter`` operator.  A prefix cut is *safe* when its input is
    provably ordered by a key (monotone-score prefix: the cut keeps the
    true top elements) or at least positionally deterministic (a LIST);
    it is *unsafe* when the input's structure has no element order.
    """
    props = context.properties(expr)
    out: list[CutoffClassification] = []
    for path, node in _walk_with_paths(expr):
        if not isinstance(node, Apply):
            continue
        if node.op == "topn":
            out.append(CutoffClassification(
                path, str(node), node.op, True,
                "topn orders by its own key before cutting",
            ))
            continue
        if node.op not in ("slice", "stopafter"):
            continue
        if node.op == "slice":
            scalars = [a.value for a in node.children() if isinstance(a, ScalarLiteral)]
            if len(scalars) != 2 or scalars[0] != 0:
                continue  # mid-stream slices are pagination, not cut-offs
        value_child = _first_value_child(node)
        if value_child is None:
            continue
        index, child = value_child
        child_props = props[path + (index,)]
        if child_props.ordered_by is not None:
            key, descending = child_props.ordered_by
            direction = "desc" if descending else "asc"
            out.append(CutoffClassification(
                path, str(node), node.op, True,
                f"input is ordered by {key or 'element'} ({direction}): "
                f"the prefix is the true top-N",
            ))
        elif child_props.stype is not None and child_props.stype.ordered:
            out.append(CutoffClassification(
                path, str(node), node.op, True,
                "input is a LIST: the prefix is positionally well defined",
            ))
        else:
            stype = child_props.stype
            described = str(stype) if stype is not None else "an ill-typed input"
            out.append(CutoffClassification(
                path, str(node), node.op, False,
                f"prefix cut over unordered {described}: keeps arbitrary "
                f"elements, not the best ones",
            ))
    return out


class CutoffSafetyAnalyzer(Analyzer):
    """Emits MOA201 for every cut-off classified unsafe."""

    name = "cutoff-safety"

    def analyze(self, expr, context):
        for classification in classify_cutoffs(expr, context):
            if not classification.safe:
                yield make_diagnostic(
                    "MOA201",
                    f"unsafe {classification.op}: {classification.reason}",
                    classification.path, classification.expr,
                )


class CardinalityAnalyzer(Analyzer):
    """Cut-offs whose count meets or exceeds the static input bound are
    no-ops (MOA203): the plan does the cut-off's work for nothing."""

    name = "cardinality"

    def analyze(self, expr, context):
        props = context.properties(expr)
        for path, node in _walk_with_paths(expr):
            if not isinstance(node, Apply) or node.op not in ("topn", "slice"):
                continue
            scalars = [a.value for a in node.children() if isinstance(a, ScalarLiteral)]
            if node.op == "topn":
                if scalars and isinstance(scalars[0], str):
                    scalars = scalars[1:]
                count = scalars[0] if scalars else None
            else:
                count = scalars[1] if len(scalars) == 2 and scalars[0] == 0 else None
            if not isinstance(count, (int, float)):
                continue
            value_child = _first_value_child(node)
            if value_child is None:
                continue
            bound = props[path + (value_child[0],)].max_rows
            if bound != float("inf") and count >= bound:
                yield make_diagnostic(
                    "MOA203",
                    f"cut-off keeps {count:g} of at most {bound:g} input "
                    f"elements: the cut is a no-op",
                    path, node,
                )


class FragmentCoverageAnalyzer(Analyzer):
    """When the context declares fragment metadata, a plan referencing
    a strict subset of a parent's fragments is flagged (MOA401): it
    computes the paper's unsafe fragment-restricted approximation."""

    name = "fragment-coverage"

    def analyze(self, expr, context):
        if not context.fragments:
            return
        used: dict[str, set[int]] = {}
        first_path: dict[str, ExprPath] = {}
        for path, node in _walk_with_paths(expr):
            if isinstance(node, Var) and node.name in context.fragments:
                declaration = context.fragments[node.name]
                used.setdefault(declaration.parent, set()).add(declaration.index)
                first_path.setdefault(declaration.parent, path)
        totals = {d.parent: d.total for d in context.fragments.values()}
        for parent, indexes in sorted(used.items()):
            total = totals[parent]
            if len(indexes) < total:
                missing = total - len(indexes)
                yield make_diagnostic(
                    "MOA401",
                    f"plan reads {len(indexes)} of {total} fragments of "
                    f"{parent!r} ({missing} missing): results are a "
                    f"fragment-restricted approximation",
                    first_path[parent], expr,
                )


def _cutoff_count(node: Apply) -> int | None:
    """The element count a cut-off node keeps, when statically known."""
    scalars = [a.value for a in node.children() if isinstance(a, ScalarLiteral)]
    if node.op == "topn":
        if scalars and isinstance(scalars[0], str):
            scalars = scalars[1:]
        count = scalars[0] if scalars else None
    elif node.op == "slice":
        count = scalars[1] if len(scalars) == 2 and scalars[0] == 0 else None
    else:  # stopafter
        count = scalars[0] if scalars else None
    return int(count) if isinstance(count, (int, float)) else None


class ShardSafetyAnalyzer(Analyzer):
    """Shard safety of parallel plans (MOA601/602/603).

    When the context declares document-range shards, a cut-off whose
    input reads a strict subset of a parent's shards produces a
    *shard-local* top-N — sound only under the distributed coordinator
    (``context.parallel``), and, when cut shallower than the plan's
    global top-N, only with the coordinator's round-2 probe enabled
    (``context.merge_probe``): ``stop_after`` may not push below a
    shard boundary without it.  A declared ``parallel=K`` that
    disagrees with the shard layout is also flagged.
    """

    name = "shard-safety"

    def analyze(self, expr, context):
        if context.parallel is not None:
            totals = {d.parent: d.total for d in context.shards.values()}
            for parent, total in sorted(totals.items()):
                if total != context.parallel:
                    yield make_diagnostic(
                        "MOA603",
                        f"plan declares parallel={context.parallel} but "
                        f"{parent!r} is split into {total} shards",
                        (), expr,
                    )
        if not context.shards:
            return
        nodes = dict(_walk_with_paths(expr))
        cutoffs = [c for c in classify_cutoffs(expr, context)
                   if isinstance(nodes.get(c.path), Apply)]
        global_n = None
        for classification in sorted(cutoffs, key=lambda c: len(c.path)):
            count = _cutoff_count(nodes[classification.path])
            if count is not None:
                global_n = count
                break
        totals = {d.parent: d.total for d in context.shards.values()}
        for classification in cutoffs:
            node = nodes[classification.path]
            used: dict[str, set[int]] = {}
            for _, sub in _walk_with_paths(node, classification.path):
                if isinstance(sub, Var) and sub.name in context.shards:
                    declaration = context.shards[sub.name]
                    used.setdefault(declaration.parent, set()).add(declaration.index)
            for parent, indexes in sorted(used.items()):
                if len(indexes) >= totals[parent]:
                    continue
                if context.parallel is None:
                    yield make_diagnostic(
                        "MOA601",
                        f"{classification.op} cuts a scan of "
                        f"{len(indexes)} of {totals[parent]} shards of "
                        f"{parent!r} with no distributed merge: the "
                        f"shard-local top-N is not the global one",
                        classification.path, node,
                    )
                    continue
                count = _cutoff_count(node)
                if (not context.merge_probe and count is not None
                        and global_n is not None and count < global_n):
                    yield make_diagnostic(
                        "MOA602",
                        f"{classification.op} keeps {count} elements per "
                        f"shard of {parent!r}, below the global top-"
                        f"{global_n}, and the merge round-2 probe is "
                        f"disabled: the threshold merge may miss answers",
                        classification.path, node,
                    )


class CacheReuseAnalyzer(Analyzer):
    """Cache-reuse safety (MOA801–805).

    The expression tree plays no role: the context's
    :class:`CacheReuseDeclaration` records describe the reuses the plan
    depends on, and every unsound pairing becomes a diagnostic at the
    plan root.  The runtime cache cannot *construct* most of these
    (fingerprints embed epoch, aggregate, fragments and shard layout),
    so the analyzer's job is guarding explicit reuse — pinned entries,
    externally persisted state, hand-built resume plans.
    """

    name = "cache-reuse"

    def analyze(self, expr, context):
        for declaration in context.cache_reuse:
            for code, message in declaration.violations():
                yield make_diagnostic(code, message, (), expr)


class BoundFlowAnalyzer(Analyzer):
    """Score-bound certification (MOA901/902/903/905).

    Runs the interval-domain abstract interpreter of
    :mod:`repro.analysis.bounds` over the plan and checks every pruning
    decision the context declares (threshold engine + aggregate,
    :class:`~repro.analysis.bounds.PruningDeclaration`,
    :class:`~repro.analysis.bounds.BoundSeedDeclaration`,
    :class:`~repro.analysis.bounds.ResumeSourceDeclaration`) against
    the derived flow.  The body lives in the bounds module; the import
    is deferred because that module builds on this one."""

    name = "bound-flow"

    def analyze(self, expr, context):
        from .bounds import analyze_bound_flow
        yield from analyze_bound_flow(expr, context)


#: the default suite, in reporting order
DEFAULT_ANALYZERS: tuple[Analyzer, ...] = (
    TypeSoundnessAnalyzer(),
    OrderingAnalyzer(),
    CutoffSafetyAnalyzer(),
    CardinalityAnalyzer(),
    FragmentCoverageAnalyzer(),
    ShardSafetyAnalyzer(),
    CacheReuseAnalyzer(),
    BoundFlowAnalyzer(),
)


def analyze_expr(
    expr: Expr,
    context: AnalysisContext | None = None,
    analyzers: Iterable[Analyzer] | None = None,
) -> list[Diagnostic]:
    """Run the analyzer suite over one expression."""
    context = context or AnalysisContext()
    out: list[Diagnostic] = []
    for analyzer in analyzers or DEFAULT_ANALYZERS:
        out.extend(analyzer.analyze(expr, context))
    return out


# -- rewrite-step checks -----------------------------------------------------


def check_rewrite_step(
    before: Expr,
    after: Expr,
    context: AnalysisContext | None = None,
    rule=None,
) -> list[Diagnostic]:
    """Cross-rewrite checks for one rule application.

    Verifies that the rewrite preserved the result type, did not drop a
    statically known ordering while still promising a LIST (MOA102),
    did not change duplicate semantics (MOA103), did not grow the
    cardinality bound (MOA301), and did not widen the derived score
    interval (MOA904).  A rule carrying a non-``safe`` declared safety
    label is surfaced as MOA202.
    """
    context = context or AnalysisContext()
    rule_name = getattr(rule, "name", None) if rule is not None else None
    out: list[Diagnostic] = []
    try:
        props_before = context.properties(before)[()]
        props_after = context.properties(after)[()]
    except Exception:  # pathological trees: the expr analyzers report those
        return out

    if (
        props_before.well_typed
        and props_after.well_typed
        and props_before.stype != props_after.stype
    ):
        out.append(make_diagnostic(
            "MOA001",
            f"rewrite changed the result type "
            f"{props_before.stype} -> {props_after.stype}",
            (), after, rule=rule_name,
        ))

    if (
        props_before.ordered_by is not None
        and props_after.ordered_by is None
        and isinstance(props_after.stype, ListType)
    ):
        key, descending = props_before.ordered_by
        out.append(make_diagnostic(
            "MOA102",
            f"rewrite dropped the proven ordering by {key or 'element'} "
            f"({'desc' if descending else 'asc'}) while the result is "
            f"still a LIST",
            (), after, rule=rule_name,
        ))

    if props_before.distinct and not props_after.distinct:
        out.append(make_diagnostic(
            "MOA103",
            "rewrite lost the duplicate-free guarantee: "
            "duplicate-sensitive consumers above may change value",
            (), after, rule=rule_name,
        ))

    if props_after.max_rows > props_before.max_rows:
        out.append(make_diagnostic(
            "MOA301",
            f"rewrite grew the cardinality bound "
            f"{props_before.max_rows:g} -> {props_after.max_rows:g}",
            (), after, rule=rule_name,
        ))

    from .bounds import check_bounds_rewrite
    out.extend(check_bounds_rewrite(before, after, context, rule=rule))

    declared = getattr(rule, "safety", "safe") if rule is not None else "safe"
    if declared != "safe":
        out.append(make_diagnostic(
            "MOA202",
            f"rule declares safety label {declared!r}: the result may be "
            f"an approximation of the original plan",
            (), after, rule=rule_name,
        ))
    return out
