"""Score-bound abstract interpretation over plan DAGs (MOA9xx).

An interval-domain abstract interpreter: a fixpoint dataflow pass over
the expression tree derives, at every plan edge, a *certified score
interval* ``[lo, hi]`` — a :class:`~repro.intervals.ScoreInterval` the
true value of that edge provably lies in.  Transfer functions cover
every algebra operator (selections clamp, cut-offs and reorderings
preserve, concatenations join, intersections meet, scalar aggregates
fold the input interval), literal collections (exact hulls), declared
sources (:attr:`AnalysisContext.score_bounds`) and resumed-from-cache
frontiers — the one genuinely cyclic flow: a resume source replays
state produced by a *previous run of the same plan*, so its interval
depends on the root's, and the pass iterates to a fixpoint with
classic interval widening to terminate.

On top of the derived flow, :class:`BoundFlowAnalyzer` certifies every
pruning decision the plan depends on:

* **MOA901** — a non-monotone aggregate under a threshold engine
  (TA/NRA/CA/FA stop rules argue from monotonicity; static twin of
  :func:`repro.topn.aggregates.require_monotone`);
* **MOA902** — a declared pruning bound (TA threshold, coordinator
  ``τ(n)``, quit cut-off) the derived interval does *not* dominate:
  values above the bound are possible, so pruning by it can drop true
  answers;
* **MOA903** — an unsafe cut-off whose worst-case error is not even
  computable (unbounded derived interval or cardinality): the plan
  trades quality for speed with no machine-checkable error bound;
* **MOA905** — a seeded coordinator/resume bound stamped with a
  different corpus epoch than the run's (scores may have changed; the
  bound certifies nothing).

:func:`check_bounds_rewrite` is the cross-rewrite check (**MOA904**):
a rewrite whose derived root interval is *wider* than before lost
bound precision — downstream threshold administration silently
degrades.  :func:`certify` bundles everything into a
:class:`BoundCertificate`: the ``bound_certified`` plan property the
optimizer gates threshold use on, with a machine-checkable
:class:`WorstCaseError` attached to every unsafe-but-bounded plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from ..algebra.expr import Apply, Expr, Literal, ScalarLiteral, Var
from ..algebra.values import CollectionValue
from ..intervals import ScoreInterval, ThresholdBound, TOP, join_all
from .analyzers import AnalysisContext, classify_cutoffs
from .diagnostics import Diagnostic, ExprPath, format_path, make_diagnostic

#: fixpoint schedule: widen endpoints still moving after this many
#: passes, and give up to TOP after the hard cap (soundness fallback)
WIDEN_AFTER = 4
MAX_ITERATIONS = 12

#: the interval of a provably empty edge: no value ever flows, so any
#: assertion is vacuously certified — pick the bounded one, keeping
#: downstream worst-case errors computable
EMPTY_EDGE = ScoreInterval.point(0.0)


# -- declarations -------------------------------------------------------------


@dataclass(frozen=True)
class PruningDeclaration:
    """One pruning decision the plan depends on.

    ``asserted_upper`` is the bound the runtime prunes by ("nothing cut
    can score above this"): a TA threshold τ, a coordinator merge
    threshold ``τ(n)``, a quit/continue cut-off.  The declaration is
    certified when the derived interval at ``path`` *dominates* the
    bound (``hi <= asserted_upper``); otherwise MOA902 fires with the
    worst-case score error ``hi - asserted_upper``.
    """

    #: label for messages (engine or rule name)
    name: str
    #: plan edge the pruned values flow through
    path: ExprPath
    #: the upper bound the runtime prunes by
    asserted_upper: float


@dataclass(frozen=True)
class BoundSeedDeclaration:
    """A cached :class:`~repro.intervals.ThresholdBound` seeded into
    this run (coordinator bound cache, persisted resume state).

    Sound only when the bound's epoch stamp matches the run's corpus
    epoch — the fingerprint embeds the epoch precisely so stale bounds
    cannot be constructed by accident; this guards explicit seeding
    (MOA905)."""

    name: str
    bound: ThresholdBound
    current_epoch: int


def block_bound_declarations(name: str, bounds, current_epoch: int,
                             ) -> tuple[BoundSeedDeclaration, ...]:
    """Per-block score upper bounds as seeded-bound declarations.

    ``bounds`` is the epoch-stamped ThresholdBound tuple a blocked
    source exports (:meth:`repro.storage.blocks.ScoredBlocks.threshold_bounds`);
    each block bound becomes one :class:`BoundSeedDeclaration` named
    ``{name}[b{i}]``, so the MOA9xx interpreter certifies block-max
    pruning with the exact machinery (including the MOA905 staleness
    gate) it applies to coordinator thresholds: one stale block bound
    and the plan loses its ``vectorized`` property."""
    return tuple(
        BoundSeedDeclaration(name=f"{name}[b{i}]", bound=bound,
                             current_epoch=current_epoch)
        for i, bound in enumerate(bounds)
    )


@dataclass(frozen=True)
class ResumeSourceDeclaration:
    """Declares an environment variable as a resumed-from-cache
    frontier: its values replay state produced by a previous run of
    this same plan (the feedback edge of the dataflow).

    ``lo``/``hi`` bound the cached frontier itself (e.g. ``[0, τ]``
    from the producing run); the fixpoint joins the root's derived
    interval back into the source until stable.  An epoch-stamped
    declaration whose ``cached_epoch`` disagrees with ``current_epoch``
    raises MOA905 exactly like a seeded threshold bound."""

    name: str
    var: str
    lo: float = -math.inf
    hi: float = math.inf
    cached_epoch: int | None = None
    current_epoch: int | None = None

    def initial(self) -> ScoreInterval:
        return ScoreInterval(self.lo, self.hi)


# -- the derived flow ---------------------------------------------------------


@dataclass
class BoundFlow:
    """The fixpoint result: a certified interval per plan edge."""

    facts: dict[ExprPath, ScoreInterval] = field(default_factory=dict)
    #: fixpoint passes taken (1 for acyclic plans)
    iterations: int = 1
    #: whether widening fired (some feedback edge kept moving)
    widened: bool = False

    def at(self, path: ExprPath) -> ScoreInterval:
        return self.facts.get(tuple(path), TOP)

    def root(self) -> ScoreInterval:
        return self.at(())

    def to_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "widened": self.widened,
            "facts": {format_path(path): interval.to_dict()
                      for path, interval in sorted(self.facts.items())},
        }

    def render_text(self, expr: Expr) -> str:
        """The per-operator bound flow as an indented tree."""
        lines: list[str] = []

        def walk(node: Expr, path: ExprPath, depth: int) -> None:
            label = node.op if isinstance(node, Apply) else \
                ("literal" if isinstance(node, Literal) else str(node))
            lines.append(f"{'  ' * depth}{format_path(path)} {label} "
                         f"— {self.at(path).describe()}")
            for index, child in enumerate(node.children()):
                walk(child, path + (index,), depth + 1)

        walk(expr, (), 0)
        return "\n".join(lines)


def derive_bounds(expr: Expr, context: AnalysisContext | None = None) -> BoundFlow:
    """Run the fixpoint dataflow pass and annotate every edge.

    Acyclic plans converge in one bottom-up pass.  Resume-source
    declarations introduce feedback (the frontier's interval joins the
    previous pass's root interval); iteration continues until the fact
    map stabilises, with widening after :data:`WIDEN_AFTER` passes and
    a sound TOP fallback at :data:`MAX_ITERATIONS`.
    """
    context = context or AnalysisContext()
    try:
        props = context.properties(expr)
    except Exception:  # pathological trees: typing analyzers report those
        props = {}
    resume = {d.var: d for d in getattr(context, "resume_sources", ())}
    score_bounds = getattr(context, "score_bounds", {}) or {}

    feedback: dict[str, ScoreInterval] = {
        name: decl.initial() for name, decl in resume.items()
    }
    facts: dict[ExprPath, ScoreInterval] = {}
    iterations = 0
    widened = False
    while True:
        iterations += 1
        new_facts: dict[ExprPath, ScoreInterval] = {}
        _transfer(expr, (), context, props, new_facts, feedback, score_bounds)
        if not resume or new_facts == facts:
            facts = new_facts
            break
        facts = new_facts
        root = facts.get((), TOP)
        next_feedback = {}
        for name, decl in resume.items():
            grown = feedback[name].join(decl.initial().join(root))
            if iterations >= WIDEN_AFTER and grown != feedback[name]:
                grown = feedback[name].widen(grown)
                widened = True
            next_feedback[name] = grown
        if next_feedback == feedback and iterations > 1:
            break
        feedback = next_feedback
        if iterations >= MAX_ITERATIONS:  # soundness fallback
            feedback = {name: TOP for name in feedback}
            new_facts = {}
            _transfer(expr, (), context, props, new_facts, feedback, score_bounds)
            facts = new_facts
            widened = True
            break
    return BoundFlow(facts=facts, iterations=iterations, widened=widened)


def _transfer(node, path, context, props, facts, feedback, score_bounds):
    child_intervals = []
    for index, child in enumerate(node.children()):
        child_intervals.append(_transfer(child, path + (index,), context,
                                         props, facts, feedback, score_bounds))
    interval = _node_interval(node, path, child_intervals, props,
                              feedback, score_bounds)
    facts[path] = interval
    return interval


def _literal_interval(value) -> ScoreInterval:
    if not isinstance(value, CollectionValue):
        return TOP
    if value.count == 0:
        return EMPTY_EDGE  # empty postings: vacuously certified
    if not value.is_atomic_elements:
        return TOP
    elements = list(value.iter_elements())
    if not all(isinstance(e, (int, float)) and not isinstance(e, bool)
               for e in elements):
        return TOP
    return ScoreInterval.of_values(elements)


def _max_rows(props, path) -> float:
    entry = props.get(tuple(path))
    return entry.max_rows if entry is not None else math.inf


def _node_interval(node, path, child_intervals, props, feedback, score_bounds):
    if isinstance(node, ScalarLiteral):
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return TOP
        return ScoreInterval.point(float(value))
    if isinstance(node, Literal):
        return _literal_interval(node.value)
    if isinstance(node, Var):
        if node.name in feedback:
            return feedback[node.name]
        declared = score_bounds.get(node.name)
        return declared if declared is not None else TOP
    if not isinstance(node, Apply):
        return TOP

    values = [iv for child, iv in zip(node.children(), child_intervals)
              if not isinstance(child, ScalarLiteral)]
    scalars = [child.value for child in node.children()
               if isinstance(child, ScalarLiteral)]
    receiver = values[0] if values else TOP
    op = node.op

    if op == "select":
        key = scalars[0] if scalars and isinstance(scalars[0], str) else None
        bounds = scalars[1:] if key is not None else scalars
        if key is None and len(bounds) == 2 and all(
                isinstance(b, (int, float)) and not isinstance(b, bool)
                for b in bounds):
            lo, hi = float(bounds[0]), float(bounds[1])
            if lo > hi:
                return EMPTY_EDGE
            clamped = receiver.clamp(lo, hi)
            # a disjoint clamp means no element passes: vacuous edge
            return clamped if clamped is not None else ScoreInterval.point(lo)
        return receiver  # field selects keep element scores unchanged
    if op in ("sort", "topn", "slice", "stopafter", "reverse",
              "projecttobag", "projecttoset", "getat"):
        # reorderings and cut-offs keep a subset of the same values
        return receiver
    if op == "project":
        return TOP  # field extraction: no per-field intervals tracked
    if op in ("concat", "union"):
        return join_all(values) if values else TOP
    if op == "intersect":
        if not values:
            return TOP
        met = values[0]
        for other in values[1:]:
            met = met.meet(other)
            if met is None:
                return EMPTY_EDGE  # provably disjoint inputs
        return met
    if op == "difference":
        return receiver
    if op == "count":
        return ScoreInterval(0.0, _max_rows(props, path + (0,)) if node.children() else math.inf)
    if op == "sum":
        rows = _max_rows(props, _receiver_path(node, path))
        return ScoreInterval.point(0.0).join(receiver.scale(rows))
    if op in ("avg", "min", "max"):
        # folds of values drawn from the input interval stay inside it;
        # the empty-input convention (0.0) joins in
        return receiver.join(ScoreInterval.point(0.0))
    if op == "contains":
        return ScoreInterval(0.0, 1.0)
    if op == "getfield":
        return TOP
    return TOP  # unknown operator: claim nothing


def _receiver_path(node: Apply, path: ExprPath) -> ExprPath:
    for index, child in enumerate(node.children()):
        if not isinstance(child, ScalarLiteral):
            return path + (index,)
    return path


# -- certification ------------------------------------------------------------


@dataclass(frozen=True)
class WorstCaseError:
    """Machine-checkable worst-case error of an unsafe plan.

    ``score_error`` bounds how far any reported score can sit from the
    true one; ``rank_error`` bounds how many true top-N members the
    plan can miss.  Both are conservative (derived from certified
    intervals and static cardinality bounds)."""

    score_error: float
    rank_error: float

    @property
    def computable(self) -> bool:
        return math.isfinite(self.score_error) and math.isfinite(self.rank_error)

    def merge(self, other: "WorstCaseError") -> "WorstCaseError":
        return WorstCaseError(self.score_error + other.score_error,
                              self.rank_error + other.rank_error)

    def describe(self) -> str:
        def fmt(v):
            return "unbounded" if math.isinf(v) else f"{v:g}"
        return (f"worst-case score error <= {fmt(self.score_error)}, "
                f"rank error <= {fmt(self.rank_error)}")

    def to_dict(self) -> dict:
        def js(v):
            return "inf" if math.isinf(v) else v
        return {"score_error": js(self.score_error),
                "rank_error": js(self.rank_error),
                "computable": self.computable}


def _resolve_aggregate(aggregate):
    """The context's aggregate as an object (name strings looked up in
    the built-in registry; unknown names certify nothing)."""
    if aggregate is None or not isinstance(aggregate, str):
        return aggregate
    from ..topn.aggregates import BUILTIN_AGGREGATES
    return BUILTIN_AGGREGATES.get(aggregate)


def _iter_bound_diagnostics(
    expr: Expr, context: AnalysisContext, flow: BoundFlow,
) -> Iterator[tuple[Diagnostic, WorstCaseError | None]]:
    """Every MOA9xx finding with its attached worst-case error."""
    props = None
    try:
        props = context.properties(expr)
    except Exception:
        props = {}

    # MOA901 — non-monotone aggregate under a threshold engine
    engine = getattr(context, "threshold_engine", None)
    aggregate = _resolve_aggregate(getattr(context, "aggregate", None))
    if engine is not None:
        declared = getattr(context, "aggregate", None)
        if declared is not None and aggregate is None:
            yield make_diagnostic(
                "MOA901",
                f"aggregate {declared!r} is not a registered built-in and "
                f"declares no metadata: {engine} threshold administration "
                f"cannot be certified under it",
                (), expr,
            ), None
        elif aggregate is not None and not getattr(aggregate, "monotone", False):
            yield make_diagnostic(
                "MOA901",
                f"aggregate {aggregate.name!r} is not monotone: the {engine} "
                f"stop rule assumes increasing a grade never decreases the "
                f"aggregate, so its threshold prunes true answers",
                (), expr,
            ), None

    # MOA902 — pruning bound not dominated by the derived interval
    for decl in getattr(context, "pruning", ()):
        derived = flow.at(decl.path)
        if derived.dominates(decl.asserted_upper):
            continue
        score_error = derived.hi - decl.asserted_upper
        rank_error = _max_rows(props, decl.path)
        error = WorstCaseError(score_error, rank_error)
        yield make_diagnostic(
            "MOA902",
            f"{decl.name}: prunes by upper bound {decl.asserted_upper:g} "
            f"but the derived interval at {format_path(decl.path)} is "
            f"{derived.describe()} — values above the bound are possible "
            f"({error.describe()})",
            decl.path, expr,
        ), error

    # MOA903 — unsafe quit without a computable worst-case error bound
    for classification, error in _unsafe_cutoff_errors(expr, context, flow):
        if error.computable:
            continue  # certificate records the bound; no diagnostic
        yield make_diagnostic(
            "MOA903",
            f"unsafe {classification.op} quits with no computable "
            f"worst-case error: the derived input interval or cardinality "
            f"is unbounded, so the quality loss cannot be certified",
            classification.path, classification.expr,
        ), error

    # MOA905 — seeded bounds inconsistent with the fingerprinted epoch
    for seed in getattr(context, "bound_seeds", ()):
        if seed.bound.epoch == seed.current_epoch:
            continue
        yield make_diagnostic(
            "MOA905",
            f"{seed.name}: threshold bound τ({seed.bound.n}) was recorded "
            f"at corpus epoch {seed.bound.epoch} but the run is "
            f"fingerprinted at epoch {seed.current_epoch} — stale bounds "
            f"certify nothing",
            (), expr,
        ), None
    for decl in getattr(context, "resume_sources", ()):
        if decl.cached_epoch is None or decl.current_epoch is None:
            continue
        if decl.cached_epoch == decl.current_epoch:
            continue
        yield make_diagnostic(
            "MOA905",
            f"{decl.name}: resume frontier for {decl.var!r} was produced "
            f"at corpus epoch {decl.cached_epoch} but the run is "
            f"fingerprinted at epoch {decl.current_epoch}",
            (), expr,
        ), None


def _unsafe_cutoff_errors(expr, context, flow):
    """(classification, WorstCaseError) per unsafe cut-off."""
    try:
        props = context.properties(expr)
        cutoffs = classify_cutoffs(expr, context)
    except Exception:
        return
    nodes = {path: node for path, node in _walk(expr)}
    for classification in cutoffs:
        if classification.safe:
            continue
        node = nodes.get(classification.path)
        if not isinstance(node, Apply):
            continue
        input_path = _receiver_path(node, classification.path)
        interval = flow.at(input_path)
        rows = _max_rows(props, input_path)
        # an arbitrary kept element differs from the true one by at
        # most the interval width; at worst every kept slot misses, so
        # a known kept count bounds the rank error even when the input
        # cardinality is statically unbounded
        score_error = interval.width if interval.bounded else math.inf
        kept = _kept_count(node)
        if kept is not None:
            rank_error = min(rows, float(kept))
        else:
            rank_error = rows
        yield classification, WorstCaseError(score_error, rank_error)


def _kept_count(node: Apply) -> int | None:
    scalars = [a.value for a in node.children() if isinstance(a, ScalarLiteral)]
    if node.op == "topn":
        if scalars and isinstance(scalars[0], str):
            scalars = scalars[1:]
        count = scalars[0] if scalars else None
    elif node.op == "slice":
        count = scalars[1] if len(scalars) == 2 else None
    else:
        count = scalars[0] if scalars else None
    return int(count) if isinstance(count, (int, float)) else None


def _walk(expr: Expr, path: ExprPath = ()):
    yield path, expr
    for index, child in enumerate(expr.children()):
        yield from _walk(child, path + (index,))


def analyze_bound_flow(expr: Expr, context: AnalysisContext) -> Iterator[Diagnostic]:
    """The :class:`~repro.analysis.analyzers.BoundFlowAnalyzer` body:
    derive the flow, then certify every pruning decision against it
    (MOA901/902/903/905; rewrite-step widening MOA904 lives in
    :func:`check_bounds_rewrite`)."""
    flow = derive_bounds(expr, context)
    for diagnostic, _error in _iter_bound_diagnostics(expr, context, flow):
        yield diagnostic


def check_bounds_rewrite(
    before: Expr,
    after: Expr,
    context: AnalysisContext | None = None,
    rule=None,
) -> list[Diagnostic]:
    """MOA904: a rewrite that widened the derived root interval.

    The interval analogue of the cardinality-monotonicity check: a
    sound rewrite may tighten bounds (more structure proven) but never
    loosen them — a wider root interval weakens every threshold bound
    derived downstream."""
    context = context or AnalysisContext()
    rule_name = getattr(rule, "name", None) if rule is not None else None
    interval_before = derive_bounds(before, context).root()
    interval_after = derive_bounds(after, context).root()
    if interval_before.contains_interval(interval_after):
        return []
    return [make_diagnostic(
        "MOA904",
        f"rewrite widened the derived score interval "
        f"{interval_before.describe()} -> {interval_after.describe()}: "
        f"threshold bounds downstream lose precision",
        (), after, rule=rule_name,
    )]


@dataclass
class BoundCertificate:
    """The plan's bound-certification verdict.

    ``certified`` is True exactly when every pruning decision is
    dominated by the derived flow (no MOA9xx errors, no unsafe
    cut-offs): the optimizer then grants the ``bound_certified``
    property that licenses TA/CA threshold use and coordinator bound
    seeding.  An uncertified plan carries the machine-checkable
    :class:`WorstCaseError` when one is computable — the explicit
    quality/speed trade-off — and MOA9xx diagnostics otherwise."""

    certified: bool
    flow: BoundFlow
    diagnostics: list[Diagnostic]
    worst_case: WorstCaseError | None
    reasons: list[str]

    def to_dict(self) -> dict:
        return {
            "certified": self.certified,
            "root_interval": self.flow.root().to_dict(),
            "iterations": self.flow.iterations,
            "widened": self.flow.widened,
            "worst_case": self.worst_case.to_dict() if self.worst_case else None,
            "reasons": list(self.reasons),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def describe(self) -> str:
        if self.certified:
            return (f"bound-certified: every pruning decision dominated "
                    f"(root interval {self.flow.root().describe()})")
        head = "not bound-certified: " + ("; ".join(self.reasons) or
                                          "uncertified pruning decisions")
        if self.worst_case is not None:
            head += f" ({self.worst_case.describe()})"
        return head


def certify(expr: Expr, context: AnalysisContext | None = None) -> BoundCertificate:
    """Derive the flow and certify every pruning decision of ``expr``."""
    context = context or AnalysisContext()
    flow = derive_bounds(expr, context)
    diagnostics: list[Diagnostic] = []
    errors: list[WorstCaseError] = []
    reasons: list[str] = []
    for diagnostic, error in _iter_bound_diagnostics(expr, context, flow):
        diagnostics.append(diagnostic)
        reasons.append(f"{diagnostic.code}: {diagnostic.message}")
        if error is not None:
            errors.append(error)
    unsafe = list(_unsafe_cutoff_errors(expr, context, flow))
    for classification, error in unsafe:
        if error.computable:
            reasons.append(
                f"unsafe {classification.op} at "
                f"{format_path(classification.path)}: {error.describe()}")
            errors.append(error)
    certified = not diagnostics and not unsafe
    worst_case = None
    if errors:
        worst_case = errors[0]
        for error in errors[1:]:
            worst_case = worst_case.merge(error)
    return BoundCertificate(
        certified=certified,
        flow=flow,
        diagnostics=diagnostics,
        worst_case=worst_case,
        reasons=reasons,
    )
