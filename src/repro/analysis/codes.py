"""The single registry of plan-verifier diagnostic codes.

Every diagnostic the static analyzers can emit carries a *stable* code
from this table (``MOA001``...).  Codes are grouped by hundreds:

* ``MOA0xx`` — type soundness (ill-typed plans never reach execution);
* ``MOA1xx`` — ordering and duplicate semantics;
* ``MOA2xx`` — safe vs unsafe top-N / ``stop_after`` classification;
* ``MOA3xx`` — cardinality monotonicity;
* ``MOA4xx`` — fragment coverage of fragmented scans;
* ``MOA5xx`` — rewrite-framework health (budget exhaustion etc.);
* ``MOA6xx`` — shard safety of parallel plans;
* ``MOA7xx`` — concurrency effects and lock discipline of the Python
  codebase itself (the ``repro check`` analyzer);
* ``MOA8xx`` — cache-reuse safety: whether a cached answer, resume
  state or bound set may soundly serve the query at hand;
* ``MOA9xx`` — score-bound certification: the interval-domain
  abstract interpreter (``repro bounds``) derives a certified score
  interval at every plan edge and flags every pruning decision the
  derived bounds cannot license;
* ``MOA10xx`` — serve safety: the query service's admission, deadline
  and resume disciplines (:mod:`repro.analysis.serve`);
* ``MOA11xx`` — resource lifecycle and async-cancellation safety: the
  CFG-dataflow acquire/release typestate analyzer and the static
  lock-order deadlock graph (:mod:`repro.analysis.lifecycle`).

Tests assert that the table has no duplicate codes and that every code
emitted anywhere in the analysis package is registered here, so the
codes stay stable and documented across releases.
"""

from __future__ import annotations

from dataclasses import dataclass

#: severity levels, weakest first (index = rank)
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class DiagnosticCode:
    """One registered diagnostic code."""

    code: str
    title: str
    default_severity: str
    description: str

    def __post_init__(self) -> None:
        if self.default_severity not in SEVERITIES:
            raise ValueError(
                f"{self.code}: unknown severity {self.default_severity!r}; "
                f"expected one of {SEVERITIES}"
            )


def _build_table(*codes: DiagnosticCode) -> dict[str, DiagnosticCode]:
    table: dict[str, DiagnosticCode] = {}
    for entry in codes:
        if entry.code in table:
            raise ValueError(f"duplicate diagnostic code {entry.code}")
        table[entry.code] = entry
    return table


#: the full registry, keyed by code
CODES: dict[str, DiagnosticCode] = _build_table(
    # -- type soundness ----------------------------------------------------
    DiagnosticCode(
        "MOA001", "ill-typed expression", "error",
        "The expression fails static typing: an operator is applied to a "
        "structure it is not defined on, or its scalar parameters do not "
        "match the element type.  Such a plan can never execute.",
    ),
    DiagnosticCode(
        "MOA002", "unbound variable", "error",
        "The expression references a variable that is not bound in the "
        "analysis environment.",
    ),
    DiagnosticCode(
        "MOA003", "unknown operator for the input extension", "error",
        "No registered extension provides the named operator for the "
        "receiver's structure type (e.g. `slice` dispatched on a BAG, "
        "which has no element order to slice).",
    ),
    # -- ordering / duplicate semantics ------------------------------------
    DiagnosticCode(
        "MOA101", "order-sensitive operator over unordered input", "error",
        "An operator whose result depends on element order (`slice`, "
        "`getat`, `concat`, `reverse`, prefix cut-offs) consumes a BAG or "
        "SET, for which \"the ordering ... formally does not exist\" "
        "(paper, Example 1).  The result would be nondeterministic.",
    ),
    DiagnosticCode(
        "MOA102", "rewrite dropped a required ordering", "error",
        "A rewrite step replaced an expression whose output ordering was "
        "statically known with one whose ordering is unknown, while the "
        "result type still promises a LIST.  Downstream order-sensitive "
        "consumers would silently read garbage.",
    ),
    DiagnosticCode(
        "MOA103", "rewrite changed duplicate semantics", "warning",
        "A rewrite step changed whether the result is provably "
        "duplicate-free; duplicate-sensitive aggregates (count, sum, avg) "
        "above it may change value.",
    ),
    # -- safe vs unsafe top-N ----------------------------------------------
    DiagnosticCode(
        "MOA201", "unsafe cut-off: prefix not licensed by an ordering", "error",
        "A stop_after-style prefix cut (slice at offset 0, or an explicit "
        "stop_after) consumes an input that is not statically ordered, so "
        "the cut keeps *arbitrary* elements rather than the best ones — "
        "the paper's unsafe top-N flavor applied where only the safe one "
        "is licensed.",
    ),
    DiagnosticCode(
        "MOA202", "rewrite rule without a verified-safe label", "warning",
        "A plan was produced by a rewrite rule whose soundness-harness "
        "verdict is missing, failed, or whose declared safety label is "
        "`unsafe`: the plan may be an approximation of the original.",
    ),
    DiagnosticCode(
        "MOA203", "cut-off exceeds the input cardinality bound", "info",
        "A top-N or slice count is at least as large as the statically "
        "known input cardinality: the cut-off is a no-op and the operator "
        "can be removed.",
    ),
    # -- cardinality monotonicity ------------------------------------------
    DiagnosticCode(
        "MOA301", "cardinality bound grew across a rewrite", "warning",
        "A rewrite step increased the static upper bound on result "
        "cardinality.  Rewrites of filters, cut-offs and conversions must "
        "be cardinality-monotone; a growing bound indicates a rule that "
        "dropped a restriction.",
    ),
    # -- fragment coverage --------------------------------------------------
    DiagnosticCode(
        "MOA401", "fragmented scan does not cover all fragments", "warning",
        "The plan reads a strict subset of the declared fragments of a "
        "fragmented collection without a quality-check guard: results are "
        "the paper's *unsafe* fragment-restricted approximation.",
    ),
    # -- rewrite-framework health -------------------------------------------
    DiagnosticCode(
        "MOA501", "rewrite budget exhausted before fixpoint", "warning",
        "rewrite_fixpoint ran out of its application budget: the rule set "
        "is non-confluent or cyclic on this expression, and the returned "
        "plan is whatever state the rewriter stopped in.",
    ),
    # -- shard safety of parallel plans -------------------------------------
    DiagnosticCode(
        "MOA601", "shard-local cut-off without a distributed merge", "error",
        "A cut-off (top-N, prefix slice, stop_after) is applied to a scan "
        "of a strict subset of the declared shards with no merge above it: "
        "a document-range shard holds only part of the collection, so its "
        "local top-N is not the global one.  Shard-local cut-offs are only "
        "sound under a coordinator that merges every shard.",
    ),
    DiagnosticCode(
        "MOA602", "shard-local cut-off shallower than the global top-N", "warning",
        "A cut-off pushed below a shard boundary keeps fewer elements than "
        "the plan's global top-N: the coordinator's round-1 threshold may "
        "then miss answers unless the round-2 probe re-fetches the shard's "
        "deeper items.  Sound only with the probing merge "
        "(certified=True); flagged because stop_after may not push below "
        "a shard boundary without it.",
    ),
    DiagnosticCode(
        "MOA603", "plan parallelism disagrees with the shard layout", "warning",
        "The plan declares a `parallel=K` property that does not match the "
        "number of declared shards: the executor pool would idle workers "
        "or serialize shard tasks.",
    ),
    # -- concurrency effects / lock discipline (repro check) -----------------
    DiagnosticCode(
        "MOA701", "unguarded write to declared shared state", "error",
        "A method writes an attribute declared in `SHARED_STATE` without "
        "holding the declared lock (neither a `with self.<lock>:` scope "
        "nor a `@guarded_by` declaration covers the write site).  Under "
        "the thread executor the write can interleave with readers and "
        "silently corrupt merge bookkeeping — exactly the exactness "
        "Fagin-style threshold certification depends on.",
    ),
    DiagnosticCode(
        "MOA702", "shared mutable state without a declaration", "error",
        "A class or module on the parallel worker paths mutates state "
        "after construction (a lock-owning class, a module-level "
        "singleton, or a module global) but declares no `SHARED_STATE` "
        "entry for it.  Undeclared shared state is unverifiable: declare "
        "a guarding lock, `<thread-confined>`, `<barrier>` or `<config>`.",
    ),
    DiagnosticCode(
        "MOA703", "lock-order inversion", "error",
        "Two locks are acquired in opposite nesting orders on different "
        "code paths.  Once both paths run concurrently each can hold one "
        "lock while waiting for the other: a deadlock waiting to happen.",
    ),
    DiagnosticCode(
        "MOA704", "write to sealed state without consulting the seal", "error",
        "A method mutates an attribute declared in `SEALED_BY` without "
        "reading the seal flag first.  The seal discipline (e.g. the "
        "coordinator's merge pool) requires checking the flag under the "
        "lock before every write, so a late shard task can never write "
        "into a result that was already resolved.",
    ),
    DiagnosticCode(
        "MOA705", "concurrency declaration references an unknown lock", "warning",
        "A `SHARED_STATE` entry or `@guarded_by` decorator names a lock "
        "attribute the class never defines: the declaration is "
        "unenforceable and probably a typo.",
    ),
    DiagnosticCode(
        "MOA706", "lock held around no declared shared state", "info",
        "A lock is acquired in a scope that writes no declared shared "
        "state: either the declaration is missing or the critical "
        "section is dead weight.",
    ),
    # -- cache-reuse safety ---------------------------------------------------
    DiagnosticCode(
        "MOA801", "stale-epoch cache reuse", "error",
        "A cached answer, resume state or bound set built at an earlier "
        "corpus epoch would serve a query against the current corpus: "
        "any mutation that bumped the epoch (fragmenting, sharding, "
        "attribute or feature registration) may have changed scores, so "
        "the cached ranking is unverifiable.  The query cache embeds "
        "the epoch in every fingerprint precisely so this reuse can "
        "never happen implicitly.",
    ),
    DiagnosticCode(
        "MOA802", "cache reuse across a different aggregate", "error",
        "A cached multi-source answer or resume frontier is reused for "
        "a query with a different aggregation function.  Threshold "
        "bookkeeping (TA frontiers, NRA/CA bounds) is specific to the "
        "aggregate that produced it; combining under a different one "
        "yields wrong thresholds and wrong stop decisions.",
    ),
    DiagnosticCode(
        "MOA803", "cached fragment set drifted", "error",
        "The fragment set the cached answer was computed over differs "
        "from the fragments the query would read: the cached ranking "
        "covers a different candidate population (the paper's "
        "fragment-restricted approximation, silently reused where the "
        "full answer is expected, or vice versa).",
    ),
    DiagnosticCode(
        "MOA804", "cached bounds under a different shard layout", "error",
        "Cached per-shard thresholds or rankings are keyed to one "
        "document-range shard layout; reusing them after re-sharding "
        "prunes shards against bounds computed for different document "
        "ranges, and the coordinator's certified merge no longer holds.",
    ),
    DiagnosticCode(
        "MOA805", "deep serve from a non-prefix-safe entry", "error",
        "A top-N deeper than (or, without prefix safety, different "
        "from) the cached depth would be served from a cached answer "
        "whose scores depend on the producing run's stopping depth "
        "(NRA/CA lower bounds, quality-switched strategies).  Such "
        "entries serve exact-depth repeats only; deeper requests must "
        "resume (frontier or access replay) or recompute.",
    ),
    # -- score-bound certification --------------------------------------------
    DiagnosticCode(
        "MOA901", "non-monotone aggregate under a threshold engine", "error",
        "The plan combines graded sources under a threshold-administered "
        "engine (TA/CA/NRA/FA-style stop rules) with an aggregate that "
        "does not declare monotonicity.  Every such stop rule argues "
        "\"no unseen object can beat the bound\" from t's monotonicity; "
        "without it the stop decision — and the answer — is unsound.",
    ),
    DiagnosticCode(
        "MOA902", "pruning bound not dominated by the derived interval", "error",
        "A pruning decision asserts an upper bound on the scores of the "
        "elements it discards, but the bound-flow analyzer's certified "
        "interval for that edge exceeds the asserted bound: elements "
        "above the assumed ceiling may exist, so the prune can discard "
        "true top-N answers.",
    ),
    DiagnosticCode(
        "MOA903", "unsafe quit without a computable worst-case error bound", "error",
        "An unsafe cut-off (quit/continue-style pruning, an unlicensed "
        "prefix cut, a fragment-restricted scan) sits on an edge whose "
        "derived score interval or cardinality bound is unbounded: the "
        "analyzer cannot attach a finite worst-case rank/score error, so "
        "the cost-vs-quality trade-off the optimizer is supposed to "
        "expose does not exist — the quality loss is unquantifiable.",
    ),
    DiagnosticCode(
        "MOA904", "bound widened across a rewrite", "warning",
        "A rewrite step widened the certified score interval of the plan "
        "root: the rewritten plan can produce values the original could "
        "not.  Bound-preserving rules must keep the derived interval "
        "contained; a widening rule dropped a restriction (the interval "
        "analogue of the MOA301 cardinality check).",
    ),
    DiagnosticCode(
        "MOA905", "resume/coordinator bounds inconsistent with the fingerprinted epoch", "error",
        "A declared bound seed (coordinator threshold cache, resume "
        "frontier) carries a corpus-epoch stamp different from the epoch "
        "the query is fingerprinted at: the thresholds were measured "
        "against scores that may have changed, so pruning against them "
        "is uncertifiable.  Bounds only transfer within one epoch.",
    ),
    # -- MOA10xx: serve safety ---------------------------------------------
    DiagnosticCode(
        "MOA1001", "undeclared shared server state", "error",
        "A server-side serve class mutates an instance attribute outside "
        "construction without declaring it in SHARED_STATE.  Service "
        "objects cross the asyncio-loop/worker-thread boundary by "
        "construction, so every mutable attribute must carry a lock name "
        "or confinement marker — otherwise neither repro check nor the "
        "race sanitizer can vouch for the server.",
    ),
    DiagnosticCode(
        "MOA1002", "resume token redeemed across a corpus epoch", "error",
        "A client tried to resume an anytime stream with a token issued "
        "at a different corpus epoch.  The captured frontier (TA state, "
        "replay logs) certifies score bounds only against the issuing "
        "epoch's scores; continuing it after a mutation could silently "
        "serve a wrong top-N.  The serve-side twin of MOA905: the "
        "registry refuses the resume and emits this diagnostic.",
    ),
    DiagnosticCode(
        "MOA1003", "engine work scheduled outside admission", "error",
        "A server function schedules engine work on pool threads "
        "(run_in_executor) without visibly running under an admission "
        "(no admission parameter, no .admit(...) call).  Such a path "
        "bypasses both the tenant quota gate and the pool-wide bound — "
        "a single forgotten call site undoes all multi-tenant isolation.",
    ),
    DiagnosticCode(
        "MOA1004", "executor work without a cancel token", "error",
        "A server function schedules engine work on pool threads without "
        "referencing the request's CancelToken.  Deadlines propagate "
        "only through that token's between-step checks; a pump loop "
        "that drops it streams past every deadline a client sets.",
    ),
    # -- MOA11xx: resource lifecycle / cancellation safety -------------------
    DiagnosticCode(
        "MOA1101", "resource acquired but not released on some path", "error",
        "A tracked resource (lock, pool slot, tenant admission, session "
        "busy flag, pin) is acquired, but at least one path out of the "
        "function — normal return, an exception edge, or an await's "
        "cancellation edge — exits with it still held and nobody left "
        "owning it.  This is the PR-8-review bug class: a slot leaked "
        "per occurrence until the quota or registry is exhausted.  Use "
        "`with`, a `finally`-guarded release, or pass ownership to a "
        "helper that releases on every exit.",
    ),
    DiagnosticCode(
        "MOA1102", "release without a matching acquire / double release", "error",
        "A release site runs where every path reaching it has the "
        "resource already released (double release) or never acquired "
        "it.  Releasing twice corrupts slot accounting (a concurrency "
        "cap of K quietly becomes K+1); releasing what was never "
        "acquired usually means the pairing logic drifted.",
    ),
    DiagnosticCode(
        "MOA1103", "await while holding a non-async lock", "error",
        "An `await` point sits between the acquisition and release of a "
        "synchronous (thread) lock — whether `with lock:` or an "
        "acquire/`finally`-release pair.  While suspended, the event "
        "loop cannot run any other coroutine that needs the lock, and a "
        "cancellation delivered at the await unwinds with the lock's "
        "critical section half-finished: a cancellation hazard even "
        "when a `finally` eventually releases.",
    ),
    DiagnosticCode(
        "MOA1104", "held resource escapes its declared scope", "error",
        "A *held* handle escapes the acquiring function — returned, "
        "stored on `self` outside the class's declared SHARED_STATE / "
        "SEALED_BY scope, or written to a global — from a function not "
        "declared `@acquires` for that kind.  Once the handle outlives "
        "its frame, no path-local discipline can guarantee the release "
        "ever runs; either declare the factory or release before "
        "escaping.",
    ),
    DiagnosticCode(
        "MOA1105", "static lock-order cycle", "error",
        "The whole-program lock-acquisition graph — built from every "
        "`with lock:` nesting and one-level call summaries, with lock "
        "attributes resolved to their `make_lock` names — contains a "
        "cycle, or an edge leaving a lock its class declares LOCK_LEAF. "
        "Any cycle the runtime sanitizer could observe as a lock-order "
        "inversion is a subgraph of this one, so a clean static graph "
        "certifies deadlock-freedom for the declared locks.",
    ),
)


def code_info(code: str) -> DiagnosticCode:
    """Look up a registered code; raises ``KeyError`` for unknown codes
    so emitting an unregistered diagnostic fails loudly in tests."""
    return CODES[code]


def all_codes() -> tuple[str, ...]:
    """All registered codes, sorted."""
    return tuple(sorted(CODES))
