"""Concurrency effect analysis and lock-discipline checking.

Extends the plan verifier's static-analysis approach from algebra
plans to the Python codebase itself: :mod:`.effects` infers per-
function concurrency effects from the AST, :mod:`.races` checks them
against the :mod:`repro.sync` declaration protocol (the ``MOA7xx``
family), and :mod:`.check` packages both as the ``repro check``
command.
"""

from .check import check_package, check_paths, effect_summary
from .effects import (
    ClassEffects,
    FunctionEffects,
    LockAcquisition,
    ModuleEffects,
    WriteSite,
    infer_module_effects,
    infer_package_effects,
    summarize_effects,
)
from .races import WORKER_ROOTS, analyze_effects, reachable_modules

__all__ = [
    "WORKER_ROOTS",
    "ClassEffects",
    "FunctionEffects",
    "LockAcquisition",
    "ModuleEffects",
    "WriteSite",
    "analyze_effects",
    "check_package",
    "check_paths",
    "effect_summary",
    "infer_module_effects",
    "infer_package_effects",
    "reachable_modules",
    "summarize_effects",
]
