"""Entry points tying effect inference and race analysis together.

``check_package()`` runs the whole pass over the installed ``repro``
package (the default of the ``repro check`` CLI); ``check_paths()``
runs it over an explicit list of files or directories — used for the
seeded-race fixtures and for auditing code outside the package.
"""

from __future__ import annotations

from pathlib import Path

from ..diagnostics import DiagnosticReport
from .effects import infer_module_effects, infer_package_effects, summarize_effects
from .races import analyze_effects

__all__ = ["check_package", "check_paths", "effect_summary"]


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def check_package(root=None) -> DiagnosticReport:
    """Analyze the installed package (or the package at ``root``)."""
    root = Path(root) if root is not None else _package_root()
    modules = infer_package_effects(root, package=root.name)
    report = analyze_effects(modules)
    report.source = f"package {root.name}"
    return report


def _iter_files(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def check_paths(paths) -> DiagnosticReport:
    """Analyze an explicit list of files/directories (all in scope)."""
    modules = {}
    for path in _iter_files(paths):
        name = path.stem if path.stem != "__init__" else path.parent.name
        # explicit paths may repeat stems; disambiguate by full path
        key = name if name not in modules else str(path)
        modules[key] = infer_module_effects(path, name)
    report = analyze_effects(modules, all_in_scope=True)
    report.source = ", ".join(str(p) for p in paths)
    return report


def effect_summary(root=None, paths=None) -> dict:
    """The ``--effects`` view: JSON-able per-module effect summaries."""
    if paths:
        modules = {}
        for path in _iter_files(paths):
            name = path.stem if path.stem != "__init__" else path.parent.name
            key = name if name not in modules else str(path)
            modules[key] = infer_module_effects(path, name)
        return summarize_effects(modules)
    root = Path(root) if root is not None else _package_root()
    return summarize_effects(infer_package_effects(root, package=root.name))
