"""AST-based concurrency effect inference over Python source.

The first layer of ``repro check``: walk a set of modules and
summarize, per function, the *effects* that matter for concurrency
reasoning —

* writes to ``self`` attributes (plain assignment, augmented
  assignment, subscript stores and mutating method calls like
  ``self._pool.move_to_end(...)``), each tagged with the set of lock
  tokens held at the write site;
* reads of ``self`` attributes;
* writes to module globals (``global`` rebinds, subscript stores and
  mutator calls on module-level container names);
* lock acquisitions (``with self._lock:`` scopes and ``@guarded_by``
  declarations) and the locks already held when they happen — the raw
  material of lock-order analysis;
* thread/executor spawns and (dotted) call names for one-level call
  resolution.

Per class, the walker also extracts the declaration protocol of
:mod:`repro.sync` (``SHARED_STATE`` / ``SEALED_BY`` literals), the set
of lock attributes (anything assigned from ``threading.Lock`` /
``RLock`` / ``make_lock``, including dataclass ``field`` factories)
and which attributes ``__init__`` establishes.

Everything here is *syntactic* and deliberately conservative: aliased
containers, dynamic ``setattr`` and cross-object writes are out of
scope (the runtime sanitizer covers those paths dynamically).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ClassEffects",
    "FunctionEffects",
    "LockAcquisition",
    "ModuleEffects",
    "WriteSite",
    "infer_module_effects",
    "infer_package_effects",
    "summarize_effects",
]

#: container methods treated as writes to the container's attribute
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "move_to_end", "pop", "popitem", "popleft",
    "remove", "reverse", "setdefault", "sort", "update",
})

#: call names treated as thread / executor spawns
SPAWN_CALLS = frozenset({
    "Thread", "ThreadPoolExecutor", "ProcessPoolExecutor", "submit",
    "run_tasks",
})

_LOCK_FACTORY_NAMES = frozenset({"Lock", "RLock", "make_lock"})

#: methods exempt from lock discipline (single-threaded construction)
CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


def _dotted(node: ast.AST) -> str:
    """Render a Name/Attribute chain as ``a.b.c`` (empty if dynamic)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else ""
    return ""


def _looks_like_lock(token: str) -> bool:
    """Lock heuristic: the final path segment mentions 'lock'."""
    return "lock" in token.rsplit(".", 1)[-1].lower()


def _is_lock_factory(node: ast.AST) -> bool:
    """Whether an assigned value creates a lock (directly or through a
    dataclass ``field(default_factory=...)``)."""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            name = sub.id if isinstance(sub, ast.Name) else sub.attr
            if name in _LOCK_FACTORY_NAMES:
                return True
    return False


def _literal_str_dict(node: ast.AST) -> dict | None:
    """Evaluate a ``{"attr": "lock"}`` literal; None if not one."""
    try:
        value = ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None
    if isinstance(value, dict) and all(
        isinstance(k, str) and isinstance(v, str) for k, v in value.items()
    ):
        return value
    return None


@dataclass(frozen=True)
class WriteSite:
    """One write to an attribute or global: where and under what locks."""

    attr: str
    line: int
    locks: frozenset
    #: ``assign`` / ``augassign`` / ``subscript`` / ``mutate:<method>``
    kind: str


@dataclass(frozen=True)
class LockAcquisition:
    """One ``with <lock>:`` entry and the locks already held there."""

    token: str
    line: int
    held: frozenset


@dataclass
class FunctionEffects:
    """The concurrency-relevant effect summary of one function."""

    module: str
    qualname: str
    name: str
    lineno: int
    self_var: str | None = None
    self_reads: set = field(default_factory=set)
    self_writes: list = field(default_factory=list)
    global_writes: list = field(default_factory=list)
    nonlocal_writes: set = field(default_factory=set)
    locks_acquired: list = field(default_factory=list)
    #: dotted call names with the lockset held at the call site
    calls: list = field(default_factory=list)
    spawns: list = field(default_factory=list)
    guarded_by: str | None = None

    def writes_to(self, attr: str):
        return [w for w in self.self_writes if w.attr == attr]

    def reads(self, attr: str) -> bool:
        return attr in self.self_reads


@dataclass
class ClassEffects:
    """Effects and declarations of one class."""

    name: str
    lineno: int
    methods: dict = field(default_factory=dict)
    lock_attrs: set = field(default_factory=set)
    shared_state: dict | None = None
    sealed_by: dict | None = None
    init_attrs: set = field(default_factory=set)

    @property
    def declared(self) -> bool:
        return self.shared_state is not None

    def noninit_writes(self) -> dict:
        """attr -> [WriteSite] over every non-constructor method."""
        out: dict = {}
        for name, fn in self.methods.items():
            if name in CONSTRUCTORS:
                continue
            for write in fn.self_writes:
                out.setdefault(write.attr, []).append(write)
        return out


@dataclass
class ModuleEffects:
    """Effects, declarations and import edges of one module."""

    module: str
    path: str
    classes: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)
    #: candidate package-internal import targets (resolved by the analyzer)
    imports: set = field(default_factory=set)
    shared_state: dict | None = None
    #: module-level names bound to ``threading.local()`` (confined by type)
    thread_locals: set = field(default_factory=set)
    #: all module-level assigned names
    globals_assigned: set = field(default_factory=set)
    #: classes instantiated into module-level names (name -> class name)
    singletons: dict = field(default_factory=dict)

    def all_functions(self):
        yield from self.functions.values()
        for cls in self.classes.values():
            yield from cls.methods.values()


class _FunctionWalker(ast.NodeVisitor):
    """Collects one function's effects, tracking the live lockset."""

    def __init__(self, effects: FunctionEffects, module: "ModuleEffects") -> None:
        self.effects = effects
        self.module = module
        base = {effects.guarded_by} if effects.guarded_by else set()
        self.lockset: list = sorted(base)
        self.locals: set = set()
        self.global_decls: set = set()

    # -- lockset helpers ---------------------------------------------------

    def _held(self) -> frozenset:
        return frozenset(self.lockset)

    def _lock_token(self, node: ast.AST) -> str | None:
        dotted = _dotted(node)
        if not dotted:
            return None
        if self.effects.self_var and dotted.startswith(self.effects.self_var + "."):
            dotted = dotted[len(self.effects.self_var) + 1:]
        return dotted if _looks_like_lock(dotted) else None

    # -- write/read recording ----------------------------------------------

    def _record_write(self, attr: str, line: int, kind: str) -> None:
        self.effects.self_writes.append(
            WriteSite(attr, line, self._held(), kind))

    def _record_global_write(self, name: str, line: int, kind: str) -> None:
        self.effects.global_writes.append(
            WriteSite(name, line, self._held(), kind))

    def _self_attr(self, node: ast.AST) -> str | None:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == self.effects.self_var):
            return node.attr
        return None

    def _target(self, node: ast.AST, line: int, kind: str) -> None:
        """Classify one assignment/delete target."""
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._target(element, line, kind)
            return
        if isinstance(node, ast.Starred):
            self._target(node.value, line, kind)
            return
        attr = self._self_attr(node)
        if attr is not None:
            self._record_write(attr, line, kind)
            return
        if isinstance(node, ast.Subscript):
            inner = self._self_attr(node.value)
            if inner is not None:
                self._record_write(inner, line, "subscript")
            elif isinstance(node.value, ast.Name):
                self._maybe_global_container(node.value.id, line, "subscript")
            return
        if isinstance(node, ast.Name):
            if node.id in self.global_decls:
                self._record_global_write(node.id, line, kind)
            else:
                self.locals.add(node.id)

    def _maybe_global_container(self, name: str, line: int, kind: str) -> None:
        """A subscript store / mutator call on a bare name: a global
        container write when the name is module-level and not shadowed."""
        if name in self.locals or name in self.module.thread_locals:
            return
        if name in self.global_decls or name in self.module.globals_assigned:
            self._record_global_write(name, line, kind)

    # -- statement visitors -------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.global_decls.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.effects.nonlocal_writes.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._target(target, node.lineno, "assign")
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._target(node.target, node.lineno, "augassign")
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._target(node.target, node.lineno, "assign")
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._target(target, node.lineno, "delete")

    def visit_With(self, node: ast.With) -> None:
        tokens = []
        for item in node.items:
            self.visit(item.context_expr)
            token = self._lock_token(item.context_expr)
            if token is not None:
                self.effects.locks_acquired.append(
                    LockAcquisition(token, node.lineno, self._held()))
                tokens.append(token)
            if item.optional_vars is not None:
                self._target(item.optional_vars, node.lineno, "assign")
        self.lockset.extend(tokens)
        for statement in node.body:
            self.visit(statement)
        for _ in tokens:
            self.lockset.pop()

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted:
            self.effects.calls.append((dotted, node.lineno, self._held()))
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf in SPAWN_CALLS:
                self.effects.spawns.append(f"{dotted}@{node.lineno}")
            if leaf in MUTATOR_METHODS and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                attr = self._self_attr(receiver)
                if attr is not None:
                    self._record_write(attr, node.lineno, f"mutate:{leaf}")
                elif isinstance(receiver, ast.Name):
                    self._maybe_global_container(
                        receiver.id, node.lineno, f"mutate:{leaf}")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            attr = self._self_attr(node)
            if attr is not None:
                self.effects.self_reads.add(attr)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # a lambda body runs later, not under the current locks
        saved, self.lockset = self.lockset, []
        self.visit(node.body)
        self.lockset = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested defs are walked as their own (closure) functions
        nested = _walk_function(
            node, self.module,
            qualname=f"{self.effects.qualname}.<locals>.{node.name}",
            self_var=None,
        )
        self.module.functions[nested.qualname] = nested

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # nested classes: out of scope


def _guard_decl(node: ast.FunctionDef) -> str | None:
    for decorator in node.decorator_list:
        if (isinstance(decorator, ast.Call)
                and _dotted(decorator.func).rsplit(".", 1)[-1] == "guarded_by"
                and decorator.args
                and isinstance(decorator.args[0], ast.Constant)
                and isinstance(decorator.args[0].value, str)):
            return decorator.args[0].value
    return None


def _walk_function(node: ast.FunctionDef, module: ModuleEffects,
                   qualname: str, self_var: str | None) -> FunctionEffects:
    effects = FunctionEffects(
        module=module.module,
        qualname=qualname,
        name=node.name,
        lineno=node.lineno,
        self_var=self_var,
        guarded_by=_guard_decl(node),
    )
    walker = _FunctionWalker(effects, module)
    walker.locals.update(arg.arg for arg in node.args.args)
    walker.locals.update(arg.arg for arg in node.args.posonlyargs)
    walker.locals.update(arg.arg for arg in node.args.kwonlyargs)
    if node.args.vararg:
        walker.locals.add(node.args.vararg.arg)
    if node.args.kwarg:
        walker.locals.add(node.args.kwarg.arg)
    for statement in node.body:
        walker.visit(statement)
    return effects


def _walk_class(node: ast.ClassDef, module: ModuleEffects) -> ClassEffects:
    cls = ClassEffects(name=node.name, lineno=node.lineno)
    for statement in node.body:
        if isinstance(statement, (ast.Assign, ast.AnnAssign)):
            targets = (statement.targets if isinstance(statement, ast.Assign)
                       else [statement.target])
            value = statement.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if value is not None and target.id == "SHARED_STATE":
                    cls.shared_state = _literal_str_dict(value) or {}
                elif value is not None and target.id == "SEALED_BY":
                    cls.sealed_by = _literal_str_dict(value) or {}
                elif value is not None and _is_lock_factory(value):
                    cls.lock_attrs.add(target.id)
        elif isinstance(statement, ast.FunctionDef):
            self_var = (statement.args.args[0].arg
                        if statement.args.args else None)
            effects = _walk_function(
                statement, module,
                qualname=f"{cls.name}.{statement.name}", self_var=self_var)
            cls.methods[statement.name] = effects
            for write in effects.self_writes:
                if statement.name in CONSTRUCTORS:
                    cls.init_attrs.add(write.attr)
    # locks assigned in methods: self.X = threading.Lock() / make_lock(...);
    # also adopted locks — self.X = lock / self.X = owner_lock — the
    # shared-lock protocol where a collaborator receives its owner's
    # lock at construction (e.g. buffer replacement policies)
    for statement in ast.walk(node):
        if isinstance(statement, ast.Assign) and (
                _is_lock_factory(statement.value)
                or (isinstance(statement.value, ast.Name)
                    and (statement.value.id == "lock"
                         or statement.value.id.endswith("_lock")))):
            for target in statement.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    cls.lock_attrs.add(target.attr)
        if (isinstance(statement, ast.AnnAssign)
                and statement.value is not None
                and isinstance(statement.target, ast.Name)
                and _is_lock_factory(statement.value)):
            cls.lock_attrs.add(statement.target.id)
    return cls


def _resolve_import(current_module: str, node) -> set:
    """Candidate absolute module names an import statement may bind."""
    candidates: set = set()
    if isinstance(node, ast.Import):
        for alias in node.names:
            candidates.add(alias.name)
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            base = node.module or ""
        else:
            parts = current_module.split(".")
            # level 1 = current package: drop the module's own name
            parts = parts[: len(parts) - node.level]
            base = ".".join(parts)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        if base:
            candidates.add(base)
            for alias in node.names:
                candidates.add(f"{base}.{alias.name}")
    return candidates


def infer_module_effects(path, module_name: str) -> ModuleEffects:
    """Parse one file and infer its full effect summary."""
    source = Path(path).read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    module = ModuleEffects(module=module_name, path=str(path))

    # first pass: module-level bindings, so function walkers can
    # classify bare-name container mutations
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            value = statement.value
            for target in statement.targets:
                if not isinstance(target, ast.Name):
                    continue
                module.globals_assigned.add(target.id)
                if target.id == "SHARED_STATE":
                    module.shared_state = _literal_str_dict(value) or {}
                dotted = _dotted(value.func) if isinstance(value, ast.Call) else ""
                if dotted.rsplit(".", 1)[-1] == "local":
                    module.thread_locals.add(target.id)
                if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                    module.singletons.setdefault(target.id, value.func.id)
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                module.globals_assigned.add(statement.target.id)

    for statement in ast.walk(tree):
        if isinstance(statement, (ast.Import, ast.ImportFrom)):
            module.imports.update(_resolve_import(module_name, statement))

    for statement in tree.body:
        if isinstance(statement, ast.ClassDef):
            module.classes[statement.name] = _walk_class(statement, module)
        elif isinstance(statement, ast.FunctionDef):
            effects = _walk_function(statement, module,
                                     qualname=statement.name, self_var=None)
            module.functions[statement.name] = effects
    return module


def infer_package_effects(root, package: str = "repro") -> dict:
    """Effect summaries for every ``.py`` file under ``root``, keyed by
    dotted module name (``root`` is the package directory itself)."""
    root = Path(root)
    modules: dict = {}
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        parts = [package, *relative.parts[:-1]]
        stem = relative.stem
        if stem != "__init__":
            parts.append(stem)
        name = ".".join(parts)
        modules[name] = infer_module_effects(path, name)
    return modules


def summarize_effects(modules: dict) -> dict:
    """JSON-able per-module summary (the ``repro check --effects`` view)."""
    out: dict = {}
    for name, module in sorted(modules.items()):
        classes = {}
        for cls_name, cls in sorted(module.classes.items()):
            writes = cls.noninit_writes()
            classes[cls_name] = {
                "declared": cls.declared,
                "shared_state": cls.shared_state,
                "sealed_by": cls.sealed_by,
                "lock_attrs": sorted(cls.lock_attrs),
                "noninit_written_attrs": sorted(writes),
                "methods": {
                    m: {
                        "writes": [f"{w.attr}@{w.line}" for w in fn.self_writes],
                        "locks": sorted({a.token for a in fn.locks_acquired}),
                        "guarded_by": fn.guarded_by,
                        "spawns": list(fn.spawns),
                    }
                    for m, fn in sorted(cls.methods.items())
                    if fn.self_writes or fn.locks_acquired or fn.spawns
                    or fn.guarded_by
                },
            }
        global_writes = sorted({
            w.attr for fn in module.all_functions() for w in fn.global_writes})
        spawns = sorted({
            s for fn in module.all_functions() for s in fn.spawns})
        out[name] = {
            "classes": classes,
            "shared_state": module.shared_state,
            "global_writes": global_writes,
            "thread_locals": sorted(module.thread_locals),
            "singletons": dict(sorted(module.singletons.items())),
            "spawns": spawns,
        }
    return out
