"""Lock-discipline and race analysis over inferred effects.

The second layer of ``repro check``: takes the per-module effect
summaries of :mod:`.effects` and checks them against the declaration
protocol of :mod:`repro.sync`, emitting the ``MOA7xx`` diagnostic
family:

* **MOA701** — a method writes an attribute declared in
  ``SHARED_STATE`` without holding its declared lock;
* **MOA702** — shared mutable state with no declaration at all: a
  declared class mutating undeclared attributes after construction, an
  undeclared lock-owning class or module-level singleton on the worker
  paths, or a mutated module global without a module ``SHARED_STATE``;
* **MOA703** — two locks acquired in opposite nesting orders on
  different code paths (one-level call resolution included);
* **MOA704** — a method mutates a ``SEALED_BY`` attribute without
  reading the seal flag;
* **MOA705** — a declaration references a lock attribute the class
  never defines;
* **MOA706** — a lock held around a scope that writes no declared
  shared state.

*Worker paths* are the modules reachable (package-internal imports,
BFS) from :data:`WORKER_ROOTS` — the executor and the coordinator —
plus every module that opts in by carrying declarations.  Analysis of
an explicit file list (fixtures, third-party snippets) treats every
given module as in scope.
"""

from __future__ import annotations

from collections import deque

from ..diagnostics import DiagnosticReport, make_diagnostic
from .effects import CONSTRUCTORS, ClassEffects, FunctionEffects, ModuleEffects

__all__ = [
    "WORKER_ROOTS",
    "analyze_effects",
    "reachable_modules",
]

#: the entry points whose import closure defines the worker paths
WORKER_ROOTS = ("repro.parallel.executor", "repro.parallel.coordinator")

#: markers that never require a lock at a write site
_LOCK_FREE_MARKERS = frozenset({"<thread-confined>", "<barrier>", "<config>"})


def reachable_modules(modules: dict, roots=WORKER_ROOTS) -> set:
    """Modules reachable from ``roots`` via package-internal imports."""
    frontier = deque(root for root in roots if root in modules)
    seen = set(frontier)
    while frontier:
        current = modules[frontier.popleft()]
        for target in current.imports:
            # an import of a package also pulls in its __init__
            for candidate in (target,):
                if candidate in modules and candidate not in seen:
                    seen.add(candidate)
                    frontier.append(candidate)
    return seen


def _site(module: ModuleEffects, line: int) -> str:
    return f"{module.path}:{line}"


def _held_covers(locks: frozenset, wanted: str) -> bool:
    """Whether a held lockset satisfies a declared lock name.

    Declared names are attribute names (``_lock``); acquisition tokens
    are rendered the same way for ``self`` locks and as dotted names
    for globals, so direct membership is the common case.  A dotted
    token whose leaf matches (``state._lock`` for ``_lock``) also
    counts — the walker cannot tell aliases apart, and over-approving
    held locks only costs false negatives, never false alarms.
    """
    if wanted in locks:
        return True
    return any(token.rsplit(".", 1)[-1] == wanted for token in locks)


class _Analyzer:
    def __init__(self, modules: dict, all_in_scope: bool) -> None:
        self.modules = modules
        if all_in_scope:
            self.scope = set(modules)
        else:
            self.scope = reachable_modules(modules)
            # modules that carry declarations opt in to checking
            for name, module in modules.items():
                if module.shared_state is not None or any(
                    cls.declared for cls in module.classes.values()
                ):
                    self.scope.add(name)
        self.report = DiagnosticReport(source="repro check")
        #: (first, second) -> site of first observed acquisition order
        self.order_edges: dict = {}

    def run(self) -> DiagnosticReport:
        for name in sorted(self.scope):
            module = self.modules[name]
            for cls in module.classes.values():
                self._check_class(module, cls)
            self._check_module_globals(module)
            for fn in module.all_functions():
                self._collect_lock_orders(module, fn)
        self._check_lock_orders()
        return self.report

    # -- per-class rules ----------------------------------------------------

    def _check_class(self, module: ModuleEffects, cls: ClassEffects) -> None:
        if cls.declared:
            self._check_declared_class(module, cls)
        elif self._undeclared_needs_declaration(module, cls):
            writes = cls.noninit_writes()
            mutated = sorted(attr for attr in writes if attr not in cls.lock_attrs)
            if mutated:
                first = min(w.line for attr in mutated for w in writes[attr])
                self.report.add(make_diagnostic(
                    "MOA702",
                    f"class {cls.name} on the worker paths mutates "
                    f"{', '.join(mutated)} after construction but declares no "
                    "SHARED_STATE",
                    site=_site(module, first),
                    expr=cls.name,
                ))

    def _undeclared_needs_declaration(self, module: ModuleEffects,
                                      cls: ClassEffects) -> bool:
        """Heuristic scope of MOA702 for undeclared classes: the class
        owns a lock (it *knows* it is shared) or is instantiated into a
        module-level singleton (every thread sees the same instance)."""
        if cls.lock_attrs:
            return True
        return cls.name in set(module.singletons.values())

    def _check_declared_class(self, module: ModuleEffects, cls: ClassEffects) -> None:
        shared = cls.shared_state or {}
        sealed = cls.sealed_by or {}

        # MOA705: declarations must reference real locks / known attrs
        for attr, lock in sorted(shared.items()):
            if lock in _LOCK_FREE_MARKERS:
                continue
            if lock not in cls.lock_attrs:
                self.report.add(make_diagnostic(
                    "MOA705",
                    f"{cls.name}.SHARED_STATE guards {attr!r} with "
                    f"{lock!r}, but the class defines no such lock attribute",
                    site=_site(module, cls.lineno),
                    expr=f"{cls.name}.{attr}",
                ))
        for name, fn in sorted(cls.methods.items()):
            if fn.guarded_by and fn.guarded_by not in cls.lock_attrs:
                self.report.add(make_diagnostic(
                    "MOA705",
                    f"@guarded_by({fn.guarded_by!r}) on {cls.name}.{name} "
                    "references a lock attribute the class never defines",
                    site=_site(module, fn.lineno),
                    expr=f"{cls.name}.{name}",
                ))

        for name, fn in sorted(cls.methods.items()):
            if name in CONSTRUCTORS:
                continue
            self._check_method_writes(module, cls, fn, shared, sealed)
            self._check_useless_locks(module, cls, fn, shared)

        # MOA702 inside a declared class: post-construction writes to
        # attributes the declaration does not cover
        writes = cls.noninit_writes()
        undeclared = sorted(
            attr for attr in writes
            if attr not in shared and attr not in cls.lock_attrs
        )
        for attr in undeclared:
            first = min(w.line for w in writes[attr])
            self.report.add(make_diagnostic(
                "MOA702",
                f"{cls.name}.{attr} is mutated after construction but is "
                "not covered by the class's SHARED_STATE declaration",
                site=_site(module, first),
                expr=f"{cls.name}.{attr}",
            ))

    def _check_method_writes(self, module: ModuleEffects, cls: ClassEffects,
                             fn: FunctionEffects, shared: dict,
                             sealed: dict) -> None:
        for write in fn.self_writes:
            decl = shared.get(write.attr)
            if decl is None:
                continue  # handled by the MOA702 sweep above
            if decl not in _LOCK_FREE_MARKERS and not _held_covers(write.locks, decl):
                self.report.add(make_diagnostic(
                    "MOA701",
                    f"{cls.name}.{fn.name} writes shared attribute "
                    f"{write.attr!r} ({write.kind}) without holding its "
                    f"declared lock {decl!r}",
                    site=_site(module, write.line),
                    expr=f"{cls.name}.{write.attr}",
                ))
            flag = sealed.get(write.attr)
            if flag is not None and not fn.reads(flag):
                self.report.add(make_diagnostic(
                    "MOA704",
                    f"{cls.name}.{fn.name} mutates sealed attribute "
                    f"{write.attr!r} without reading its seal flag "
                    f"{flag!r} first",
                    site=_site(module, write.line),
                    expr=f"{cls.name}.{write.attr}",
                ))

    def _check_useless_locks(self, module: ModuleEffects, cls: ClassEffects,
                             fn: FunctionEffects, shared: dict) -> None:
        guarded_attrs = {
            attr for attr, lock in shared.items()
            if lock not in _LOCK_FREE_MARKERS
        }
        for acq in fn.locks_acquired:
            token_leaf = acq.token.rsplit(".", 1)[-1]
            if token_leaf not in cls.lock_attrs:
                continue  # a foreign lock: not ours to judge
            touches = any(
                _held_covers(w.locks, token_leaf) and w.attr in guarded_attrs
                for w in fn.self_writes
            ) or any(
                attr in guarded_attrs for attr in fn.self_reads
            ) or any(
                _held_covers(held, token_leaf) for _, _, held in fn.calls
                if _held_covers(held, token_leaf)
            )
            # calls under the lock may touch state indirectly; only an
            # entirely empty critical section (no writes, no reads of
            # guarded attrs, no calls) is flagged
            calls_under = [c for c in fn.calls if _held_covers(c[2], token_leaf)]
            writes_under = [w for w in fn.self_writes
                            if _held_covers(w.locks, token_leaf)]
            reads_guarded = guarded_attrs & fn.self_reads
            if not calls_under and not writes_under and not reads_guarded:
                del touches
                self.report.add(make_diagnostic(
                    "MOA706",
                    f"{cls.name}.{fn.name} acquires {acq.token!r} around a "
                    "scope that writes no declared shared state",
                    site=_site(module, acq.line),
                    expr=f"{cls.name}.{fn.name}",
                ))

    # -- module globals -----------------------------------------------------

    def _check_module_globals(self, module: ModuleEffects) -> None:
        declared = module.shared_state or {}
        for fn in module.all_functions():
            for write in fn.global_writes:
                name = write.attr
                decl = declared.get(name)
                if decl is None:
                    self.report.add(make_diagnostic(
                        "MOA702",
                        f"module global {name!r} is mutated by "
                        f"{fn.qualname} but {module.module} declares no "
                        "SHARED_STATE entry for it",
                        site=_site(module, write.line),
                        expr=name,
                    ))
                elif (decl not in _LOCK_FREE_MARKERS
                      and not _held_covers(write.locks, decl)):
                    self.report.add(make_diagnostic(
                        "MOA701",
                        f"{fn.qualname} writes module global {name!r} "
                        f"without holding its declared lock {decl!r}",
                        site=_site(module, write.line),
                        expr=name,
                    ))

    # -- lock ordering ------------------------------------------------------

    def _collect_lock_orders(self, module: ModuleEffects,
                             fn: FunctionEffects) -> None:
        for acq in fn.locks_acquired:
            for held in acq.held:
                if held == acq.token:
                    continue
                edge = (held, acq.token)
                self.order_edges.setdefault(edge, _site(module, acq.line))
        # one-level call resolution: calling a @guarded_by method while
        # holding a lock implies held -> callee's lock
        for dotted, line, held in fn.calls:
            if not held:
                continue
            leaf = dotted.rsplit(".", 1)[-1]
            callee = self._find_guarded_method(leaf)
            if callee is None:
                continue
            for token in held:
                if token != callee:
                    self.order_edges.setdefault(
                        (token, callee), _site(module, line))

    def _find_guarded_method(self, name: str) -> str | None:
        for mod_name in self.scope:
            for cls in self.modules[mod_name].classes.values():
                fn = cls.methods.get(name)
                if fn is not None and fn.guarded_by:
                    return fn.guarded_by
        return None

    def _check_lock_orders(self) -> None:
        reported = set()
        for (first, second), site in sorted(self.order_edges.items()):
            reverse = (second, first)
            if reverse in self.order_edges and frozenset(
                    (first, second)) not in reported:
                reported.add(frozenset((first, second)))
                self.report.add(make_diagnostic(
                    "MOA703",
                    f"locks {first!r} and {second!r} are acquired in "
                    f"opposite orders ({first} -> {second} here, "
                    f"{second} -> {first} at {self.order_edges[reverse]})",
                    site=site,
                    expr=f"{first} <-> {second}",
                ))


def analyze_effects(modules: dict, all_in_scope: bool = False) -> DiagnosticReport:
    """Run the full MOA7xx race analysis over inferred module effects.

    ``all_in_scope=True`` (used for explicit file lists) checks every
    module; the default restricts MOA702's undeclared-state rules to
    the worker-path import closure plus declared modules.
    """
    return _Analyzer(modules, all_in_scope=all_in_scope).run()
