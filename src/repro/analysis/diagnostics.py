"""Structured diagnostics emitted by the plan verifier.

A :class:`Diagnostic` pins one finding to an *expression path* — the
tuple of child indexes walked from the root (``()`` is the root itself,
``(0, 1)`` is the second child of the first child).  Paths are stable
under printing, so a diagnostic can be traced back into any rendering
of the plan.  A :class:`DiagnosticReport` bundles the findings of one
lint run and renders them as text or JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .codes import SEVERITIES, code_info

#: path type alias: child indexes from the root
ExprPath = tuple[int, ...]


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity (higher = worse)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(f"unknown severity {severity!r}; expected one of {SEVERITIES}") from None


def format_path(path: ExprPath) -> str:
    """Render a path as ``$`` (root) or ``$.0.1``."""
    return "$" + "".join(f".{index}" for index in path)


def subexpr_at(expr, path: ExprPath):
    """The sub-expression a path points to (inverse of path recording)."""
    node = expr
    for index in path:
        node = node.children()[index]
    return node


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, severity, message and location.

    Plan diagnostics locate themselves with an expression ``path``;
    source-level diagnostics (the concurrency analyzer) carry a
    ``site`` (``file.py:line``) instead, which then takes over as the
    rendered location.
    """

    code: str
    severity: str
    message: str
    path: ExprPath = ()
    #: source rendering of the offending (sub-)expression
    expr: str = ""
    #: name of the rewrite rule involved, for step diagnostics
    rule: str | None = None
    #: source location (``file.py:line``) for code-level findings
    site: str | None = None

    def __post_init__(self) -> None:
        code_info(self.code)  # KeyError on unregistered codes
        severity_rank(self.severity)  # ValueError on unknown severities

    @property
    def location(self) -> str:
        if self.site is not None:
            return self.site
        return format_path(self.path)

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "path": list(self.path),
            "location": self.location,
            "expr": self.expr,
        }
        if self.rule is not None:
            out["rule"] = self.rule
        if self.site is not None:
            out["site"] = self.site
        return out

    def render(self) -> str:
        rule = f" [rule {self.rule}]" if self.rule else ""
        expr = f": {self.expr}" if self.expr else ""
        return f"{self.severity:<7} {self.code} at {self.location}{rule} — {self.message}{expr}"

    def to_annotation(self, source: str = "") -> dict:
        """CI-annotation form of the finding (the shared ``--json``
        contract of ``repro lint`` / ``check`` / ``bounds``): a flat
        record a CI step can turn into one ``::error``/``::warning``
        workflow command.  ``level`` follows the GitHub vocabulary
        (info renders as ``notice``)."""
        level = {"error": "error", "warning": "warning"}.get(self.severity, "notice")
        out = {
            "level": level,
            "title": self.code,
            "message": self.message,
            "location": self.location,
        }
        if source:
            out["source"] = source
        if self.site is not None and ":" in self.site:
            path, _, line = self.site.rpartition(":")
            if line.isdigit():
                out["file"] = path
                out["line"] = int(line)
        return out


def make_diagnostic(
    code: str,
    message: str,
    path: ExprPath = (),
    expr="",
    rule: str | None = None,
    severity: str | None = None,
    site: str | None = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting severity from the code registry."""
    info = code_info(code)
    return Diagnostic(
        code=code,
        severity=severity or info.default_severity,
        message=message,
        path=tuple(path),
        expr=str(expr),
        rule=rule,
        site=site,
    )


@dataclass
class DiagnosticReport:
    """All findings of one lint run over one expression/plan."""

    source: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def at_least(self, severity: str) -> list[Diagnostic]:
        """Findings at or above a severity."""
        floor = severity_rank(severity)
        return [d for d in self.diagnostics if severity_rank(d.severity) >= floor]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least("error")

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def max_severity(self) -> str | None:
        if not self.diagnostics:
            return None
        return max(self.diagnostics, key=lambda d: severity_rank(d.severity)).severity

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    # -- rendering ---------------------------------------------------------

    def render_text(self, label: str = "lint") -> str:
        """Human-readable multi-line report."""
        header = f"{label} {self.source}" if self.source else label
        if not self.diagnostics:
            return f"{header}: clean (no diagnostics)"
        lines = [f"{header}: {self._summary()}"]
        for diagnostic in sorted(
            self.diagnostics, key=lambda d: (-severity_rank(d.severity), d.code, d.path)
        ):
            lines.append("  " + diagnostic.render())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "summary": self._summary(),
            "max_severity": self.max_severity,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def _summary(self) -> str:
        counts = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        parts = [f"{n} {severity}(s)" for severity, n in reversed(counts.items())
                 if n] or ["clean"]
        return ", ".join(parts)


# -- the shared CLI diagnostics contract ------------------------------------
#
# ``repro lint`` and ``repro check`` share one exit-code contract and
# one --json payload shape (documented in docs/API.md, "CLI
# diagnostics contract"):
#
# * exit 0 — clean, or findings below error severity only;
# * exit 1 — at least one error-severity finding (or a failed verdict);
# * exit 2 — usage error (nothing to do, unreadable input).

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def exit_code_for(reports) -> int:
    """The contract exit code for a list of reports (0 or 1)."""
    return EXIT_FINDINGS if any(r.has_errors for r in reports) else EXIT_CLEAN


def cli_payload(command: str, reports, exit_code: int | None = None, **extra) -> dict:
    """The shared ``--json`` payload for a diagnostics command.

    ``repro lint`` / ``repro check`` / ``repro bounds`` all emit this
    shape; ``annotations`` flattens every finding into the CI form of
    :meth:`Diagnostic.to_annotation`, so one CI step can annotate any
    command's output without knowing which command produced it."""
    reports = list(reports)
    severities = [r.max_severity for r in reports if r.max_severity is not None]
    payload = {
        "command": command,
        "reports": [r.to_dict() for r in reports],
        "annotations": [d.to_annotation(source=r.source)
                        for r in reports for d in r],
        "max_severity": (max(severities, key=severity_rank) if severities else None),
        "exit_code": exit_code_for(reports) if exit_code is None else exit_code,
    }
    payload.update(extra)
    return payload
