"""Resource-lifecycle & async-cancellation-safety analysis (MOA11xx).

``repro.analysis.lifecycle`` certifies runtime-resource discipline the
way MOA9xx certifies score bounds: an AST→CFG dataflow tracks
acquire/release typestates for locks, pool slots, tenant admissions,
session busy flags and pinned buffer pages through branches,
exceptions, ``with``/``try/finally`` and await points (MOA1101-1104),
and a whole-program static lock-acquisition graph is cross-checked
against the runtime sanitizer's ``lock_order_edges()`` (MOA1105).
"""

from .analyzer import (
    FunctionSummary,
    analyze_function,
    check_lifecycle,
    check_lifecycle_paths,
    lifecycle_root,
    module_summaries,
)
from .cfg import FunctionCFG, build_cfg, module_cfgs
from .lockgraph import (
    LockOrderGraph,
    build_lock_graph,
    crosscheck_lock_order,
    lock_graph_diagnostics,
    lock_order_cycles,
    static_lock_order_edges,
)
from .model import ClassContext, Vocabulary

__all__ = [
    "ClassContext",
    "FunctionCFG",
    "FunctionSummary",
    "LockOrderGraph",
    "Vocabulary",
    "analyze_function",
    "build_cfg",
    "build_lock_graph",
    "check_lifecycle",
    "check_lifecycle_paths",
    "crosscheck_lock_order",
    "lifecycle_root",
    "lock_graph_diagnostics",
    "lock_order_cycles",
    "module_cfgs",
    "module_summaries",
    "static_lock_order_edges",
]
