"""Path-sensitive resource-typestate dataflow: MOA1101–MOA1104.

The analysis is a collecting semantics over the lifecycle CFG: each
block accumulates a *set* of abstract states (handle → Held/Released
with the acquiring line), propagated along normal, exceptional and
cancellation edges to a fixpoint.  Keeping states as sets rather than
joining them is what makes the verdicts path-sensitive — ``if ok:
release(h)`` leaks only on the ``not ok`` path, and that is exactly
the state that reaches the exit Held.

Verdicts:

* **MOA1101** — a handle is Held in some state at a function exit
  (normal or exceptional), or is re-acquired/rebound while Held.
  Parameter handles are exempt: a caller-owned resource is the
  caller's obligation (it still participates in summaries and double
  release checks).
* **MOA1102** — a *must* property: a release site where **no**
  arriving state holds the resource.  Mixed states (some paths hold,
  some already released — e.g. an idempotent cleanup handler) are
  deliberately not flagged.
* **MOA1103** — an ``Await`` event executes while a lock-kind handle
  is Held: the suspension can outlive the task (cancellation) with a
  non-async lock held, and every other task that touches the lock
  blocks the loop.  Slot/session holds across awaits are the service
  layer's *designed* pattern and are not flagged.
* **MOA1104** — a Held handle escapes: returned from a non-factory,
  stored to an attribute outside the class's declared
  ``SHARED_STATE``/``SEALED_BY``, or written to a global/container.
  ``@acquires(kind)`` factories are exempt — escaping is their job.

One-level call summaries close the gap the PR-8 review bugs lived in:
pass 1 records, per helper, which *parameter* handles it releases on
every exit (including exceptional ones); pass 2 applies those
releases at call sites, so ``await self._stream(session, ...)`` is
known to settle the session on every path without inlining.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from ..diagnostics import DiagnosticReport, make_diagnostic
from .cfg import Acquire, Await, Call, Escape, FunctionCFG, Release, \
    module_cfgs
from .lockgraph import lock_graph_diagnostics
from .model import ClassContext, Vocabulary

__all__ = [
    "FunctionSummary",
    "analyze_function",
    "check_lifecycle",
    "check_lifecycle_paths",
    "lifecycle_root",
    "module_summaries",
]

_HELD = "H"
_RELEASED = "R"

#: collecting-semantics safety valve: past this many distinct states
#: per block the analysis stops adding new ones (never hit in-tree)
MAX_STATES_PER_BLOCK = 512


@dataclass(frozen=True)
class FunctionSummary:
    """One-level effect of a helper on its *positional caller
    arguments*: which are released on every exit, which on some."""

    releases_all: frozenset = frozenset()
    releases_some: frozenset = frozenset()


@dataclass
class _Finding:
    code: str
    line: int
    message: str


@dataclass
class _Analysis:
    cfg: FunctionCFG
    ctx: ClassContext
    summaries: dict
    findings: list = field(default_factory=list)
    exit_states: dict = field(default_factory=dict)
    _seen: set = field(default_factory=set)

    def report(self, code: str, line: int, message: str) -> None:
        key = (code, line, message)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(_Finding(code, line, message))

    # -- state helpers -------------------------------------------------

    def _status(self, state, handle):
        for name, status, line in state:
            if name == handle:
                return status, line
        return None, 0

    def _set(self, state, handle, status, line):
        rest = tuple(entry for entry in state if entry[0] != handle)
        return tuple(sorted(rest + ((handle, status, line),)))

    def _kind(self, handle: str) -> str:
        return self.cfg.handle_kinds.get(handle, "resource")

    # -- event transfer ------------------------------------------------

    def _apply(self, state, event, site_obs):
        """Normal-outcome transfer of one event over one state."""
        if isinstance(event, Acquire):
            status, old_line = self._status(state, event.handle)
            if status == _HELD:
                self.report(
                    "MOA1101", event.line,
                    f"{event.handle!r} ({self._kind(event.handle)}) is "
                    f"re-acquired while still held (acquired at line "
                    f"{old_line} and never released on this path)")
            return self._set(state, event.handle, _HELD, event.line)
        if isinstance(event, Release):
            status, _line = self._status(state, event.handle)
            if not event.scoped:
                site_obs.setdefault(
                    (event.handle, event.line), set()).add(status or "N")
            return self._set(state, event.handle, _RELEASED, event.line)
        if isinstance(event, Await):
            for name, status, line in state:
                if status == _HELD and self._kind(name) == "lock":
                    self.report(
                        "MOA1103", event.line,
                        f"await while holding non-async lock {name!r} "
                        f"(acquired at line {line}): the suspension is a "
                        "cancellation point and every other task touching "
                        "the lock blocks the event loop")
            return state
        if isinstance(event, Escape):
            status, line = self._status(state, event.handle)
            if status != _HELD:
                return state
            if event.how == "rebound":
                if event.handle not in self.cfg.param_handles:
                    self.report(
                        "MOA1101", event.line,
                        f"{event.handle!r} ({self._kind(event.handle)}) is "
                        f"rebound while held (acquired at line {line}); "
                        "the live resource can no longer be released")
                return self._set(state, event.handle, _RELEASED, event.line)
            exempt = (
                self.cfg.factory_kind is not None
                or event.handle in self.cfg.param_handles)
            if not exempt:
                where = {"return": "returned to the caller"}.get(
                    event.how, f"stored outside its declared scope "
                               f"({event.how})")
                self.report(
                    "MOA1104", event.line,
                    f"held {self._kind(event.handle)} {event.handle!r} "
                    f"(acquired at line {line}) is {where}; only an "
                    "@acquires factory or a declared SHARED_STATE/"
                    "SEALED_BY attribute may take ownership")
            return self._set(state, event.handle, _RELEASED, event.line)
        if isinstance(event, Call):
            return self._apply_call(state, event, on_exception=False)
        return state

    def _summary_for(self, event: Call) -> FunctionSummary | None:
        leaf = event.callee.rsplit(".", 1)[-1]
        if event.self_call and self.ctx.name:
            found = self.summaries.get((self.ctx.name, leaf))
            if found is not None:
                return found
        return self.summaries.get(leaf)

    def _apply_call(self, state, event: Call, on_exception: bool):
        summary = self._summary_for(event)
        if summary is None or not event.handle_args:
            return state
        states = [state]
        for pos, handle in event.handle_args:
            if pos in summary.releases_all:
                states = [self._set(s, handle, _RELEASED, event.line)
                          for s in states]
            elif pos in summary.releases_some and not on_exception:
                # fork: the helper may or may not have released it
                states = states + [
                    self._set(s, handle, _RELEASED, event.line)
                    for s in states]
        return states if len(states) > 1 else states[0]

    # -- fixpoint ------------------------------------------------------

    def run(self) -> None:
        cfg = self.cfg
        entry_state = tuple(sorted(
            (name, _HELD, 0) for name in cfg.param_handles))
        in_states = {block.id: set() for block in cfg.blocks}
        in_states[cfg.entry].add(entry_state)
        site_obs: dict = {}
        work = [cfg.entry]
        processed: dict = {block.id: set() for block in cfg.blocks}
        while work:
            block_id = work.pop()
            block = cfg.block(block_id)
            pending = in_states[block_id] - processed[block_id]
            if not pending:
                continue
            processed[block_id] |= pending
            for state in pending:
                normal_states = [state]
                for event in block.events:
                    nxt = []
                    for current in normal_states:
                        result = self._apply(current, event, site_obs)
                        if isinstance(result, list):
                            nxt.extend(result)
                        else:
                            nxt.append(result)
                    normal_states = nxt
                except_states = self._except_states(state, block, site_obs)
                for succ_id, kind in block.succs:
                    outgoing = normal_states if kind == "normal" \
                        else except_states
                    bucket = in_states[succ_id]
                    grew = False
                    for out in outgoing:
                        if out not in bucket:
                            if len(bucket) >= MAX_STATES_PER_BLOCK:
                                break
                            bucket.add(out)
                            grew = True
                    if grew:
                        work.append(succ_id)
        self.exit_states = {
            "normal": in_states[cfg.normal_exit],
            "except": in_states[cfg.exc_exit],
        }
        self._check_exits()
        self._check_release_sites(site_obs)

    def _except_states(self, state, block, site_obs):
        """States flowing along this block's except/cancel edges: all
        events apply except the trailing may-raise one, whose effect is
        reduced to its guaranteed (all-exit) summary releases."""
        events = block.events
        if events and isinstance(events[-1], (Call, Await)):
            head, last = events[:-1], events[-1]
        else:
            head, last = events, None
        states = [state]
        for event in head:
            nxt = []
            for current in states:
                result = self._apply(current, event, site_obs)
                if isinstance(result, list):
                    nxt.extend(result)
                else:
                    nxt.append(result)
            states = nxt
        if isinstance(last, Call):
            states = [self._flatten(
                self._apply_call(s, last, on_exception=True))
                for s in states]
        return states

    @staticmethod
    def _flatten(result):
        return result[0] if isinstance(result, list) else result

    def _check_exits(self) -> None:
        for exit_kind, states in self.exit_states.items():
            path_word = "an exceptional" if exit_kind == "except" \
                else "a normal"
            for state in states:
                for handle, status, line in state:
                    if status != _HELD:
                        continue
                    if handle in self.cfg.param_handles:
                        continue
                    self.report(
                        "MOA1101", line,
                        f"{handle!r} ({self._kind(handle)}) acquired at "
                        f"line {line} is still held when "
                        f"{self.cfg.qualname!r} exits on {path_word} "
                        "path: release it in a finally/with or hand it "
                        "to an owner")

    def _check_release_sites(self, site_obs) -> None:
        for (handle, line), statuses in sorted(site_obs.items()):
            if _HELD in statuses:
                continue
            if statuses == {_RELEASED}:
                message = (
                    f"{handle!r} ({self._kind(handle)}) is released here "
                    "but every path arriving at this site already "
                    "released it: double release")
            elif _RELEASED in statuses:
                message = (
                    f"{handle!r} ({self._kind(handle)}) is released here "
                    "but no arriving path still holds it (some paths "
                    "released it earlier, none acquired it)")
            else:
                message = (
                    f"{handle!r} ({self._kind(handle)}) is released here "
                    "but never acquired on any arriving path")
            self.report("MOA1102", line, message)


def analyze_function(cfg: FunctionCFG, ctx: ClassContext,
                     summaries: dict | None = None) -> _Analysis:
    analysis = _Analysis(cfg=cfg, ctx=ctx, summaries=summaries or {})
    analysis.run()
    return analysis


# -- summaries --------------------------------------------------------------


def _position_of(cfg: FunctionCFG, handle: str, ctx: ClassContext) -> int:
    """Caller-side positional index of a parameter handle (``self``
    does not count: callers pass it implicitly)."""
    index = cfg.param_names.index(handle)
    if ctx.name and cfg.param_names and index > 0:
        return index - 1
    return index


def module_summaries(pairs) -> dict:
    """Pass 1: analyze every function in isolation and record which
    parameter handles it releases on all/some exits.  Summaries are
    keyed by ``(class, name)`` for methods (``self.helper(...)`` call
    sites resolve there first) and additionally by bare name when that
    name is unique across the analyzed set."""
    names = Counter(cfg.name for cfg, _ctx in pairs)
    summaries: dict = {}
    for cfg, ctx in pairs:
        if not cfg.param_handles:
            continue
        analysis = analyze_function(cfg, ctx, summaries=None)
        all_states = (analysis.exit_states["normal"]
                      | analysis.exit_states["except"])
        if not all_states:
            continue
        released_all, released_some = set(), set()
        for handle in cfg.param_handles:
            verdicts = [analysis._status(state, handle)[0] == _RELEASED
                        for state in all_states]
            if all(verdicts):
                released_all.add(_position_of(cfg, handle, ctx))
            elif any(verdicts):
                released_some.add(_position_of(cfg, handle, ctx))
        if released_all or released_some:
            summary = FunctionSummary(
                releases_all=frozenset(released_all),
                releases_some=frozenset(released_some))
            if ctx.name:
                summaries[(ctx.name, cfg.name)] = summary
            if names[cfg.name] == 1:
                summaries[cfg.name] = summary
    return summaries


# -- entry points -----------------------------------------------------------


def lifecycle_root() -> Path:
    """Directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


def _expand(paths) -> list:
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(path)
    return files


def _parse_all(files) -> list:
    trees = []
    for path in files:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
        except SyntaxError:
            continue
        trees.append((path, tree))
    return trees


def _run(files, source: str) -> DiagnosticReport:
    report = DiagnosticReport(source=source)
    trees = _parse_all(files)
    vocab = Vocabulary()
    for _path, tree in trees:
        vocab.extend_from_tree(tree)
    per_file = [(path, module_cfgs(tree, vocab)) for path, tree in trees]
    everything = [pair for _path, pairs in per_file for pair in pairs]
    summaries = module_summaries(everything)
    for path, pairs in per_file:
        for cfg, ctx in pairs:
            analysis = analyze_function(cfg, ctx, summaries=summaries)
            for finding in analysis.findings:
                report.add(make_diagnostic(
                    finding.code,
                    f"{cfg.qualname}: {finding.message}",
                    site=f"{path.name}:{finding.line}"))
    for diagnostic in lock_graph_diagnostics(trees):
        report.add(diagnostic)
    return report


def check_lifecycle(root=None) -> DiagnosticReport:
    """Run the MOA11xx lifecycle analysis over the whole ``repro``
    package (or an explicit package directory)."""
    base = Path(root) if root is not None else lifecycle_root()
    return _run(sorted(base.rglob("*.py")), source=f"lifecycle {base}")


def check_lifecycle_paths(paths) -> DiagnosticReport:
    """Explicit-path variant (``repro check <files>``): directories
    expand recursively, non-Python files are ignored."""
    files = _expand(paths)
    joined = ", ".join(str(p) for p in paths)
    return _run(files, source=f"lifecycle {joined}")
