"""AST → control-flow graph for the lifecycle analyzer (MOA11xx).

Each function body becomes a graph of basic blocks over five event
kinds: ``Acquire``, ``Release``, ``Call``, ``Await``, ``Escape``.
Three modelling decisions do most of the work:

* **one raise site per block** — every may-raise event (a call, an
  await, an explicit ``raise``, an assert) terminates its block, so an
  exceptional edge always leaves from a block whose *last* event is
  the raising one and the pre-raise resource state is exactly the
  state after the preceding events;

* **handler coverage** — an exceptional edge routes to the innermost
  enclosing ``try`` *that has handlers*, which we assume cover the
  raised exception.  Narrower would flood the clean tree with
  impossible paths; this assumption is what the hypothesis
  differential test pins down (its generated programs use only bare
  ``except``, where the assumption is exact);

* **finally/with inlining** — exceptional and early-exit edges pass
  through a freshly built *unwind chain* that replays, innermost
  first, every ``with`` release and every ``finally`` body between
  the raise site and its landing point.  ``with <acquire-call>:``
  therefore behaves as acquire + guaranteed release on *every* exit
  edge, which is the whole point of the idiom.

Await points get their own ``cancel`` edge kind: cancellation unwinds
exactly like an exception, and MOA1103 is precisely "an Await event
executed while a lock-kind resource is held".
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field

from .model import (
    ClassContext,
    Vocabulary,
    dotted,
    function_acquires,
    function_releases,
    looks_like_lock,
)

__all__ = [
    "Acquire",
    "Await",
    "Block",
    "Call",
    "Escape",
    "FunctionCFG",
    "Release",
    "build_cfg",
    "module_cfgs",
]


@dataclass(frozen=True)
class Acquire:
    """``handle`` becomes Held.  ``scoped`` acquires are released by
    the enclosing ``with`` on every exit edge."""

    handle: str
    kind: str
    line: int
    scoped: bool = False


@dataclass(frozen=True)
class Release:
    """``handle`` becomes Released.  Builder-inserted scope releases
    (``scoped=True``) are exempt from MOA1102 (they always follow
    their own acquire by construction)."""

    handle: str
    line: int
    scoped: bool = False


@dataclass(frozen=True)
class Call:
    """A may-raise call.  ``handle_args`` maps positional argument
    index → handle name, for one-level summary application; empty when
    the call's resource effect was already emitted directly.
    ``self_call`` marks ``self.helper(...)`` so summaries can resolve
    within the enclosing class first."""

    line: int
    callee: str
    handle_args: tuple = ()
    self_call: bool = False


@dataclass(frozen=True)
class Await:
    """A suspension point; also a cancellation point (``cancel`` edge)."""

    line: int


@dataclass(frozen=True)
class Escape:
    """A handle leaves the function: returned, stored to an undeclared
    attribute or global, or rebound while possibly held."""

    handle: str
    line: int
    how: str  # "return" | "attr:<name>" | "global:<name>" | "rebound"


@dataclass
class Block:
    id: int
    events: list = field(default_factory=list)
    succs: list = field(default_factory=list)  # (block_id, edge_kind)


@dataclass
class FunctionCFG:
    name: str
    qualname: str
    line: int
    blocks: list
    entry: int
    normal_exit: int
    exc_exit: int
    param_names: tuple = ()
    param_handles: frozenset = frozenset()
    handle_kinds: dict = field(default_factory=dict)
    factory_kind: str | None = None
    releaser_kind: str | None = None
    is_async: bool = False

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]


class _WithFrame:
    __slots__ = ("handles", "line")

    def __init__(self, handles, line):
        self.handles = handles
        self.line = line


class _FinallyFrame:
    __slots__ = ("stmts",)

    def __init__(self, stmts):
        self.stmts = stmts


class _HandlerFrame:
    __slots__ = ("entries",)

    def __init__(self, entries):
        self.entries = entries


class _LoopFrame:
    __slots__ = ("head", "exit")

    def __init__(self, head, exit_):
        self.head = head
        self.exit = exit_


class _CfgBuilder:
    def __init__(self, func: ast.AST, vocab: Vocabulary,
                 class_ctx: ClassContext, qualname: str):
        self.func = func
        self.vocab = vocab
        self.class_ctx = class_ctx
        self.qualname = qualname
        self.blocks: list = []
        self.frames: list = []
        self.aliases: dict = {}
        self.handle_kinds: dict = {}
        self._fresh = itertools.count()
        self.entry = self._new_block()
        self.normal_exit = self._new_block()
        self.exc_exit = self._new_block()
        self.cur = self.entry
        args = func.args
        self.param_names = tuple(
            a.arg for a in itertools.chain(
                args.posonlyargs, args.args, args.kwonlyargs))
        self.self_var = self.param_names[0] if (
            class_ctx.name and self.param_names) else None
        self.param_handles = self._scan_param_handles()
        for name in self.param_handles:
            self.handle_kinds.setdefault(name, "resource")

    # -- plumbing ------------------------------------------------------

    def _new_block(self) -> int:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block.id

    def _emit(self, event) -> None:
        self.blocks[self.cur].events.append(event)

    def _edge(self, src: int, dst: int, kind: str = "normal") -> None:
        self.blocks[src].succs.append((dst, kind))

    def _scan_param_handles(self) -> frozenset:
        """Parameters that appear in release position anywhere in the
        body are caller-owned handles: track them (so helper summaries
        and double-release checks see them) but never report MOA1101
        on them — releasing is the caller's obligation, not ours."""
        params = set(self.param_names)
        if self.self_var:
            params.discard(self.self_var)
        found = set()
        for node in ast.walk(self.func):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in self.vocab.release:
                recv = func.value
                # `session.release()` names the resource itself; with
                # arguments (`registry.drop(token)`) the receiver is a
                # manager and the handle travels in the args
                if (not node.args and isinstance(recv, ast.Name)
                        and recv.id in params):
                    found.add(recv.id)
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in params:
                        found.add(arg.id)
                    elif (isinstance(arg, ast.Attribute)
                          and isinstance(arg.value, ast.Name)
                          and arg.value.id in params):
                        found.add(arg.value.id)
        return frozenset(found)

    def _canon(self, name: str) -> str:
        return self.aliases.get(name, name)

    def _is_handle(self, name: str) -> bool:
        return self._canon(name) in self.handle_kinds

    def _lock_token(self, node: ast.AST) -> str | None:
        token = dotted(node)
        if not token:
            return None
        if self.self_var and token.startswith(self.self_var + "."):
            token = "self." + token[len(self.self_var) + 1:]
        return token if looks_like_lock(token) else None

    # -- unwinding -----------------------------------------------------

    def _unwind(self, stop_idx: int | None) -> tuple:
        """Build a fresh chain of blocks replaying, innermost first,
        the scope releases and finally bodies of every frame strictly
        inside ``stop_idx`` (all frames when None).  Returns (entry,
        last) with the last block left unconnected."""
        saved_cur, saved_frames = self.cur, self.frames
        entry = self._new_block()
        self.cur = entry
        floor = -1 if stop_idx is None else stop_idx
        for idx in range(len(saved_frames) - 1, floor, -1):
            frame = saved_frames[idx]
            if isinstance(frame, _WithFrame):
                for handle in reversed(frame.handles):
                    self._emit(Release(handle, frame.line, scoped=True))
            elif isinstance(frame, _FinallyFrame):
                # the finally body runs with only the *outer* frames
                # active: an exception inside it propagates past this try
                self.frames = list(saved_frames[:idx])
                self._build_stmts(frame.stmts)
        last = self.cur
        self.cur, self.frames = saved_cur, saved_frames
        return entry, last

    def _innermost(self, frame_type) -> int | None:
        for idx in range(len(self.frames) - 1, -1, -1):
            if isinstance(self.frames[idx], frame_type):
                return idx
        return None

    def _exception_edge(self, kind: str = "except",
                        fallthrough: bool = True) -> None:
        """Route an exception raised by the last event of the current
        block: unwind to the innermost try-with-handlers (assumed to
        cover it) or to the exceptional exit.  ``fallthrough=False``
        (an unconditional ``raise``) leaves no normal continuation."""
        stop_idx = self._innermost(_HandlerFrame)
        entry, last = self._unwind(stop_idx)
        if stop_idx is None:
            self._edge(last, self.exc_exit)
        else:
            for handler_entry in self.frames[stop_idx].entries:
                self._edge(last, handler_entry)
        self._edge(self.cur, entry, kind)
        follow = self._new_block()
        if fallthrough:
            self._edge(self.cur, follow)
        self.cur = follow

    # -- expressions ---------------------------------------------------

    def _visit_expr(self, node) -> None:
        if node is None or isinstance(node, (ast.Constant, ast.Name)):
            return
        if isinstance(node, ast.Await):
            self._visit_expr(node.value)
            self._emit(Await(node.lineno))
            self._exception_edge(kind="cancel")
            return
        if isinstance(node, ast.Call):
            for arg in node.args:
                self._visit_expr(arg)
            for kw in node.keywords:
                self._visit_expr(kw.value)
            self._process_call(node)
            return
        if isinstance(node, ast.Lambda):
            return  # deferred body
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)

    def _handle_of_arg(self, arg) -> str | None:
        if isinstance(arg, ast.Name) and self._is_handle(arg.id):
            return self._canon(arg.id)
        if (isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and self._is_handle(arg.value.id)):
            # registry.drop(session.token) releases `session`
            return self._canon(arg.value.id)
        return None

    def _process_call(self, node: ast.Call) -> None:
        """Emit the resource events of one call, then its raise edge."""
        func = node.func
        method = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        recv = func.value if isinstance(func, ast.Attribute) else None
        recv_dotted = dotted(recv) if recv is not None else ""
        line = node.lineno
        handled = False
        if method in self.vocab.release or method == "release":
            released = []
            if (recv is not None and isinstance(recv, ast.Name)
                    and self._is_handle(recv.id)):
                released.append(self._canon(recv.id))
            elif recv is not None and self._lock_token(recv):
                released.append(self._lock_token(recv))
            else:
                for arg in node.args:
                    handle = self._handle_of_arg(arg)
                    if handle is not None:
                        released.append(handle)
            for handle in released:
                self._emit(Release(handle, line))
                handled = True
        elif method in self.vocab.keyed_release and recv_dotted:
            kind = self.vocab.keyed_release[method]
            handle = f"{kind}@{recv_dotted}"
            self.handle_kinds.setdefault(handle, kind)
            self._emit(Release(handle, line))
            handled = True
        elif method == "acquire" and recv is not None:
            token = self._lock_token(recv)
            if token is not None:
                # raise edge first: if the acquire call itself raises,
                # the resource was never taken
                self._exception_edge()
                self.handle_kinds.setdefault(token, "lock")
                self._emit(Acquire(token, "lock", line))
                return
        elif method in self.vocab.keyed_acquire and recv_dotted:
            kind = self.vocab.keyed_acquire[method]
            handle = f"{kind}@{recv_dotted}"
            self._exception_edge()
            self.handle_kinds.setdefault(handle, kind)
            self._emit(Acquire(handle, kind, line))
            return
        handle_args = ()
        if not handled:
            pairs = []
            for idx, arg in enumerate(node.args):
                handle = self._handle_of_arg(arg)
                if handle is not None:
                    pairs.append((idx, handle))
            handle_args = tuple(pairs)
        self_call = bool(self.self_var) and recv_dotted == self.self_var
        self._emit(Call(line, callee=dotted(func) or method,
                        handle_args=handle_args, self_call=self_call))
        self._exception_edge()

    def _acquire_kind_of_call(self, node: ast.Call) -> str | None:
        func = node.func
        method = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        return self.vocab.acquire.get(method)

    # -- statements ----------------------------------------------------

    def _build_stmts(self, stmts) -> None:
        for stmt in stmts:
            self._build_stmt(stmt)

    def _build_stmt(self, stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass)):
            return
        if isinstance(stmt, ast.Expr):
            self._visit_expr(stmt.value)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.Raise):
            self._visit_expr(stmt.exc)
            self._exception_edge(fallthrough=False)
        elif isinstance(stmt, ast.Assert):
            # asserts vanish under -O and model programming errors,
            # not runtime resource paths: no exceptional edge
            self._visit_expr(stmt.test)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Break):
            self._break_continue(target="exit")
        elif isinstance(stmt, ast.Continue):
            self._break_continue(target="head")
        elif isinstance(stmt, ast.Delete):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_expr(child)

    def _assign(self, targets, value) -> None:
        acquire_kind = None
        if isinstance(value, ast.Call):
            acquire_kind = self._acquire_kind_of_call(value)
        alias_of = None
        if isinstance(value, ast.Name) and self._is_handle(value.id):
            alias_of = self._canon(value.id)
        self._visit_expr(value)
        for target in targets:
            if isinstance(target, ast.Name):
                name = target.id
                if self._is_handle(name) and alias_of != self._canon(name):
                    # rebinding a (possibly held) handle loses it
                    self._emit(Escape(self._canon(name), target.lineno,
                                      how="rebound"))
                    self.aliases.pop(name, None)
                if acquire_kind is not None:
                    self.handle_kinds[name] = acquire_kind
                    self.aliases.pop(name, None)
                    self._emit(Acquire(name, acquire_kind, target.lineno))
                elif alias_of is not None:
                    self.aliases[name] = alias_of
            elif isinstance(target, ast.Attribute):
                stored = None
                if isinstance(value, ast.Name) and self._is_handle(value.id):
                    stored = self._canon(value.id)
                elif acquire_kind is not None:
                    stored = f"{acquire_kind}@{dotted(target)}"
                    self.handle_kinds[stored] = acquire_kind
                    self._emit(Acquire(stored, acquire_kind, target.lineno))
                if stored is not None:
                    attr = target.attr
                    owner_declared = (
                        isinstance(target.value, ast.Name)
                        and target.value.id == self.self_var
                        and attr in self.class_ctx.declared_attrs)
                    if owner_declared:
                        # ownership transfer into declared shared state
                        self._emit(Release(stored, target.lineno))
                    else:
                        self._emit(Escape(stored, target.lineno,
                                          how=f"attr:{attr}"))
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if (isinstance(element, ast.Name)
                            and self._is_handle(element.id)):
                        self._emit(Escape(self._canon(element.id),
                                          element.lineno, how="rebound"))
                        self.aliases.pop(element.id, None)
            elif isinstance(target, ast.Subscript):
                self._visit_expr(target.value)
                if isinstance(value, ast.Name) and self._is_handle(value.id):
                    self._emit(Escape(self._canon(value.id), target.lineno,
                                      how=f"global:{dotted(target.value)}"))

    def _return(self, stmt: ast.Return) -> None:
        value = stmt.value
        self._visit_expr(value)
        if isinstance(value, ast.Name) and self._is_handle(value.id):
            self._emit(Escape(self._canon(value.id), stmt.lineno,
                              how="return"))
        entry, last = self._unwind(None)
        self._edge(self.cur, entry)
        self._edge(last, self.normal_exit)
        self.cur = self._new_block()  # dead

    def _break_continue(self, target: str) -> None:
        loop_idx = self._innermost(_LoopFrame)
        if loop_idx is None:
            return
        entry, last = self._unwind(loop_idx)
        self._edge(self.cur, entry)
        frame = self.frames[loop_idx]
        self._edge(last, frame.exit if target == "exit" else frame.head)
        self.cur = self._new_block()  # dead

    def _if(self, stmt: ast.If) -> None:
        self._visit_expr(stmt.test)
        branch_from = self.cur
        then_entry = self._new_block()
        self._edge(branch_from, then_entry)
        self.cur = then_entry
        self._build_stmts(stmt.body)
        then_end = self.cur
        else_entry = self._new_block()
        self._edge(branch_from, else_entry)
        self.cur = else_entry
        self._build_stmts(stmt.orelse)
        else_end = self.cur
        join = self._new_block()
        self._edge(then_end, join)
        self._edge(else_end, join)
        self.cur = join

    def _loop(self, stmt) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                if self._is_handle(name):
                    self._emit(Escape(self._canon(name), stmt.lineno,
                                      how="rebound"))
                    self.aliases.pop(name, None)
        head = self._new_block()
        exit_ = self._new_block()
        self._edge(self.cur, head)
        self.cur = head
        if isinstance(stmt, ast.While):
            self._visit_expr(stmt.test)
        test_end = self.cur
        body_entry = self._new_block()
        self._edge(test_end, body_entry)
        infinite = (isinstance(stmt, ast.While)
                    and isinstance(stmt.test, ast.Constant)
                    and bool(stmt.test.value))
        if not infinite:
            # `while True:` only exits via break/return — no fall-off
            # edge, so no phantom leak path out of the loop
            self._edge(test_end, exit_)
        self.cur = body_entry
        self.frames.append(_LoopFrame(head, exit_))
        self._build_stmts(stmt.body)
        self.frames.pop()
        self._edge(self.cur, head)
        self.cur = exit_
        if stmt.orelse:
            self._build_stmts(stmt.orelse)

    def _try(self, stmt: ast.Try) -> None:
        finally_frame = _FinallyFrame(stmt.finalbody) if stmt.finalbody \
            else None
        if finally_frame is not None:
            self.frames.append(finally_frame)
        handler_entries = [self._new_block() for _ in stmt.handlers]
        handler_frame = _HandlerFrame(handler_entries) if stmt.handlers \
            else None
        if handler_frame is not None:
            self.frames.append(handler_frame)
        self._build_stmts(stmt.body)
        if handler_frame is not None:
            self.frames.pop()
        if stmt.orelse:
            # else runs only when the body did not raise, and its own
            # exceptions are NOT caught by this try's handlers
            self._build_stmts(stmt.orelse)
        body_end = self.cur
        handler_ends = []
        for entry_id, _handler in zip(handler_entries, stmt.handlers):
            self.cur = entry_id
            self._build_stmts(_handler.body)
            handler_ends.append(self.cur)
        if finally_frame is not None:
            self.frames.pop()
        join = self._new_block()
        for end in [body_end, *handler_ends]:
            self.cur = end
            if finally_frame is not None:
                # inline the finally body on the normal completion path
                self._build_stmts(stmt.finalbody)
            self._edge(self.cur, join)
        self.cur = join

    def _with(self, stmt) -> None:
        acquired = []
        for item in stmt.items:
            ctx = item.context_expr
            scoped_handle = None
            if isinstance(ctx, ast.Call):
                kind = self._acquire_kind_of_call(ctx)
                self._visit_expr(ctx)
                if kind is not None:
                    if isinstance(item.optional_vars, ast.Name):
                        # NB: `with q.admit() as t:` binds __enter__'s
                        # result, but for our vocabulary the handle and
                        # the binding coincide closely enough to pair
                        handle = item.optional_vars.id
                    else:
                        handle = f"{kind}#{next(self._fresh)}"
                    self.handle_kinds[handle] = kind
                    self._emit(Acquire(handle, kind, ctx.lineno, scoped=True))
                    scoped_handle = handle
            elif isinstance(ctx, ast.Name) and self._is_handle(ctx.id):
                # `with admission:` — scope-exit releases the held handle
                scoped_handle = self._canon(ctx.id)
            elif self._lock_token(ctx):
                token = self._lock_token(ctx)
                self.handle_kinds.setdefault(token, "lock")
                self._emit(Acquire(token, "lock", stmt.lineno, scoped=True))
                scoped_handle = token
            else:
                self._visit_expr(ctx)
            if scoped_handle is not None:
                acquired.append(scoped_handle)
            if isinstance(stmt, ast.AsyncWith):
                self._emit(Await(stmt.lineno))
                self._exception_edge(kind="cancel")
        frame = _WithFrame(acquired, stmt.lineno)
        self.frames.append(frame)
        self._build_stmts(stmt.body)
        self.frames.pop()
        for handle in reversed(acquired):
            self._emit(Release(handle, stmt.lineno, scoped=True))

    # -- driver --------------------------------------------------------

    def build(self) -> FunctionCFG:
        self._build_stmts(self.func.body)
        self._edge(self.cur, self.normal_exit)
        return FunctionCFG(
            name=self.func.name,
            qualname=self.qualname,
            line=self.func.lineno,
            blocks=self.blocks,
            entry=self.entry,
            normal_exit=self.normal_exit,
            exc_exit=self.exc_exit,
            param_names=self.param_names,
            param_handles=self.param_handles,
            handle_kinds=dict(self.handle_kinds),
            factory_kind=function_acquires(self.func),
            releaser_kind=function_releases(self.func),
            is_async=isinstance(self.func, ast.AsyncFunctionDef),
        )


def build_cfg(func, vocab: Vocabulary,
              class_ctx: ClassContext | None = None,
              qualname: str | None = None) -> FunctionCFG:
    """Build the CFG of one (sync or async) function definition."""
    ctx = class_ctx if class_ctx is not None else ClassContext()
    name = qualname if qualname is not None else func.name
    return _CfgBuilder(func, vocab, ctx, name).build()


def module_cfgs(tree: ast.Module, vocab: Vocabulary) -> list:
    """CFGs of every top-level function and method in a module, each
    paired with its enclosing :class:`ClassContext`."""
    out = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((build_cfg(node, vocab), ClassContext()))
        elif isinstance(node, ast.ClassDef):
            ctx = ClassContext.from_classdef(node)
            for member in node.body:
                if isinstance(member, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    cfg = build_cfg(member, vocab, ctx,
                                    qualname=f"{node.name}.{member.name}")
                    out.append((cfg, ctx))
    return out
