"""Whole-program static lock-acquisition graph: MOA1105.

Nodes are the *runtime lock names* handed to
:func:`repro.sync.make_lock` (``"serve.sessions"``,
``"parallel.executor"``, …), which is what makes the graph directly
comparable to the runtime sanitizer's
:func:`repro.sync.lock_order_edges` observations: both sides speak
the same vocabulary.

Edge extraction is a linear walk per function keeping the set of
locks held at each point (``with lock:`` scopes plus statement-form
``lock.acquire()``/``lock.release()`` pairs):

* acquiring ``B`` while holding ``A`` adds the edge ``A → B``;
* *calling* ``f()`` while holding ``A`` adds ``A → L`` for every lock
  ``L`` in the **transitive** acquisition set of ``f`` — resolved by
  bare callee name (``self.`` calls prefer same-class methods), with
  a fixpoint closure over the call graph.  This is deliberately a
  may-analysis: the runtime cross-check only needs the static edge
  set to be a *superset* of what the sanitizer can ever observe
  (``metrics.inc`` under the executor lock really does take the
  metrics registry and counter locks two calls down).

Verdicts: a cycle in the graph (any strongly connected component with
more than one lock) is a static deadlock — MOA1105; a class declaring
``LOCK_LEAF = True`` whose lock has outgoing edges broke its leaf
promise — also MOA1105.  :func:`crosscheck_lock_order` reports every
runtime-observed edge between statically known locks that the static
graph missed (the MOA1105 consistency obligation in CI).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..diagnostics import make_diagnostic
from .model import dotted, looks_like_lock

__all__ = [
    "LockOrderGraph",
    "build_lock_graph",
    "crosscheck_lock_order",
    "lock_graph_diagnostics",
    "lock_order_cycles",
    "static_lock_order_edges",
]


def _make_lock_name(value: ast.AST) -> str | None:
    """The string argument of a ``make_lock("name")`` call, if any."""
    if (isinstance(value, ast.Call)
            and dotted(value.func).rsplit(".", 1)[-1] == "make_lock"
            and value.args
            and isinstance(value.args[0], ast.Constant)
            and isinstance(value.args[0].value, str)):
        return value.args[0].value
    return None


@dataclass
class _FunctionFacts:
    fn_id: str
    name: str
    class_name: str | None
    module: str = ""
    direct_locks: set = field(default_factory=set)
    acquisitions: list = field(default_factory=list)  # (lock, line, held)
    calls: list = field(default_factory=list)  # (leaf, self_call, line, held)


#: container/builtin method names never resolved across modules — a
#: bare-name match on these would wire `self.shards.items()` under one
#: lock to every `items` method in the tree (same-module and same-class
#: definitions still resolve, so `Gauge.set` is reachable from the
#: metrics module's own `set_gauge`)
GENERIC_CALL_NAMES = frozenset({
    "abs", "add", "all", "any", "append", "bool", "clear", "copy",
    "count", "dict", "discard", "enumerate", "extend", "float",
    "format", "get", "getattr", "hasattr", "hash", "id", "index",
    "insert", "int", "isinstance", "items", "iter", "join", "keys",
    "len", "list", "max", "min", "next", "pop", "popitem", "print",
    "range", "remove", "repr", "round", "set", "setattr",
    "setdefault", "sort", "sorted", "split", "str", "strip", "sum",
    "super", "tuple", "type", "update", "values", "vars", "zip",
})


@dataclass
class LockOrderGraph:
    """The extracted graph plus everything the verdicts need."""

    edges: dict = field(default_factory=dict)  # (held, acquired) -> site
    lock_names: set = field(default_factory=set)
    leaf_locks: dict = field(default_factory=dict)  # name -> declaring site


class _Resolver:
    """Token → runtime lock name, per (module, class) scope."""

    def __init__(self, module_locks: dict, class_locks: dict):
        self.module_locks = module_locks
        self.class_locks = class_locks

    def resolve(self, token: str, class_name: str | None) -> str | None:
        if token.startswith("self."):
            attrs = self.class_locks.get(class_name, {})
            return attrs.get(token[len("self."):])
        if "." not in token:
            if class_name is not None:
                name = self.class_locks.get(class_name, {}).get(token)
                if name is not None:
                    return name
            return self.module_locks.get(token)
        return None


def _normalize_self(token: str, self_var: str | None) -> str:
    if self_var and token.startswith(self_var + "."):
        return "self." + token[len(self_var) + 1:]
    return token


class _FunctionWalker:
    """Linear per-function walk tracking the held-lock set."""

    def __init__(self, func, facts: _FunctionFacts, resolver: _Resolver,
                 self_var: str | None):
        self.func = func
        self.facts = facts
        self.resolver = resolver
        self.self_var = self_var
        self.held: list = []

    def _resolve(self, node: ast.AST) -> str | None:
        token = _normalize_self(dotted(node), self.self_var)
        if not token or not looks_like_lock(token):
            return None
        return self.resolver.resolve(token, self.facts.class_name)

    def _record_acquire(self, name: str | None, line: int) -> None:
        if name is None:
            return
        self.facts.direct_locks.add(name)
        self.facts.acquisitions.append((name, line, frozenset(self.held)))

    def _collect_calls(self, expr) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                leaf = func.attr
                recv = dotted(func.value)
                self_call = bool(
                    self.self_var and recv == self.self_var)
                # statement-form lock methods are handled structurally
                if leaf in ("acquire", "release") and \
                        self._resolve(func.value) is not None:
                    continue
            elif isinstance(func, ast.Name):
                leaf = func.id
                self_call = False
            else:
                continue
            self.facts.calls.append(
                (leaf, self_call, node.lineno, frozenset(self.held)))

    def _stmt_exprs(self, stmt) -> list:
        return [child for child in ast.iter_child_nodes(stmt)
                if isinstance(child, ast.expr)]

    def walk(self) -> None:
        self._visit_stmts(self.func.body)

    def _visit_stmts(self, stmts) -> None:
        for stmt in stmts:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered = []
            for item in stmt.items:
                self._collect_calls(item.context_expr)
                name = self._resolve(item.context_expr)
                if name is not None:
                    self._record_acquire(name, stmt.lineno)
                    self.held.append(name)
                    entered.append(name)
            self._visit_stmts(stmt.body)
            for name in reversed(entered):
                self.held.remove(name)
            return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            func = call.func
            if isinstance(func, ast.Attribute):
                name = self._resolve(func.value)
                if name is not None and func.attr == "acquire":
                    self._record_acquire(name, stmt.lineno)
                    self.held.append(name)
                    return
                if name is not None and func.attr == "release":
                    if name in self.held:
                        self.held.remove(name)
                    return
            self._collect_calls(stmt.value)
            return
        if isinstance(stmt, ast.Try):
            self._visit_stmts(stmt.body)
            for handler in stmt.handlers:
                self._visit_stmts(handler.body)
            self._visit_stmts(stmt.orelse)
            self._visit_stmts(stmt.finalbody)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._collect_calls(stmt.test)
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._collect_calls(stmt.iter)
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
            return
        for expr in self._stmt_exprs(stmt):
            self._collect_calls(expr)


def _scan_module(path, tree, module_locks, class_locks, guard_of):
    """First pass over one module: make_lock name tables, LOCK_LEAF
    declarations, @guarded_by guards."""
    leaf_decls = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            name = _make_lock_name(stmt.value)
            if name is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module_locks[target.id] = name
        elif isinstance(stmt, ast.ClassDef):
            attrs = class_locks.setdefault(stmt.name, {})
            is_leaf = False
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    name = _make_lock_name(node.value)
                    for target in node.targets:
                        if (name is not None
                                and isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)):
                            attrs[target.attr] = name
                        elif (name is not None
                              and isinstance(target, ast.Name)):
                            attrs[target.id] = name
                        elif (isinstance(target, ast.Name)
                              and target.id == "LOCK_LEAF"
                              and isinstance(node.value, ast.Constant)
                              and node.value.value is True):
                            is_leaf = True
            if is_leaf:
                for lock_name in attrs.values():
                    leaf_decls[lock_name] = f"{path.name}:{stmt.lineno}"
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    guard = _guard_token(member)
                    if guard is not None:
                        guard_of[(stmt.name, member.name)] = guard
    return leaf_decls


def _guard_token(func) -> str | None:
    for decorator in func.decorator_list:
        if (isinstance(decorator, ast.Call)
                and dotted(decorator.func).rsplit(".", 1)[-1]
                == "guarded_by"
                and decorator.args
                and isinstance(decorator.args[0], ast.Constant)
                and isinstance(decorator.args[0].value, str)):
            return decorator.args[0].value
    return None


def build_lock_graph(trees) -> LockOrderGraph:
    """Build the graph from ``[(path, ast.Module), ...]`` pairs."""
    graph = LockOrderGraph()
    module_locks: dict = {}
    class_locks: dict = {}
    guard_of: dict = {}
    for path, tree in trees:
        leaf_decls = _scan_module(path, tree, module_locks, class_locks,
                                  guard_of)
        graph.leaf_locks.update(leaf_decls)
    graph.lock_names = set(module_locks.values())
    for attrs in class_locks.values():
        graph.lock_names.update(attrs.values())
    resolver = _Resolver(module_locks, class_locks)

    all_facts: list = []
    for path, tree in trees:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                all_facts.append(
                    (path, _walk_one(node, None, None, resolver, path)))
            elif isinstance(node, ast.ClassDef):
                self_var = None
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        args = member.args
                        params = [*args.posonlyargs, *args.args]
                        self_var = params[0].arg if params else None
                        facts = _walk_one(member, node.name, self_var,
                                          resolver, path)
                        guard = guard_of.get((node.name, member.name))
                        if guard is not None:
                            guarded = resolver.resolve(guard, node.name)
                            if guarded is not None:
                                facts.direct_locks.add(guarded)
                        all_facts.append((path, facts))

    by_name: dict = {}
    for _path, facts in all_facts:
        by_name.setdefault(facts.name, []).append(facts)
    by_class: dict = {}
    for _path, facts in all_facts:
        if facts.class_name is not None:
            by_class[(facts.class_name, facts.name)] = facts

    # transitive acquisition closure over the name-resolved call graph
    trans = {facts.fn_id: set(facts.direct_locks)
             for _path, facts in all_facts}
    changed = True
    while changed:
        changed = False
        for _path, facts in all_facts:
            bucket = trans[facts.fn_id]
            before = len(bucket)
            for leaf, self_call, _line, _held in facts.calls:
                for callee in _candidates(facts, leaf, self_call,
                                          by_name, by_class):
                    bucket |= trans[callee.fn_id]
            if len(bucket) != before:
                changed = True

    for path, facts in all_facts:
        for lock, line, held in facts.acquisitions:
            for holder in held:
                _add_edge(graph, holder, lock, path, line)
        for leaf, self_call, line, held in facts.calls:
            if not held:
                continue
            for callee in _candidates(facts, leaf, self_call,
                                      by_name, by_class):
                for lock in trans[callee.fn_id]:
                    for holder in held:
                        _add_edge(graph, holder, lock, path, line)
    return graph


def _walk_one(func, class_name, self_var, resolver, path) -> _FunctionFacts:
    qual = f"{class_name}.{func.name}" if class_name else func.name
    facts = _FunctionFacts(fn_id=f"{path}:{qual}", name=func.name,
                           class_name=class_name, module=str(path))
    _FunctionWalker(func, facts, resolver, self_var).walk()
    return facts


def _candidates(facts, leaf, self_call, by_name, by_class):
    """Callee resolution ladder: an explicit ``self.`` call resolves
    in-class; otherwise same-module definitions win; otherwise a
    global bare-name match — except for generic container/builtin
    names, which never resolve across modules."""
    if self_call and (facts.class_name, leaf) in by_class:
        return [by_class[(facts.class_name, leaf)]]
    everywhere = by_name.get(leaf, [])
    local = [cand for cand in everywhere if cand.module == facts.module]
    if local:
        return local
    if leaf in GENERIC_CALL_NAMES:
        return []
    return everywhere


def _add_edge(graph, holder, lock, path, line) -> None:
    if holder == lock:
        return
    graph.edges.setdefault((holder, lock), f"{path.name}:{line}")


# -- verdicts ---------------------------------------------------------------


def lock_order_cycles(edges) -> list:
    """Strongly connected components of size > 1, as sorted lock-name
    lists (Tarjan)."""
    adjacency: dict = {}
    for held, acquired in edges:
        adjacency.setdefault(held, set()).add(acquired)
        adjacency.setdefault(acquired, set())
    index: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    counter = [0]
    components: list = []

    def strongconnect(node):
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in adjacency[node]:
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                components.append(sorted(component))

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)
    return sorted(components)


def lock_graph_diagnostics(trees) -> list:
    """MOA1105 findings for ``[(path, tree), ...]``: static cycles and
    broken LOCK_LEAF promises."""
    graph = build_lock_graph(trees)
    findings = []
    for cycle in lock_order_cycles(graph.edges):
        arrows = " -> ".join([*cycle, cycle[0]])
        sites = sorted(
            site for (held, acquired), site in graph.edges.items()
            if held in cycle and acquired in cycle)
        findings.append(make_diagnostic(
            "MOA1105",
            f"static lock-order cycle {arrows}: two threads taking "
            "these locks in different orders can deadlock; pick one "
            "global order (first edge at " + (sites[0] if sites else "?")
            + ")",
            site=sites[0] if sites else "lockgraph"))
    for lock_name, decl_site in sorted(graph.leaf_locks.items()):
        out = sorted(
            (acquired, site)
            for (held, acquired), site in graph.edges.items()
            if held == lock_name)
        if out:
            acquired, site = out[0]
            findings.append(make_diagnostic(
                "MOA1105",
                f"lock {lock_name!r} is declared LOCK_LEAF (at "
                f"{decl_site}) but acquires {acquired!r} while held "
                f"(at {site}): leaf locks must have no outgoing "
                "lock-order edges",
                site=site))
    return findings


def static_lock_order_edges(trees) -> dict:
    """``{(held, acquired): "file.py:line"}`` — the static twin of
    :func:`repro.sync.lock_order_edges`."""
    return dict(build_lock_graph(trees).edges)


def crosscheck_lock_order(graph: LockOrderGraph, runtime_edges) -> list:
    """Runtime-observed edges the static graph missed, restricted to
    locks the static scan knows about (test-fixture locks created
    outside the analyzed tree are ignored).  Empty means the static
    and dynamic views agree."""
    missing = []
    for (held, acquired) in sorted(runtime_edges):
        if held not in graph.lock_names or acquired not in graph.lock_names:
            continue
        if held == acquired:
            continue
        if (held, acquired) not in graph.edges:
            missing.append((held, acquired))
    return missing
