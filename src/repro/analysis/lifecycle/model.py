"""Resource model of the lifecycle analyzer: what counts as an
acquire, a release, a lock, a factory.

The vocabulary has two layers:

* the **builtin protocol** exported by :mod:`repro.sync`
  (``ACQUIRE_METHODS`` / ``RELEASE_METHODS`` / the keyed pin pair) —
  always active, so fixture modules can be analyzed standalone without
  importing anything;
* **declared extensions** read from the AST: ``@acquires(kind)`` /
  ``@releases(kind)`` decorators add the decorated method's name to
  the vocabulary, and mark the function itself as a factory (exempt
  from leak/escape reporting for its kind) or a releaser.

Acquire *sites* are deliberately narrow — only ``h = recv.m(...)``
and ``with recv.m(...):`` forms acquire, never a discarded call
result.  ``BufferManager`` calls ``self._policy.admit(key)`` as a
replacement-policy verb; a name-only rule would flag every such call,
and a discarded handle cannot be paired anyway.  The two exceptions
are receiver-keyed pairs (``buf.pin(...)`` / ``buf.unpin(...)``) and
lock receivers (``self._lock.acquire()``), where the *receiver* is the
resource.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ...sync import (
    ACQUIRE_METHODS,
    KEYED_ACQUIRE_METHODS,
    KEYED_RELEASE_METHODS,
    RELEASE_METHODS,
    RESOURCE_KINDS,
)

__all__ = [
    "ClassContext",
    "Vocabulary",
    "dotted",
    "function_acquires",
    "function_releases",
    "looks_like_lock",
]


def dotted(node: ast.AST) -> str:
    """Render a Name/Attribute chain as ``a.b.c`` (empty if dynamic)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        return f"{base}.{node.attr}" if base else ""
    return ""


def looks_like_lock(token: str) -> bool:
    """Lock heuristic shared with the MOA7xx effect inference: the
    final path segment mentions 'lock'."""
    return "lock" in token.rsplit(".", 1)[-1].lower()


def _marker_kind(node, marker: str) -> str | None:
    """``@acquires("slot")`` / ``@releases("session")`` decorator kind."""
    for decorator in node.decorator_list:
        if (isinstance(decorator, ast.Call)
                and dotted(decorator.func).rsplit(".", 1)[-1] == marker
                and decorator.args
                and isinstance(decorator.args[0], ast.Constant)
                and isinstance(decorator.args[0].value, str)):
            return decorator.args[0].value
    return None


def function_acquires(node) -> str | None:
    """The ``@acquires(kind)`` declaration of a function, if any."""
    return _marker_kind(node, "acquires")


def function_releases(node) -> str | None:
    """The ``@releases(kind)`` declaration of a function, if any."""
    return _marker_kind(node, "releases")


@dataclass
class Vocabulary:
    """The acquire/release method-name vocabulary for one analysis run:
    builtin protocol names plus every ``@acquires``/``@releases``
    declaration scanned from the analyzed trees."""

    acquire: dict = field(default_factory=lambda: dict(ACQUIRE_METHODS))
    release: dict = field(default_factory=lambda: dict(RELEASE_METHODS))
    keyed_acquire: dict = field(
        default_factory=lambda: dict(KEYED_ACQUIRE_METHODS))
    keyed_release: dict = field(
        default_factory=lambda: dict(KEYED_RELEASE_METHODS))

    def extend_from_tree(self, tree: ast.AST) -> None:
        """Add every decorator-declared method name found in ``tree``."""
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            kind = function_acquires(node)
            if kind is not None and node.name not in self.keyed_acquire:
                self.acquire.setdefault(node.name, kind)
            kind = function_releases(node)
            if kind is not None and node.name not in self.keyed_release:
                self.release.setdefault(node.name, kind)

    def kind_of(self, kind: str) -> str:
        return kind if kind in RESOURCE_KINDS else "slot"


@dataclass
class ClassContext:
    """What the enclosing class declares, for escape/lock resolution:
    the attributes its ``SHARED_STATE`` / ``SEALED_BY`` cover (storing
    a held handle there is an ownership transfer, not an escape) and
    its lock attributes."""

    name: str = ""
    declared_attrs: frozenset = frozenset()
    lock_attrs: frozenset = frozenset()

    @classmethod
    def from_classdef(cls, node: ast.ClassDef) -> "ClassContext":
        declared: set = set()
        locks: set = set()
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if (target.id in ("SHARED_STATE", "SEALED_BY")
                        and isinstance(stmt.value, ast.Dict)):
                    for key in stmt.value.keys:
                        if (isinstance(key, ast.Constant)
                                and isinstance(key.value, str)):
                            declared.add(key.value)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and looks_like_lock(target.attr)):
                        locks.add(target.attr)
        return cls(name=node.name, declared_attrs=frozenset(declared),
                   lock_attrs=frozenset(locks))
