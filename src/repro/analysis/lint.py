"""Plan linting: the high-level entry points behind ``repro lint``.

:func:`lint_expr` runs the analyzer suite over one expression and
returns a :class:`~repro.analysis.diagnostics.DiagnosticReport`;
:func:`lint_text` parses first; :func:`lint_file` lints every
expression in a plan file (one expression per line, ``#`` comments).

The module also ships the *seeded unsound rewrites* the acceptance
criteria call for — negative exemplars the verifier and the soundness
harness must both reject:

* :class:`UnsafeStopAfterPushdown` pushes a ``stop_after``-style
  prefix cut below a ``topn`` over an unordered BAG — the canonical
  unsound "optimization" the paper warns about;
* :class:`UnsafeSelectWidening` snaps selection bounds outward to
  coarse histogram buckets while *declaring itself safe* — the lying
  label the harness catches differentially, and the bound-flow
  analyzer catches statically: the derived score interval widens
  across the rewrite (MOA904).

:func:`demo_unsafe_rewrite` / :func:`demo_widening_rewrite` apply them
and show the verifier flagging the results with stable MOA codes, plus
the soundness harness failing the rules.
"""

from __future__ import annotations

import math

from dataclasses import dataclass

from ..algebra.expr import Apply, Expr
from ..algebra.parser import parse
from ..algebra.types import BagType
from ..optimizer.rules import RewriteRule, RuleContext
from .analyzers import AnalysisContext, analyze_expr, check_rewrite_step
from .diagnostics import DiagnosticReport
from .soundness import SoundnessHarness, apply_rule_somewhere


def lint_expr(
    expr: Expr,
    env_types=None,
    registry=None,
    fragments=None,
    source: str = "",
    analyzers=None,
) -> DiagnosticReport:
    """Run the full analyzer suite over one expression."""
    context = AnalysisContext(env_types=env_types or {}, fragments=fragments or {})
    if registry is not None:
        context.registry = registry
    report = DiagnosticReport(source=source or str(expr))
    report.extend(analyze_expr(expr, context, analyzers))
    return report


def lint_text(text: str, env_types=None, registry=None, source: str = "") -> DiagnosticReport:
    """Parse and lint one textual expression."""
    expr = parse(text)
    return lint_expr(expr, env_types=env_types, registry=registry,
                     source=source or text.strip())


def lint_file(path, env_types=None, registry=None) -> list[DiagnosticReport]:
    """Lint every expression in a plan file.

    Plan files hold one expression per line; blank lines and ``#``
    comments are skipped.  Each expression yields its own report whose
    ``source`` is ``<path>:<lineno>``.
    """
    reports = []
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            reports.append(lint_text(line, env_types=env_types, registry=registry,
                                     source=f"{path}:{lineno}"))
    return reports


# -- the seeded unsafe rewrite ------------------------------------------------


class UnsafeStopAfterPushdown(RewriteRule):
    """The deliberately unsound cut-off pushdown (negative exemplar).

    Rewrites ``topn(x, n)`` over a BAG into ``slice(x, 0, n)`` — "just
    stop after the first n" — which is only licensed when ``x`` is
    ordered descending by the ranking key.  Over an unordered BAG the
    prefix keeps *arbitrary* elements, and ``slice`` is not even
    defined on BAGs; the verifier flags both (MOA201, MOA003/MOA101)
    and the soundness harness fails the rule differentially.
    """

    name = "unsafe-stopafter-pushdown"
    layer = "inter-object"
    safety = "unsafe"

    def apply(self, expr: Apply, context: RuleContext):
        if expr.op != "topn":
            return None
        try:
            values, scalars = expr.split_args(context.env_types, context.registry)
        except Exception:
            return None
        if len(values) != 1 or not isinstance(context.type_of(values[0]), BagType):
            return None
        n = scalars[0] if scalars else None
        if n is None:
            return None
        return Apply("slice", values[0], 0, n)


class UnsafeSelectWidening(RewriteRule):
    """The second seeded unsound rewrite (negative exemplar).

    Snaps a range-select's bounds outward to multiples of ``BUCKET`` —
    "align the selection with the histogram buckets" — which admits
    every element in the widened margins.  The rule *declares itself
    safe* (the lying label): the soundness harness rejects it
    differentially (results gain elements), and the bound-flow
    analyzer rejects it statically — the derived score interval widens
    from ``[lo, hi]`` to the bucket hull, MOA904.
    """

    name = "unsafe-select-widening"
    layer = "logical"
    safety = "safe"  # deliberately wrong: the harness must catch the lie

    BUCKET = 10

    def apply(self, expr: Apply, context: RuleContext):
        if expr.op != "select":
            return None
        try:
            values, scalars = expr.split_args(context.env_types, context.registry)
        except Exception:
            return None
        if len(values) != 1 or len(scalars) != 2:
            return None
        lo, hi = (getattr(s, "value", s) for s in scalars)
        if not all(isinstance(b, (int, float)) and not isinstance(b, bool)
                   for b in (lo, hi)):
            return None
        wide_lo = math.floor(lo / self.BUCKET) * self.BUCKET
        wide_hi = math.ceil(hi / self.BUCKET) * self.BUCKET
        if (wide_lo, wide_hi) == (lo, hi):
            return None  # already bucket-aligned: idempotent
        return Apply("select", values[0], wide_lo, wide_hi)


#: every seeded unsound rewrite the harness and verifier must reject
SEEDED_UNSOUND_RULES = (UnsafeStopAfterPushdown, UnsafeSelectWidening)

#: the expression the demo seeds the unsafe rewrite into: a top-3 over
#: an (unordered) BAG produced by the paper's Example-1 conversion
DEMO_EXPRESSION = "topn(projecttobag([5, 1, 4, 4, 3, 2]), 3)"

#: the expression the widening demo seeds: the paper's Example-1 range
#: select, whose [2, 4] bounds the rule snaps outward to [0, 10]
WIDENING_DEMO_EXPRESSION = "select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)"


@dataclass
class UnsafeDemo:
    """Everything ``repro lint --demo-unsafe`` / ``--demo-widening``
    reports."""

    before: Expr
    after: Expr
    report: DiagnosticReport
    verdict: object  # RuleVerdict
    rule_name: str = UnsafeStopAfterPushdown.name
    note: str = "stop_after pushed below the BAG's topn"

    def render_text(self) -> str:
        lines = [
            "seeded unsafe rewrite: " + self.rule_name,
            f"  before: {self.before}",
            f"  after : {self.after}   ({self.note})",
            "",
            self.report.render_text(),
            "",
            "soundness harness verdict:",
            "  " + self.verdict.describe(),
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_name,
            "before": str(self.before),
            "after": str(self.after),
            "report": self.report.to_dict(),
            "verdict": {
                "rule": self.verdict.rule,
                "declared_safety": self.verdict.declared_safety,
                "passed": self.verdict.passed,
                "exercised": self.verdict.exercised,
                "failures": list(self.verdict.failures),
            },
        }


def _seeded_demo(rule, expression: str, note: str) -> UnsafeDemo:
    """Apply one seeded unsound rule and lint the result."""
    before = parse(expression)
    context = RuleContext()
    after = apply_rule_somewhere(before, rule, context)
    if after is None:
        raise ValueError(f"the seeded unsafe rule does not fire on {expression!r}")
    report = DiagnosticReport(source=f"{before}  =>  {after}")
    report.extend(analyze_expr(after, AnalysisContext()))
    report.extend(check_rewrite_step(before, after, AnalysisContext(), rule=rule))
    verdict = SoundnessHarness().verify_rule(rule)
    return UnsafeDemo(before=before, after=after, report=report,
                      verdict=verdict, rule_name=rule.name, note=note)


def demo_unsafe_rewrite(expression: str = DEMO_EXPRESSION) -> UnsafeDemo:
    """Apply the seeded unsafe stop_after pushdown and lint the result."""
    return _seeded_demo(UnsafeStopAfterPushdown(), expression,
                        "stop_after pushed below the BAG's topn")


def demo_widening_rewrite(expression: str = WIDENING_DEMO_EXPRESSION) -> UnsafeDemo:
    """Apply the seeded select-widening rewrite and lint the result.

    The lint report carries the MOA904 step finding (the derived score
    interval widened), and the harness verdict fails: the rule's
    ``safe`` label does not survive differential testing."""
    return _seeded_demo(UnsafeSelectWidening(), expression,
                        "selection bounds snapped outward to histogram buckets")
