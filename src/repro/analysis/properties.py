"""Static plan properties: what the verifier can prove about a plan.

For every sub-expression the inference computes a
:class:`PlanProperties` record:

* ``stype`` — the static structure type (``None`` when typing fails;
  the type-soundness analyzer reports that separately);
* ``ordered_by`` — ``(key, descending)`` when the output is *provably*
  ordered by a key (produced by ``sort``/``topn``, preserved by
  order-preserving operators).  ``key`` is a field name or ``None``
  for atomic elements.  This is the monotone-score evidence the safe
  top-N classification needs: a prefix cut is safe exactly when its
  input carries such an ordering;
* ``distinct`` — the output is provably duplicate-free;
* ``max_rows`` — a static upper bound on output cardinality
  (``math.inf`` when unknown), used by the cardinality-monotonicity
  checks.

The inference is *conservative*: unknown operators keep every property
unknown; a property is only claimed when the operator semantics
guarantee it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..algebra.expr import Apply, Expr, Literal, ScalarLiteral, Var
from ..algebra.types import ListType, SetType, StructureType
from ..algebra.values import CollectionValue
from .diagnostics import ExprPath

#: operators whose result depends on input element order
ORDER_SENSITIVE_OPS = frozenset({"slice", "getat", "concat", "reverse"})

#: operators that cannot increase cardinality
NON_EXPANDING_OPS = frozenset({
    "select", "sort", "topn", "slice", "project", "projecttobag",
    "projecttoset", "reverse", "intersect", "difference",
})


@dataclass(frozen=True)
class PlanProperties:
    """What is statically provable about one sub-expression."""

    stype: StructureType | None
    ordered_by: tuple | None = None  # (key or None, descending: bool)
    distinct: bool = False
    max_rows: float = math.inf

    @property
    def well_typed(self) -> bool:
        return self.stype is not None

    @property
    def is_ordered_structure(self) -> bool:
        """Does the *type* maintain a well-defined element order?"""
        return self.stype is not None and self.stype.ordered


def _split_scalars(expr: Apply) -> tuple[list[Expr], list]:
    """Best-effort split into (non-scalar children, literal scalars)
    without consulting the registry (works on ill-typed trees too)."""
    children, scalars = [], []
    for arg in expr.args:
        if isinstance(arg, ScalarLiteral):
            scalars.append(arg.value)
        else:
            children.append(arg)
    return children, scalars


def _key_and_rest(scalars: list) -> tuple:
    """(field-name key or None, remaining scalars) by the registry's
    scalar-parameter convention (leading string = field name)."""
    if scalars and isinstance(scalars[0], str):
        return scalars[0], scalars[1:]
    return None, scalars


def infer_properties(
    expr: Expr,
    env_types=None,
    registry=None,
) -> dict[ExprPath, PlanProperties]:
    """Annotate every node of ``expr`` with its static properties,
    keyed by expression path."""
    annotations: dict[ExprPath, PlanProperties] = {}
    _infer(expr, (), env_types or {}, registry, annotations)
    return annotations


def properties_of(expr: Expr, env_types=None, registry=None) -> PlanProperties:
    """The static properties of the expression root."""
    return infer_properties(expr, env_types, registry)[()]


def _static_type(expr: Expr, env_types, registry) -> StructureType | None:
    try:
        return expr.infer_type(env_types, registry)
    except Exception:
        return None


def _infer(expr, path, env_types, registry, annotations) -> PlanProperties:
    children = expr.children()
    child_props = [
        _infer(child, path + (index,), env_types, registry, annotations)
        for index, child in enumerate(children)
    ]
    props = _node_properties(expr, child_props, env_types, registry)
    annotations[path] = props
    return props


def _node_properties(expr, child_props, env_types, registry) -> PlanProperties:
    stype = _static_type(expr, env_types, registry)

    if isinstance(expr, Var):
        distinct = stype is not None and not stype.allows_duplicates
        return PlanProperties(stype=stype, distinct=distinct)

    if isinstance(expr, Literal):
        value = expr.value
        rows = float(value.count) if isinstance(value, CollectionValue) else 1.0
        ordered_by = None
        if (
            isinstance(value, CollectionValue)
            and isinstance(value.stype, ListType)
            and value.is_atomic_elements
        ):
            # literal lists remember sortedness on their BAT
            if value.bat.tail_sorted_desc:
                ordered_by = (None, True)
            elif value.bat.tail_sorted:
                ordered_by = (None, False)
        distinct = stype is not None and not stype.allows_duplicates
        return PlanProperties(stype=stype, ordered_by=ordered_by,
                              distinct=distinct, max_rows=rows)

    if isinstance(expr, ScalarLiteral):
        return PlanProperties(stype=stype, max_rows=1.0)

    if not isinstance(expr, Apply):
        return PlanProperties(stype=stype)

    # scalar children (bounds, counts) do not carry collection
    # properties; the receiver is the first non-scalar child
    value_children = [
        props for child, props in zip(expr.children(), child_props)
        if not isinstance(child, ScalarLiteral)
    ]
    receiver = value_children[0] if value_children else PlanProperties(stype=None)
    _, scalars = _split_scalars(expr)
    op = expr.op

    if op == "select":
        _, bounds = _key_and_rest(scalars)
        max_rows = receiver.max_rows
        if len(bounds) == 2 and None not in bounds:
            try:
                if bounds[0] > bounds[1]:
                    max_rows = 0.0
            except TypeError:
                pass
        return PlanProperties(stype=stype, ordered_by=receiver.ordered_by,
                              distinct=receiver.distinct, max_rows=max_rows)

    if op == "sort":
        key, rest = _key_and_rest(scalars)
        descending = bool(rest[0]) if rest else False
        return PlanProperties(stype=stype, ordered_by=(key, descending),
                              distinct=receiver.distinct, max_rows=receiver.max_rows)

    if op == "topn":
        key, rest = _key_and_rest(scalars)
        descending = bool(rest[1]) if len(rest) > 1 else True
        max_rows = receiver.max_rows
        if rest and isinstance(rest[0], (int, float)):
            max_rows = min(max_rows, max(float(rest[0]), 0.0))
        return PlanProperties(stype=stype, ordered_by=(key, descending),
                              distinct=receiver.distinct, max_rows=max_rows)

    if op == "slice":
        max_rows = receiver.max_rows
        if len(scalars) == 2 and isinstance(scalars[1], (int, float)):
            max_rows = min(max_rows, max(float(scalars[1]), 0.0))
        return PlanProperties(stype=stype, ordered_by=receiver.ordered_by,
                              distinct=receiver.distinct, max_rows=max_rows)

    if op == "reverse":
        ordered_by = None
        if receiver.ordered_by is not None:
            key, descending = receiver.ordered_by
            ordered_by = (key, not descending)
        return PlanProperties(stype=stype, ordered_by=ordered_by,
                              distinct=receiver.distinct, max_rows=receiver.max_rows)

    if op == "projecttobag":
        # content preserving, but "the ordering ... formally does not
        # exist for a bag": the order evidence is forgotten
        return PlanProperties(stype=stype, ordered_by=None,
                              distinct=receiver.distinct, max_rows=receiver.max_rows)

    if op == "projecttoset":
        return PlanProperties(stype=stype, ordered_by=None, distinct=True,
                              max_rows=receiver.max_rows)

    if op == "project":
        key, _ = _key_and_rest(scalars)
        ordered_by = None
        if receiver.ordered_by is not None and receiver.ordered_by[0] == key:
            ordered_by = (None, receiver.ordered_by[1])
        return PlanProperties(stype=stype, ordered_by=ordered_by,
                              max_rows=receiver.max_rows)

    if op in ("concat", "union"):
        total = sum(p.max_rows for p in value_children) if value_children else math.inf
        distinct = (
            isinstance(stype, SetType)
            if stype is not None
            else all(p.distinct for p in value_children)
        )
        return PlanProperties(stype=stype, distinct=distinct, max_rows=total)

    if op in ("intersect", "difference"):
        max_rows = value_children[0].max_rows if value_children else math.inf
        return PlanProperties(stype=stype, distinct=True, max_rows=max_rows)

    if op in ("count", "sum", "avg", "max", "min", "contains", "getat", "getfield"):
        return PlanProperties(stype=stype, max_rows=1.0)

    # unknown operator: claim nothing beyond the type
    return PlanProperties(stype=stype)
