"""Serve-safety analysis: the ``MOA10xx`` family.

The query service multiplies the concurrency surface — every request
crosses from the asyncio loop onto pool threads and back, and every
resume token is a promise about state captured earlier.  This module
holds the service layer to three statically checkable disciplines plus
one runtime diagnostic:

* **MOA1001 — undeclared shared server state.**  Every class in the
  server-side serve modules whose methods mutate instance attributes
  must declare those attributes under the :mod:`repro.sync` protocol
  (``SHARED_STATE`` with a lock name or confinement marker), so
  ``repro check`` and the race sanitizer cover the service like the
  rest of the engine.
* **MOA1002 — resume token redeemed across a corpus epoch** (runtime,
  emitted through :func:`epoch_mismatch_diagnostic` when the registry
  refuses such a resume): an anytime frontier captured at epoch *e*
  certifies bounds only against epoch-*e* scores.
* **MOA1003 — engine work scheduled outside admission.**  Any function
  in the server module that schedules engine work on pool threads
  (``run_in_executor``) must visibly run under an admission: it either
  takes the admission as a parameter or performs ``.admit(...)``
  itself.  A code path that pumps chunks without this is a quota
  bypass.
* **MOA1004 — executor work without a cancel token.**  The same call
  sites must reference the request's :class:`CancelToken` (a ``cancel``
  name or ``cancelled()`` check) — otherwise the deadline a client set
  can never stop the stream.

The AST rules are deliberately syntactic (like the MOA7xx analyzer):
they check that the *discipline is visible in the code shape*, which
is exactly what keeps it reviewable.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .diagnostics import Diagnostic, DiagnosticReport, make_diagnostic

#: serve modules whose objects live on the server side of the socket
#: (client/bench/protocol helpers are caller-confined and out of scope)
SERVER_SIDE_MODULES = ("server.py", "session.py", "tenants.py")

#: attribute writes inside these methods are construction, not sharing
_INIT_METHODS = {"__init__", "__post_init__"}


def serve_root() -> Path:
    """Directory of the installed ``repro.serve`` package."""
    from .. import serve

    return Path(serve.__file__).resolve().parent


def epoch_mismatch_diagnostic(token_epoch: int, current_epoch: int) -> Diagnostic:
    """The MOA1002 finding for one refused cross-epoch resume."""
    return make_diagnostic(
        "MOA1002",
        f"resume token was issued at corpus epoch {token_epoch} but the "
        f"database is now at epoch {current_epoch}; the captured frontier "
        "certifies bounds only against the issuing epoch's scores, so the "
        "stream cannot be continued — re-run the query",
        site="serve.resume",
    )


def check_serve(root=None) -> DiagnosticReport:
    """Run the static MOA1001/1003/1004 rules over the serve package."""
    root = Path(root) if root is not None else serve_root()
    report = DiagnosticReport(source=f"serve {root}")
    for name in SERVER_SIDE_MODULES:
        path = root / name
        if not path.exists():
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        _check_module(tree, path, report)
    return report


def check_serve_paths(paths) -> DiagnosticReport:
    """Explicit-path variant (``repro check <files>``): only listed
    files that are server-side serve modules are analyzed."""
    report = DiagnosticReport(source=", ".join(str(p) for p in paths))
    for raw in paths:
        path = Path(raw)
        candidates = ([p for name in SERVER_SIDE_MODULES
                       for p in [path / name] if p.exists()]
                      if path.is_dir() else
                      [path] if path.name in SERVER_SIDE_MODULES else [])
        for candidate in candidates:
            tree = ast.parse(candidate.read_text(encoding="utf-8"),
                             filename=str(candidate))
            _check_module(tree, candidate, report)
    return report


# -- rule implementations ---------------------------------------------------


def _check_module(tree: ast.Module, path: Path, report: DiagnosticReport) -> None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            _check_class_declarations(node, path, report)
    for func in _functions(tree):
        if not _calls_run_in_executor(func):
            continue
        site = f"{path.name}:{func.lineno}"
        if not _visibly_admitted(func):
            report.add(make_diagnostic(
                "MOA1003",
                f"{func.name!r} schedules engine work via run_in_executor "
                "but neither takes an admission parameter nor calls "
                ".admit(...): work on pool threads must be visibly "
                "covered by tenant and pool admission",
                site=site))
        if not _references_cancel(func):
            report.add(make_diagnostic(
                "MOA1004",
                f"{func.name!r} schedules engine work via run_in_executor "
                "without referencing the request's cancel token: a "
                "client-set deadline could never stop this stream",
                site=site))


def _check_class_declarations(node: ast.ClassDef, path: Path,
                              report: DiagnosticReport) -> None:
    declared = _declared_attrs(node)
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name in _INIT_METHODS:
            continue
        for attr, lineno in _self_writes(method):
            if attr in declared:
                continue
            report.add(make_diagnostic(
                "MOA1001",
                f"{node.name}.{attr} is mutated outside construction but "
                "is not declared in SHARED_STATE: server-side serve state "
                "crosses the event-loop/worker boundary and must carry a "
                "lock name or confinement marker for repro check and the "
                "race sanitizer",
                site=f"{path.name}:{lineno}"))


def _declared_attrs(node: ast.ClassDef) -> set[str]:
    """Names listed in the class's literal ``SHARED_STATE`` dict."""
    declared: set[str] = set()
    for stmt in node.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if (isinstance(target, ast.Name) and target.id == "SHARED_STATE"
                    and isinstance(stmt.value, ast.Dict)):
                for key in stmt.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        declared.add(key.value)
    return declared


def _self_writes(func) -> list[tuple[str, int]]:
    """(attr, line) for every write to ``self.<attr>`` in ``func``,
    including augmented assigns and subscript/container writes."""
    writes: list[tuple[str, int]] = []
    for node in ast.walk(func):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                writes.append((attr, node.lineno))
    return writes


def _self_attr(target) -> str | None:
    if isinstance(target, ast.Subscript):
        target = target.value
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return target.attr
    return None


def _functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _calls_run_in_executor(func) -> bool:
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "run_in_executor"):
            return True
    return False


def _visibly_admitted(func) -> bool:
    args = func.args
    names = [a.arg for a in args.args + args.posonlyargs + args.kwonlyargs]
    if "admission" in names:
        return True
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "admit"):
            return True
    return False


def _references_cancel(func) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and "cancel" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "cancel" in node.attr.lower():
            return True
        if isinstance(node, ast.arg) and "cancel" in node.arg.lower():
            return True
    return False
