"""The rewrite-rule soundness harness: differential rule testing.

Every :class:`~repro.optimizer.rules.RewriteRule` declares a safety
label (``rule.safety``, default ``"safe"``).  The harness *verifies*
the label by differential testing: it generates a corpus of well-typed
expressions over small environments, applies the rule wherever it
fires, evaluates the original and rewritten expressions through
:mod:`repro.algebra.engine`, and asserts

* **safe** rules produce structurally equal results (LIST order, BAG
  multiset, SET set equality — via ``StructureValue.equals``);
* **unsafe** rules (the paper's cut-off family) preserve the result
  *type* and *cardinality* and are measured for element overlap — the
  top-N-prefix agreement contract: an unsafe rule may return different
  elements, never a different shape.

A rule that is never exercised by the corpus fails verification too —
an unexercised safety label is no label at all.  Verified verdicts are
cached per rule class, so the optimizer's ``verify=True`` mode can
consult them cheaply (see :func:`ensure_verified`).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from ..algebra.engine import evaluate
from ..algebra.expr import Apply, Expr, Var, rebuild
from ..algebra.values import CollectionValue, StructureValue, make_bag, make_list, make_set
from ..optimizer.rules import RewriteRule, RuleContext

#: recognized safety labels
SAFETY_LABELS = ("safe", "unsafe")


@dataclass(frozen=True)
class RuleVerdict:
    """The harness's verdict on one rule."""

    rule: str
    layer: str
    declared_safety: str
    exercised: int
    failures: tuple[str, ...] = ()
    #: mean element overlap across exercised cases (1.0 for exact rules)
    mean_overlap: float = 0.0

    @property
    def passed(self) -> bool:
        return self.exercised > 0 and not self.failures

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        detail = f"{self.exercised} case(s), overlap {self.mean_overlap:.2f}"
        if not self.exercised:
            detail = "never exercised by the corpus"
        line = (f"{status}  {self.rule:<32} [{self.layer}] "
                f"declared={self.declared_safety}  {detail}")
        for failure in self.failures[:3]:
            line += f"\n      {failure}"
        if len(self.failures) > 3:
            line += f"\n      ... {len(self.failures) - 3} more failure(s)"
        return line


# -- corpus ------------------------------------------------------------------


def _make_env(rng: random.Random) -> dict:
    n = rng.randint(1, 12)
    values = [rng.randint(-20, 40) for _ in range(n)]
    if rng.random() < 0.5:
        values.sort()
    maker = rng.choice([make_list, make_bag, make_set])
    return {"xs": maker(values)}


def _list_env(rng: random.Random) -> dict:
    n = rng.randint(1, 12)
    values = [rng.randint(-20, 40) for _ in range(n)]
    if rng.random() < 0.5:
        values.sort()
    return {"xs": make_list(values)}


def _bounds(rng: random.Random) -> tuple[int, int]:
    lo, hi = rng.randint(-25, 45), rng.randint(-25, 45)
    return min(lo, hi), max(lo, hi)


#: the one environment variable all corpus cases range over
_VAR = Var("xs")


def _templates(rng: random.Random):
    """Directed expression templates: every default rule of all three
    layers fires on at least one of these shapes."""
    x = Apply  # brevity
    lo, hi = _bounds(rng)
    lo2, hi2 = _bounds(rng)
    n, k = rng.randint(0, 8), rng.randint(0, 8)
    d1, d2 = rng.randint(0, 1), rng.randint(0, 1)
    v = rng.randint(-20, 40)
    yield x("select", x("select", _VAR, lo, hi), lo2, hi2), _make_env(rng)
    yield x("slice", x("slice", x("sort", _VAR, d1), lo2 % 7, hi % 9 + 1), n, k + 1), _make_env(rng)
    yield x("sort", x("sort", _VAR, d1), d1), _make_env(rng)
    yield x("select", x("projecttobag", _VAR), lo, hi), _list_env(rng)
    yield x("select", x("projecttoset", _VAR), lo, hi), _list_env(rng)
    yield x("topn", x("projecttobag", _VAR), n), _list_env(rng)
    yield x("sort", x("projecttobag", _VAR), d1), _list_env(rng)
    yield x("count", x("projecttobag", _VAR)), _list_env(rng)
    yield x("max", x("projecttoset", _VAR)), _list_env(rng)
    yield x("min", x("projecttobag", _VAR)), _list_env(rng)
    yield x("contains", x("projecttobag", _VAR), v), _list_env(rng)
    yield x("slice", x("sort", _VAR, d1), 0, n), _make_env(rng)
    yield x("topn", x("sort", _VAR, d1), n), _make_env(rng)
    yield x("sort", x("topn", _VAR, n, d1), d1), _make_env(rng)
    yield x("topn", x("topn", _VAR, max(n, k), d2), min(n, k), d2), _make_env(rng)


def _random_expr(rng: random.Random, depth: int = 0) -> Expr:
    if depth >= 3 or rng.random() < 0.35:
        return Var("xs")
    child = _random_expr(rng, depth + 1)
    op = rng.choice(["select", "sort", "topn", "projecttobag", "projecttoset"])
    if op == "select":
        lo, hi = _bounds(rng)
        return Apply("select", child, lo, hi)
    if op == "sort":
        return Apply("sort", child, rng.randint(0, 1))
    if op == "topn":
        return Apply("topn", child, rng.randint(0, 8), rng.randint(0, 1))
    return Apply(op, child)


def default_corpus(seed: int = 7, n_random: int = 40, n_template_rounds: int = 4):
    """The deterministic (seeded) differential-testing corpus: several
    rounds of directed templates plus random expression trees."""
    rng = random.Random(seed)
    cases = []
    for _ in range(n_template_rounds):
        for template, env in _templates(rng):
            cases.append((template, env))
    for _ in range(n_random):
        cases.append((_random_expr(rng), _make_env(rng)))
    return cases


# -- differential application -------------------------------------------------


def apply_rule_somewhere(expr: Expr, rule: RewriteRule, context: RuleContext) -> Expr | None:
    """Apply ``rule`` at the first matching node (bottom-up), without
    the rewriter's inline type check — the harness verifies types as
    part of the differential contract instead.  Returns the rewritten
    tree, or ``None`` when the rule fires nowhere."""
    if not isinstance(expr, Apply):
        return None
    for index, child in enumerate(expr.children()):
        new_child = apply_rule_somewhere(child, rule, context)
        if new_child is not None:
            args = list(expr.children())
            args[index] = new_child
            return rebuild(expr, tuple(args))
    replacement = rule.apply(expr, context)
    if replacement is not None and replacement != expr:
        return replacement
    return None


def _elements(value: StructureValue):
    if isinstance(value, CollectionValue):
        # dict elements (tuple collections) are unhashable: canonicalize
        return [
            tuple(sorted(e.items())) if isinstance(e, dict) else e
            for e in value.iter_elements()
        ]
    return [value.to_python()]


def _overlap(a: StructureValue, b: StructureValue) -> float:
    """Multiset overlap fraction of ``b``'s elements against ``a``'s."""
    elems_a, elems_b = Counter(_elements(a)), Counter(_elements(b))
    if not elems_a:
        return 1.0 if not elems_b else 0.0
    shared = sum((elems_a & elems_b).values())
    return shared / max(sum(elems_a.values()), sum(elems_b.values()))


# -- the harness -------------------------------------------------------------


@dataclass
class SoundnessHarness:
    """Differentially verifies rewrite rules against a case corpus."""

    registry: object = None
    seed: int = 7
    cases: list = None
    max_applications: int = 8

    def __post_init__(self) -> None:
        if self.cases is None:
            self.cases = default_corpus(self.seed)

    # -- single-rule verification ----------------------------------------

    def verify_rule(self, rule: RewriteRule) -> RuleVerdict:
        declared = getattr(rule, "safety", "safe")
        exercised = 0
        failures: list[str] = []
        overlaps: list[float] = []
        for expr, env in self.cases:
            env_types = {name: value.stype for name, value in env.items()}
            context = RuleContext(env_types=env_types)
            if self.registry is not None:
                context.registry = self.registry
            if not _well_typed(expr, context):
                continue
            try:
                rewritten = self._apply_to_fixpoint(expr, rule, context)
            except Exception as exc:
                exercised += 1
                failures.append(f"{expr}: rule raised {type(exc).__name__}: {exc}")
                continue
            if rewritten is None:
                continue
            exercised += 1
            failure, overlap = self._compare(expr, rewritten, env, context, declared)
            if failure is not None:
                failures.append(failure)
            if overlap is not None:
                overlaps.append(overlap)
        mean_overlap = sum(overlaps) / len(overlaps) if overlaps else 0.0
        return RuleVerdict(
            rule=rule.name, layer=rule.layer, declared_safety=declared,
            exercised=exercised, failures=tuple(failures), mean_overlap=mean_overlap,
        )

    def verify_rules(self, rules) -> dict[str, RuleVerdict]:
        """Verdicts for a rule list, keyed by rule name."""
        return {rule.name: self.verify_rule(rule) for rule in rules}

    # -- internals ---------------------------------------------------------

    def _apply_to_fixpoint(self, expr, rule, context):
        current, applied = expr, 0
        while applied < self.max_applications:
            rewritten = apply_rule_somewhere(current, rule, context)
            if rewritten is None:
                return current if applied else None
            current = rewritten
            applied += 1
        raise RuntimeError(
            f"rule did not reach a fixpoint within {self.max_applications} "
            f"applications (cyclic rule?)"
        )

    def _compare(self, expr, rewritten, env, context, declared):
        """(failure message or None, overlap or None) for one case."""
        try:
            type_after = context.type_of(rewritten)
        except Exception as exc:
            return (f"{expr} => {rewritten}: rewritten expression is "
                    f"ill-typed ({type(exc).__name__}: {exc})"), None
        type_before = context.type_of(expr)
        if type_before != type_after:
            return (f"{expr} => {rewritten}: result type changed "
                    f"{type_before} -> {type_after}"), None

        status_a, value_a = _eval_or_error(expr, env)
        status_b, value_b = _eval_or_error(rewritten, env)
        if status_a == "error":
            # the rewrite may legitimately have removed the failing work;
            # it must never *introduce* a failure, checked below
            return None, None
        if status_b == "error":
            return (f"{expr} => {rewritten}: rewritten plan failed "
                    f"({value_b}) where the original succeeded"), None

        overlap = _overlap(value_a, value_b)
        if declared == "safe":
            if not value_a.equals(value_b):
                return (f"{expr} => {rewritten}: results differ "
                        f"({value_a.to_python()} != {value_b.to_python()})"), overlap
            return None, overlap
        # unsafe contract: same shape (type already checked), same
        # cardinality; element membership may differ (overlap recorded)
        len_a = value_a.count if isinstance(value_a, CollectionValue) else 1
        len_b = value_b.count if isinstance(value_b, CollectionValue) else 1
        if len_a != len_b:
            return (f"{expr} => {rewritten}: unsafe rule changed the result "
                    f"cardinality {len_a} -> {len_b}"), overlap
        return None, overlap


def _well_typed(expr, context) -> bool:
    try:
        context.type_of(expr)
        return True
    except Exception:
        return False


def _eval_or_error(expr, env):
    try:
        return "ok", evaluate(expr, env)
    except Exception as exc:
        return "error", f"{type(exc).__name__}: {exc}"


# -- verified-label cache -----------------------------------------------------

_VERIFIED: dict[tuple, RuleVerdict] = {}


def _rule_key(rule: RewriteRule) -> tuple:
    cls = type(rule)
    return (cls.__module__, cls.__qualname__, rule.name)


def verified_verdict(rule: RewriteRule, harness: SoundnessHarness | None = None) -> RuleVerdict:
    """The cached harness verdict for ``rule`` (computed on first use)."""
    key = _rule_key(rule)
    if key not in _VERIFIED:
        _VERIFIED[key] = (harness or SoundnessHarness()).verify_rule(rule)
    return _VERIFIED[key]


def ensure_verified(rules, harness: SoundnessHarness | None = None) -> dict[str, RuleVerdict]:
    """Verified verdicts for a rule list, keyed by rule name (cached)."""
    return {rule.name: verified_verdict(rule, harness) for rule in rules}


def clear_verified_cache() -> None:
    """Drop cached verdicts (tests use private registries/rules)."""
    _VERIFIED.clear()
