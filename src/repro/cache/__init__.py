"""Multi-level query cache: results, resumable top-N state, bounds.

Blok lists reuse of earlier work as a first-class top-N optimization
issue: the same query re-asked should cost (almost) nothing, and a
top-100 following a top-10 should *continue*, not restart.  This
package provides the three cache levels the reproduction layers over
one fingerprint space:

* **Result cache** (:class:`QueryCache`): canonical query fingerprints
  (:mod:`~repro.cache.fingerprint`) map to cached
  :class:`~repro.topn.result.TopNResult` objects; a top-``n`` is
  answered from a cached top-``m`` (``m >= n``) when the producing
  engine is prefix-safe.
* **Resume state** (:mod:`~repro.cache.resume`): TA frontier
  snapshots, NRA/CA access-replay logs, and quit/continue accumulator
  snapshots — each certified equivalent to a cold run by the mechanism
  its engine can support.
* **Bound cache** (:mod:`~repro.cache.bounds`): per-shard thresholds
  from certified parallel runs seed the coordinator's round-1/round-2
  pruning on later, deeper runs of the same query.

Invalidation is by corpus epoch: every fingerprint embeds the owning
database's epoch, which is bumped on any mutation that can change
scores, so stale entries can never hit (and are garbage-collected).
"""

from ..intervals import ThresholdBound
from .bounds import CoordinatorBounds, ShardBoundInfo
from .fingerprint import (
    QueryFingerprint,
    source_token,
    sources_fingerprint,
    text_fingerprint,
)
from .manager import CacheEntry, QueryCache
from .resume import (
    AccumulatorResumeState,
    ReplayLog,
    ReplaySource,
    TAResumeState,
    replayed_total,
    wrap_sources,
)

__all__ = [
    "AccumulatorResumeState",
    "CacheEntry",
    "CoordinatorBounds",
    "QueryCache",
    "QueryFingerprint",
    "ReplayLog",
    "ReplaySource",
    "ShardBoundInfo",
    "TAResumeState",
    "ThresholdBound",
    "replayed_total",
    "source_token",
    "sources_fingerprint",
    "text_fingerprint",
    "wrap_sources",
]
