"""The ``repro bench-cache`` harness.

Builds one synthetic database and measures the two reuses the cache
subsystem promises (always verifying — a warm answer that differs from
cold is a defect, never a statistic):

* **cold vs warm repeat** — a query batch runs cold, then again with
  the cache enabled; the warm pass must charge (almost) no simulated
  work and return element-for-element identical rankings;
* **top-10 → top-100 resume** — each engine answers top-``n`` cold,
  then top-``resume_n`` by resuming (TA frontier, NRA/CA access
  replay, quit/continue accumulator snapshot); the resumed run is
  compared against a cold top-``resume_n`` on a fresh database for
  both cost and exact equality.

"Charged ops" sums everything the simulated cost model bills: page
reads, buffer hits and tuple reads on the storage side, sorted and
random accesses on the Fagin-source side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..storage.stats import CostCounter

#: engines exercised by the resume scenario
RESUME_ENGINES = ("ta", "nra", "ca")


def charged_ops(cost: CostCounter) -> int:
    """Everything the simulated cost model billed for one run."""
    return (cost.page_reads + cost.buffer_hits + cost.tuples_read
            + cost.sorted_accesses + cost.random_accesses)


@dataclass
class BenchRow:
    """Cold-vs-warm measurements for one scenario."""

    label: str
    queries: int
    seconds_cold: float
    seconds_warm: float
    charged_cold: int
    charged_warm: int
    #: answers that differed from the cold reference (must stay 0)
    mismatches: int = 0
    #: cache counter deltas attributable to the warm pass
    hits: int = 0
    resumes: int = 0

    @property
    def reduction(self) -> float:
        """Charged-ops reduction factor cold / warm (inf when the warm
        pass charged nothing at all)."""
        if self.charged_warm == 0:
            return float("inf")
        return self.charged_cold / self.charged_warm

    def to_dict(self) -> dict:
        out = dict(self.__dict__)
        # null, not Infinity: the latter is not valid JSON
        out["reduction"] = (None if self.charged_warm == 0 else self.reduction)
        return out


@dataclass
class BenchCacheReport:
    """Everything ``repro bench-cache`` prints."""

    n: int
    resume_n: int
    rows: list[BenchRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every warm answer matched cold, warm repeats cut charged ops
        at least 5x, and every resume charged less than its cold run."""
        for row in self.rows:
            if row.mismatches:
                return False
            if row.label.endswith("warm-repeat") and row.reduction < 5.0:
                return False
            if row.label.endswith("resume") and row.charged_warm >= row.charged_cold:
                return False
        return True

    def to_dict(self) -> dict:
        return {"n": self.n, "resume_n": self.resume_n, "ok": self.ok,
                "rows": [row.to_dict() for row in self.rows]}


def _ranking_equal(reference, candidate) -> bool:
    """Tie-aware identity: same ids in the same order, same scores."""
    return (reference.doc_ids == candidate.doc_ids
            and reference.scores == candidate.scores)


def _build(collection, features, cache: bool):
    from ..core import DatabaseConfig, MMDatabase

    db = MMDatabase.from_collection(
        collection, DatabaseConfig(cache_enabled=cache))
    for space in features:
        db.add_feature_space(space)
    return db


def bench_cache(
    scale: float = 0.05,
    seed: int = 7,
    queries: int = 10,
    n: int = 10,
    resume_n: int = 100,
    dims: int = 8,
) -> BenchCacheReport:
    """Run the comparison; see the module docstring."""
    from ..mm.features import FeatureSpace
    from ..topn.quit_continue import quit_continue_topn
    from ..workloads import SyntheticCollection, generate_queries, trec

    if resume_n <= n:
        resume_n = max(n + 1, 10 * n)
    collection = SyntheticCollection.generate(trec.ft_like(scale=scale, seed=seed))
    rng = np.random.default_rng(seed + 2)
    features = [FeatureSpace("bench_a", rng.random((collection.n_docs, dims))),
                FeatureSpace("bench_b", rng.random((collection.n_docs, dims)))]
    # two-source queries: the Fagin engines degenerate over one source
    feature_queries = [{"bench_a": rng.random(dims), "bench_b": rng.random(dims)}
                       for _ in range(max(1, queries // 2))]
    batch = generate_queries(collection, n_queries=queries,
                             terms_range=(2, 6), rare_bias=2.0, seed=seed + 1)
    tid_lists = [list(query.term_ids) for query in batch]

    report = BenchCacheReport(n=n, resume_n=resume_n)

    # -- cold vs warm repeat over the text batch ---------------------------
    db = _build(collection, features, cache=True)
    cold_results = []
    started = time.perf_counter()
    with CostCounter.activate() as cost:
        for tids in tid_lists:
            cold_results.append(db.search(tids, n=n).result)
    row = BenchRow(label="text-warm-repeat", queries=len(tid_lists),
                   seconds_cold=time.perf_counter() - started,
                   seconds_warm=0.0, charged_cold=charged_ops(cost),
                   charged_warm=0)
    before = db.cache.counters()
    started = time.perf_counter()
    with CostCounter.activate() as cost:
        for tids, cold in zip(tid_lists, cold_results):
            warm = db.search(tids, n=n).result
            if not _ranking_equal(cold, warm):
                row.mismatches += 1
    row.seconds_warm = time.perf_counter() - started
    row.charged_warm = charged_ops(cost)
    row.hits = db.cache.counters()["hits"] - before["hits"]
    report.rows.append(row)

    # -- cold vs warm repeat over the feature batch ------------------------
    for algorithm in ("fa",) + RESUME_ENGINES:
        db = _build(collection, features, cache=True)
        cold_results = []
        started = time.perf_counter()
        with CostCounter.activate() as cost:
            for fq in feature_queries:
                cold_results.append(
                    db.feature_search(fq, n=n, algorithm=algorithm).result)
        row = BenchRow(label=f"{algorithm}-warm-repeat",
                       queries=len(feature_queries),
                       seconds_cold=time.perf_counter() - started,
                       seconds_warm=0.0, charged_cold=charged_ops(cost),
                       charged_warm=0)
        before = db.cache.counters()
        started = time.perf_counter()
        with CostCounter.activate() as cost:
            for fq, cold in zip(feature_queries, cold_results):
                warm = db.feature_search(fq, n=n, algorithm=algorithm).result
                if not _ranking_equal(cold, warm):
                    row.mismatches += 1
        row.seconds_warm = time.perf_counter() - started
        row.charged_warm = charged_ops(cost)
        row.hits = db.cache.counters()["hits"] - before["hits"]
        report.rows.append(row)

    # -- top-n -> top-resume_n resume, per engine --------------------------
    for algorithm in RESUME_ENGINES:
        # the cold reference runs on a fresh, cache-less database
        cold_db = _build(collection, features, cache=False)
        cold_deep = []
        started = time.perf_counter()
        with CostCounter.activate() as cost:
            for fq in feature_queries:
                cold_deep.append(
                    cold_db.feature_search(fq, n=resume_n,
                                           algorithm=algorithm).result)
        row = BenchRow(label=f"{algorithm}-resume", queries=len(feature_queries),
                       seconds_cold=time.perf_counter() - started,
                       seconds_warm=0.0, charged_cold=charged_ops(cost),
                       charged_warm=0)
        db = _build(collection, features, cache=True)
        for fq in feature_queries:  # seed the shallow runs (uncounted)
            db.feature_search(fq, n=n, algorithm=algorithm)
        before = db.cache.counters()
        started = time.perf_counter()
        with CostCounter.activate() as cost:
            for fq, cold in zip(feature_queries, cold_deep):
                resumed = db.feature_search(fq, n=resume_n,
                                            algorithm=algorithm).result
                if not _ranking_equal(cold, resumed):
                    row.mismatches += 1
        row.seconds_warm = time.perf_counter() - started
        row.charged_warm = charged_ops(cost)
        row.resumes = db.cache.counters()["resumes"] - before["resumes"]
        report.rows.append(row)

    # -- quit/continue accumulator resume ----------------------------------
    db = _build(collection, features, cache=False)
    qc_lists = [tids for tids in tid_lists if tids][: max(1, queries // 2)]
    cold_deep = []
    started = time.perf_counter()
    with CostCounter.activate() as cost:
        for tids in qc_lists:
            cold_deep.append(quit_continue_topn(
                db.index, tids, db.model, resume_n, strategy="continue"))
    row = BenchRow(label="qc-resume", queries=len(qc_lists),
                   seconds_cold=time.perf_counter() - started,
                   seconds_warm=0.0, charged_cold=charged_ops(cost),
                   charged_warm=0)
    states = []
    for tids in qc_lists:  # shallow runs capture the accumulator (uncounted)
        shallow = quit_continue_topn(db.index, tids, db.model, n,
                                     strategy="continue", capture_state=True)
        states.append(shallow.stats["resume_state"])
    started = time.perf_counter()
    with CostCounter.activate() as cost:
        for tids, state, cold in zip(qc_lists, states, cold_deep):
            resumed = quit_continue_topn(db.index, tids, db.model, resume_n,
                                         strategy="continue", resume_from=state)
            if not _ranking_equal(cold, resumed):
                row.mismatches += 1
    row.seconds_warm = time.perf_counter() - started
    row.charged_warm = charged_ops(cost)
    row.resumes = len(qc_lists)
    report.rows.append(row)

    return report
