"""Threshold/bound cache for the parallel top-N coordinator.

The TPUT-style coordinator spends its round-1 budget asking *every*
shard for a candidate prefix, then prunes shards whose best remaining
item cannot beat the running n-th-best key.  A previous certified run
of the same fingerprint already measured two reusable facts:

* the final **merge threshold** ``τ(n)`` — the sort key of the n-th
  result.  On identical data (same fingerprint ⇒ same corpus epoch and
  shard layout) the key ordering gives ``τ_key(n) ≤ τ_key(n_c)`` for
  any ``n ≤ n_c``, so any cached ``τ_key(n_c)`` with ``n_c ≥ n`` is a
  sound *upper bound* (in key order, lower is better) on this run's
  final threshold;
* each shard's **best item key** and, when a shard was fully drained,
  its complete local ranking.

A shard whose cached best key is strictly worse than a sound threshold
bound cannot contribute to the top-``n`` — the coordinator skips its
round-1 probe outright (``bound_pruned``).  A shard with a cached
complete ranking is served from the cache without scheduling its
evaluator at all (``bound_served``).  Both prunings preserve the
coordinator's certification argument: a pruned shard is *provably*
below the final threshold, a served shard is exhausted by construction.

Thresholds are stored as the shared
:class:`~repro.intervals.ThresholdBound` dataclass — the same record
the bound-flow analyzer's ``BoundSeedDeclaration`` certifies — stamped
with the corpus epoch they were measured at.  Reuse at a different
epoch is unsound (scores may have changed under mutation); the
:meth:`CoordinatorBounds.seedable_at` gate is the runtime twin of the
static MOA905 check, and recording at a new epoch purges every stale
fact first.

All state is lock-guarded: the bound cache is shared through the query
cache and may be read by concurrent coordinated runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..intervals import ThresholdBound
from ..sync import declares_shared_state, make_lock


@dataclass(frozen=True)
class ShardBoundInfo:
    """What a previous run learned about one shard."""

    shard_id: int
    #: sort key ``(-score, obj_id)`` of the shard's best item; ``None``
    #: for an empty shard (which is trivially prunable)
    top_key: tuple | None
    #: total candidates the shard holds for this fingerprint
    candidates: int
    #: True when the previous run drained the shard completely
    exhausted: bool
    #: the full local ranking ``((obj, score), ...)`` — only retained
    #: when ``exhausted`` and every candidate was shipped, so the cached
    #: answer is valid for *any* requested depth
    ranking: tuple | None = None


@declares_shared_state
class CoordinatorBounds:
    """Per-fingerprint shard bound cache (lives inside a cache entry)."""

    SHARED_STATE = {
        "epoch": "_lock",
        "tau_by_n": "_lock",
        "shards": "_lock",
    }

    def __init__(self, epoch: int = 0) -> None:
        self._lock = make_lock("cache.bounds")
        #: corpus epoch every stored fact was measured at
        self.epoch = epoch
        #: recorded final merge thresholds: n -> ThresholdBound record
        self.tau_by_n: dict[int, ThresholdBound] = {}
        #: shard_id -> ShardBoundInfo
        self.shards: dict[int, ShardBoundInfo] = {}

    def seedable_at(self, epoch: int) -> bool:
        """Whether the stored facts may seed a run at ``epoch``.

        The runtime twin of the static MOA905 check: bounds measured
        at a different corpus epoch may not seed pruning (scores can
        change under mutation).  An empty cache is trivially seedable.
        """
        with self._lock:
            if not self.tau_by_n and not self.shards:
                return True
            return self.epoch == epoch

    def record(self, n: int, tau_key: tuple | None, infos,
               epoch: int | None = None) -> None:
        """Store the outcome of one *certified* run at depth ``n``.

        ``tau_key`` is the key of the n-th merged item (``None`` when the
        corpus holds fewer than ``n`` candidates — nothing to prune by).
        Shard infos replace older observations for the same shard only
        when they are at least as informative (an exhausted observation
        is never downgraded to a partial one).  Recording at a *newer*
        epoch first purges every fact from the old epoch — stale bounds
        must never outlive the data they were measured on.
        """
        with self._lock:
            if epoch is not None and epoch != self.epoch:
                self.tau_by_n.clear()
                self.shards.clear()
                self.epoch = epoch
            if tau_key is not None:
                self.tau_by_n[n] = ThresholdBound(n=n, key=tau_key,
                                                  epoch=self.epoch)
            for info in infos:
                old = self.shards.get(info.shard_id)
                if old is not None and old.exhausted and not info.exhausted:
                    continue
                self.shards[info.shard_id] = info

    def threshold_bound(self, n: int, epoch: int | None = None) -> tuple | None:
        """Tightest sound bound on this run's final ``τ_key(n)``:
        the best (smallest) cached ``τ_key(n_c)`` over ``n_c ≥ n``.
        With ``epoch`` given, facts from another epoch yield ``None``."""
        with self._lock:
            if epoch is not None and self.tau_by_n and self.epoch != epoch:
                return None
            keys = [bound.key for n_c, bound in self.tau_by_n.items()
                    if n_c >= n]
        return min(keys) if keys else None

    def threshold_records(self) -> tuple[ThresholdBound, ...]:
        """Every stored threshold as the shared epoch-stamped record
        (what the analyzer's ``BoundSeedDeclaration`` certifies)."""
        with self._lock:
            return tuple(sorted(self.tau_by_n.values(), key=lambda b: b.n))

    def prunable_shards(self, n: int, epoch: int | None = None) -> set[int]:
        """Shards provably unable to contribute to the top-``n``:
        cached best key strictly worse than the threshold bound (or the
        shard is known empty).  With ``epoch`` given, an epoch mismatch
        prunes nothing."""
        if epoch is not None and not self.seedable_at(epoch):
            return set()
        bound = self.threshold_bound(n, epoch=epoch)
        with self._lock:
            out = set()
            for shard_id, info in self.shards.items():
                if info.top_key is None and info.exhausted:
                    out.add(shard_id)
                elif bound is not None and info.top_key is not None \
                        and info.top_key > bound:
                    out.add(shard_id)
            return out

    def complete_ranking(self, shard_id: int) -> tuple | None:
        """The shard's cached full local ranking, if one was retained."""
        with self._lock:
            info = self.shards.get(shard_id)
        if info is not None and info.exhausted and info.ranking is not None:
            return info.ranking
        return None

    def snapshot(self) -> dict:
        """JSON-able view (for diagnostics and the bench CLI)."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "tau_by_n": {n: bound.to_dict()
                             for n, bound in self.tau_by_n.items()},
                "shards": {
                    shard_id: {
                        "top_key": list(info.top_key) if info.top_key else None,
                        "candidates": info.candidates,
                        "exhausted": info.exhausted,
                        "has_ranking": info.ranking is not None,
                    }
                    for shard_id, info in self.shards.items()
                },
            }
