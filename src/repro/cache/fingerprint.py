"""Canonical query fingerprints: the cache key discipline.

A cached answer may only be reused when the *whole* evaluation context
matches, not just the query text.  The fingerprint therefore canonically
encodes every input the engines read:

* the query **terms** (term ids, sorted — naive scoring is a sum over
  terms, so term order is irrelevant; duplicates are kept because a
  repeated term contributes twice) or, for middleware queries, one
  stable **token per graded source** (a posting-list source is
  identified by its term id and model; an array source by a content
  hash of its grade vector);
* the **aggregate** / scoring model combining the sources;
* the **fragment set** the strategy reads (an unsafe fragment-restricted
  answer must never serve an unfragmented query);
* the **shard layout** (a parallel answer is tied to its boundaries:
  per-shard bound caches are meaningless under a different split);
* the **corpus epoch** — a counter the database bumps on every mutation
  that can change scores (ingest, fragmentation, sharding, attribute or
  feature registration).  Stale epochs never collide with fresh ones,
  so invalidation is by construction, not by search.

``n`` is deliberately *not* part of the fingerprint: the whole point of
the result cache is answering top-``n`` from a cached top-``m``, and
the bound cache reuses thresholds across depths.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


def _token(value) -> str:
    """Render one key component deterministically."""
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(_token(v) for v in value) + ")"
    return repr(value)


@dataclass(frozen=True)
class QueryFingerprint:
    """The canonical cache key of one query, minus its ``n``."""

    #: query flavour: ``text`` / ``feature`` / ``parallel`` / ``combined``
    kind: str
    #: sorted term ids, or per-source identity tokens (order preserved
    #: for sources: weighted aggregates are not symmetric)
    terms: tuple
    #: aggregate or scoring-model name (``sum`` / ``bm25`` / ...)
    aggregate: str
    #: fragment signature of the executing strategy (empty = whole index)
    fragments: tuple = ()
    #: document-range shard boundaries (empty = serial)
    shard_layout: tuple = ()
    #: corpus epoch the entry was built at
    epoch: int = 0
    #: anything else reuse must agree on (strategy name, measure, ...)
    extra: tuple = field(default=())

    def digest(self) -> str:
        """Stable hex digest used as the storage key."""
        payload = "|".join((
            self.kind,
            _token(self.terms),
            self.aggregate,
            _token(self.fragments),
            _token(self.shard_layout),
            str(self.epoch),
            _token(self.extra),
        ))
        return hashlib.sha1(payload.encode()).hexdigest()

    def describe(self) -> dict:
        """JSON-able key breakdown (for diagnostics and the CLI)."""
        return {
            "kind": self.kind,
            "terms": list(self.terms),
            "aggregate": self.aggregate,
            "fragments": list(self.fragments),
            "shard_layout": list(self.shard_layout),
            "epoch": self.epoch,
            "extra": list(self.extra),
            "digest": self.digest(),
        }


def source_token(source) -> tuple:
    """A stable identity token for one graded score source.

    Posting-list sources are content-addressed by ``(term id, model)``
    — their grades are a pure function of the index and the model, and
    the index's identity is already covered by the corpus epoch.  Dense
    array sources (feature similarities) hash their grade vector: two
    feature queries only share cache state when their score arrays are
    bit-identical.
    """
    tid = getattr(source, "tid", None)
    if tid is not None:
        model = getattr(source, "model", None)
        return ("term", int(tid), getattr(model, "name", str(model)))
    scores = getattr(source, "_scores", None)
    if scores is not None:
        content = hashlib.sha1(scores.tobytes()).hexdigest()[:16]
        return ("array", getattr(source, "name", "array"), content)
    return ("source", getattr(source, "name", repr(source)))


def text_fingerprint(tids, model_name: str, epoch: int, strategy: str = "naive",
                     fragments: tuple = (), shard_layout: tuple = ()) -> QueryFingerprint:
    """Fingerprint of a text top-N query (term ids + ranking model)."""
    return QueryFingerprint(
        kind="text",
        terms=tuple(sorted(int(t) for t in tids)),
        aggregate=model_name,
        fragments=tuple(fragments),
        shard_layout=tuple(shard_layout),
        epoch=epoch,
        extra=("strategy", strategy),
    )


def sources_fingerprint(sources, agg_name: str, epoch: int, algorithm: str,
                        kind: str = "feature") -> QueryFingerprint:
    """Fingerprint of a middleware (Fagin-family) multi-source query."""
    return QueryFingerprint(
        kind=kind,
        terms=tuple(source_token(source) for source in sources),
        aggregate=agg_name,
        epoch=epoch,
        extra=("algorithm", algorithm),
    )
