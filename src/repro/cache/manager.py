"""The query cache: fingerprint-keyed results, resume state, and bounds.

One :class:`QueryCache` holds an LRU map of :class:`CacheEntry` objects,
keyed by the fingerprint digest.  Each entry can carry, independently:

* exact answers per requested depth (``results[n]``);
* a resume payload (TA frontier, quit/continue accumulator, or NRA/CA
  replay logs);
* a :class:`~repro.cache.bounds.CoordinatorBounds` for parallel runs.

Serving discipline
------------------
A top-``n`` request is served from a cached top-``m`` (``m ≥ n``) only
when the entry is **prefix-safe**: the engine's reported scores must
not depend on its stopping depth.  That holds for the exact engines
(naive, FA, TA, the certified parallel merge — they return true scores
of the true top-N, so any prefix of a deeper answer *is* the shallower
answer) and for quit/continue (the accumulator is depth-independent and
the tail cut is deterministic).  It does **not** hold for NRA/CA, whose
reported lower bounds tighten with depth — those entries serve exact-
``n`` repeats only, and deeper requests go through access replay, which
re-executes the cold algorithm verbatim on memoized sources.

Entries whose ``complete`` flag is set hold the full corpus ranking
(the producing run drained every source), so they serve *any* ``n``.

Concurrency: the entry map and all counters are guarded by ``_lock``
under the ``repro.sync`` protocol; entries hand out immutable items
(:class:`~repro.topn.result.RankedItem` is frozen) and their mutable
payloads (replay logs, bounds) carry their own locks.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

from ..obs import metrics as _metrics
from ..sync import declares_shared_state, make_lock
from ..topn.result import TopNResult
from .fingerprint import QueryFingerprint

#: module-level registry of live caches, so ``metrics.reset()`` (and
#: therefore ``repro profile``) can zero hit/miss counters everywhere.
#: Populated at construction (single-threaded setup); weak so dropped
#: caches vanish.
_instances: "weakref.WeakSet[QueryCache]" = weakref.WeakSet()

SHARED_STATE = {
    "_instances": "<config>",
}


def _reset_all_counters() -> None:
    for cache in list(_instances):
        cache.reset_counters()


_metrics.add_reset_hook(_reset_all_counters)


@dataclass
class CacheEntry:
    """Everything cached for one query fingerprint.

    Plain data: every read and write happens under the owning
    :class:`QueryCache`'s lock (payload objects carry their own locks
    for use after hand-out).
    """

    fingerprint: QueryFingerprint
    #: exact answers by requested depth
    results: dict = field(default_factory=dict)
    #: True when any cached top-m answers any top-n with n ≤ m
    prefix_safe: bool = True
    #: True when a cached answer covers the entire candidate set
    complete: bool = False
    #: TAResumeState / AccumulatorResumeState, engine-dependent
    resume: object = None
    #: per-source ReplayLog list for NRA/CA access replay
    replay_logs: list | None = None
    #: CoordinatorBounds for parallel fingerprints
    bounds: object = None
    #: free-form reuse hints (e.g. recorded stop depth per n)
    hints: dict = field(default_factory=dict)

    def best_n(self) -> int:
        return max(self.results) if self.results else 0


def _served(cached: TopNResult, n: int, mode: str) -> TopNResult:
    """Re-wrap a cached answer (or its prefix) for a top-``n`` request."""
    stats = dict(cached.stats)
    stats["cache"] = mode
    stats["cache_source_n"] = cached.n_requested
    return TopNResult(
        items=list(cached.items[:n]),
        n_requested=n,
        strategy=cached.strategy,
        safe=cached.safe,
        stats=stats,
        certified=cached.certified,
    )


@declares_shared_state
class QueryCache:
    """LRU cache of query fingerprints → answers, resume state, bounds."""

    SHARED_STATE = {
        "_entries": "_lock",
        "hits": "_lock",
        "misses": "_lock",
        "resumes": "_lock",
        "stores": "_lock",
        "evictions": "_lock",
        "invalidations": "_lock",
    }

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            max_entries = 1
        self.max_entries = max_entries
        self._lock = make_lock("cache.query")
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.resumes = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        _instances.add(self)

    # -- lookup ------------------------------------------------------------

    def lookup(self, fingerprint: QueryFingerprint, n: int):
        """Try to answer top-``n`` from cache.

        Returns ``(result, entry)``: ``result`` is a served
        :class:`TopNResult` on a hit (counted), else ``None`` (counted
        as a miss); ``entry`` is the fingerprint's entry when one exists
        — a miss with an entry is the resume opportunity the caller
        should inspect (frontier / replay logs / bounds).
        """
        digest = fingerprint.digest()
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
            result = self._serve_locked(entry, n) if entry is not None else None
            if result is not None:
                self.hits += 1
            else:
                self.misses += 1
        if result is not None:
            _metrics.inc("cache.hits")
        else:
            _metrics.inc("cache.misses")
        return result, entry

    def peek(self, fingerprint: QueryFingerprint, n: int):
        """Would :meth:`lookup` hit for top-``n``?  Same serving rules,
        but *nothing is counted* and the LRU order is untouched — for
        planners (the adaptive chooser enumerates a ``cached``
        candidate per query) that must not distort the hit/miss
        statistics of queries that are never actually served."""
        with self._lock:
            entry = self._entries.get(fingerprint.digest())
            result = self._serve_locked(entry, n) if entry is not None else None
        return result, entry

    def _serve_locked(self, entry: CacheEntry, n: int):
        if n in entry.results:
            return _served(entry.results[n], n, "hit")
        if entry.complete and entry.results:
            deepest = entry.results[entry.best_n()]
            return _served(deepest, n, "hit-complete")
        if entry.prefix_safe:
            covering = [m for m in entry.results if m >= n]
            if covering:
                return _served(entry.results[min(covering)], n, "hit-prefix")
        return None

    # -- store -------------------------------------------------------------

    def store(self, fingerprint: QueryFingerprint, n: int,
              result: TopNResult | None = None, *,
              prefix_safe: bool = True, complete: bool = False,
              resume: object = None, replay_logs: list | None = None,
              bounds: object = None, hints: dict | None = None) -> CacheEntry:
        """Record a fresh (not cache-served) outcome for ``fingerprint``.

        Only pass results computed cold or by certified resume — the
        callers never re-store served answers.  ``prefix_safe=False``
        demotes the whole entry (one depth-dependent answer poisons
        prefix serving for the fingerprint).
        """
        digest = fingerprint.digest()
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                entry = CacheEntry(fingerprint=fingerprint)
                self._entries[digest] = entry
            self._entries.move_to_end(digest)
            if result is not None:
                entry.results[n] = result
            if not prefix_safe:
                entry.prefix_safe = False
            if complete:
                entry.complete = True
            if resume is not None:
                entry.resume = resume
            if replay_logs is not None:
                entry.replay_logs = replay_logs
            if bounds is not None:
                entry.bounds = bounds
            if hints:
                entry.hints.update(hints)
            self.stores += 1
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        _metrics.inc("cache.stores")
        if evicted:
            _metrics.inc("cache.evictions", evicted)
        return entry

    def note_resume(self) -> None:
        """Count one answer produced by resuming cached state."""
        with self._lock:
            self.resumes += 1
        _metrics.inc("cache.resumes")

    # -- invalidation ------------------------------------------------------

    def invalidate_below_epoch(self, epoch: int) -> int:
        """Drop entries built at an earlier corpus epoch.

        Stale entries can never *hit* (the epoch is part of the key),
        so this is garbage collection, not correctness — called on
        every epoch bump to keep the LRU from carrying dead weight.
        """
        with self._lock:
            stale = [digest for digest, entry in self._entries.items()
                     if entry.fingerprint.epoch < epoch]
            for digest in stale:
                del self._entries[digest]
            self.invalidations += len(stale)
        if stale:
            _metrics.inc("cache.invalidations", len(stale))
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def counters(self) -> dict:
        """Snapshot of the cache-effectiveness counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "resumes": self.resumes,
                "stores": self.stores,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    def reset_counters(self) -> None:
        """Zero the effectiveness counters (cached data is kept)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.resumes = 0
            self.stores = 0
            self.evictions = 0
            self.invalidations = 0
