"""Resumable top-N state: continue a top-``m`` from a cached top-``n`` run.

Blok's "incremental (continue) evaluation" issue: the user who asked
for the top 10 comes back for the top 100, and the follow-up should
*continue* from the first run's frontier rather than redo its work.
Three mechanisms, matched to what each engine can certify:

**TA frontier snapshots** (:class:`TAResumeState`).  TA random-access-
completes every object the moment it is first seen, so all bookkeeping
is *exact*: the saved ``{object: score}`` map plus the per-source last
grades and the next sorted-access depth reconstruct the algorithm state
bit-for-bit.  A resumed top-``m`` first re-evaluates the stop rule at
the saved depth (a cold top-``m`` checks there too — skipping that
check could read deeper and change tie outcomes), then continues the
depth loop.  Because the heap-``m`` threshold is never above the
heap-``n`` threshold at equal depth, a cold top-``m`` can never stop
*earlier* than the saved frontier, so the resumed run is
state-identical to cold at every depth it visits.

**Access replay logs** (:class:`ReplayLog` / :class:`ReplaySource`) for
NRA and CA.  A true frontier resume is *uncertifiable* for bound-
administration engines: their reported scores are lower bounds at
termination depth, and a cold top-``m`` can legitimately stop at a
*shallower* depth than a cold top-``n`` (a counterexample: with two
fully-seen objects and a high virtual upper bound, ``n=2`` stops while
``n=1`` must keep reading), so continuing from the deeper ``n``
frontier would report different — deeper, larger — lower bounds.  The
replay log instead memoizes the sorted-access prefix and every random
access of the first run; the resumed run executes the cold algorithm
verbatim with memoized sources, charging zero sorted/random accesses
for the prefix.  Equivalence is by construction; the saved cost is the
expensive inverted-list / feature-scan work the paper points at.

**Accumulator snapshots** (:class:`AccumulatorResumeState`) for
quit/continue.  The accumulator phase is independent of ``n`` — only
the final ``topn_tail`` cut depends on it — so resuming is rerunning
the tail cut over the cached candidate arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SourceExhaustedError, TopNError
from ..obs import metrics as _metrics
from ..storage import stats as _stats
from ..sync import declares_shared_state, make_lock


@dataclass
class TAResumeState:
    """Frontier snapshot of one Threshold-Algorithm run."""

    #: the ``n`` the snapshot was taken at (resume targets should exceed it)
    n: int
    #: number of sources (arity must match on resume)
    m_sources: int
    #: aggregate name (aggregation must match on resume)
    agg_name: str
    #: next sorted-access depth (the stopped run processed depths below)
    depth_next: int
    #: per-source grade at the deepest processed rank (threshold inputs)
    last_grades: tuple
    #: exact aggregate of every object seen under sorted access
    seen_scores: dict
    #: True when every source was drained (resume returns immediately)
    exhausted: bool = False

    def covers(self) -> int:
        """How many result items this frontier can certify: all of them
        (the snapshot is algorithm state, not an answer prefix)."""
        return self.n


@dataclass
class AccumulatorResumeState:
    """Candidate arrays of one quit/continue accumulation phase."""

    strategy: str
    budget_fraction: float
    terms: tuple
    #: admitted candidate doc ids (ascending) and their accumulated scores
    candidates: object
    scores: object
    #: replicated run statistics (the accumulation phase's bookkeeping)
    run_stats: dict = field(default_factory=dict)


@declares_shared_state
class ReplayLog:
    """Memoized access history of one graded source.

    The first (cold) run appends through :meth:`record_sorted` /
    :meth:`record_random`; resumed runs serve the prefix from memory.
    Two threads may share a log through the query cache, so every
    mutation and prefix read is under ``_lock``.
    """

    SHARED_STATE = {
        "sorted_prefix": "_lock",
        "random_grades": "_lock",
        "exhausted_at": "_lock",
    }

    #: prefix reads and appends only under "cache.replay": the log is
    #: shared across resumed runs, so it must never wait on another
    #: lock while held (checked statically by MOA1105)
    LOCK_LEAF = True

    def __init__(self, token: tuple = ()) -> None:
        #: the source-identity token the log belongs to
        self.token = token
        self._lock = make_lock("cache.replay")
        #: ``(obj, grade)`` at rank i, for every rank accessed so far
        self.sorted_prefix: list[tuple[int, float]] = []
        #: memoized random accesses: obj -> grade
        self.random_grades: dict[int, float] = {}
        #: rank at which the source reported exhaustion (None = unknown)
        self.exhausted_at: int | None = None

    def sorted_at(self, rank: int):
        """The memoized ``(obj, grade)`` at ``rank``, or ``None``."""
        with self._lock:
            if rank < len(self.sorted_prefix):
                return self.sorted_prefix[rank]
        return None

    def record_sorted(self, rank: int, obj: int, grade: float) -> None:
        with self._lock:
            if rank == len(self.sorted_prefix):
                self.sorted_prefix.append((obj, grade))

    def random_at(self, obj: int):
        with self._lock:
            return self.random_grades.get(obj)

    def record_random(self, obj: int, grade: float) -> None:
        with self._lock:
            self.random_grades[obj] = grade

    def known_exhausted(self, rank: int) -> bool:
        with self._lock:
            return self.exhausted_at is not None and rank >= self.exhausted_at

    def known_live(self, rank: int) -> bool:
        """Whether the log proves rank is *not* past the end."""
        with self._lock:
            if rank < len(self.sorted_prefix):
                return True
            return self.exhausted_at is not None and rank < self.exhausted_at

    def record_exhausted(self, rank: int) -> None:
        with self._lock:
            if self.exhausted_at is None or rank < self.exhausted_at:
                self.exhausted_at = rank

    def depth(self) -> int:
        with self._lock:
            return len(self.sorted_prefix)


class ReplaySource:
    """A graded source backed by a :class:`ReplayLog`.

    Accesses inside the memoized prefix are served from the log and
    charged only as ``cache.replayed_accesses`` (an *extra* counter —
    they cost no sorted/random access in the simulated model, which is
    exactly the resume saving).  Accesses beyond the prefix fall
    through to the wrapped source, charge normally, and extend the log,
    so consecutive resumed runs keep deepening the shared frontier.
    """

    def __init__(self, inner, log: ReplayLog) -> None:
        self.inner = inner
        self.log = log
        self.name = getattr(inner, "name", "source")
        #: accesses served from the log by *this* wrapper (run-local)
        self.replayed = 0

    @property
    def n_objects(self) -> int:
        return self.inner.n_objects

    def sorted_access(self, rank: int):
        cached = self.log.sorted_at(rank)
        if cached is not None:
            self.replayed += 1
            _stats.charge_extra("cache.replayed_accesses")
            _metrics.inc("cache.replayed_accesses")
            return cached
        if self.log.known_exhausted(rank):
            raise SourceExhaustedError(
                f"sorted access past end of source {self.name!r} (rank {rank})")
        obj, grade = self.inner.sorted_access(rank)
        self.log.record_sorted(rank, obj, grade)
        return obj, grade

    def random_access(self, obj_id: int) -> float:
        cached = self.log.random_at(obj_id)
        if cached is not None:
            self.replayed += 1
            _stats.charge_extra("cache.replayed_accesses")
            _metrics.inc("cache.replayed_accesses")
            return cached
        grade = self.inner.random_access(obj_id)
        self.log.record_random(obj_id, grade)
        return grade

    def exhausted(self, rank: int) -> bool:
        if self.log.known_live(rank):
            return False
        if self.log.known_exhausted(rank):
            return True
        ended = self.inner.exhausted(rank)
        if ended:
            self.log.record_exhausted(rank)
        return ended


def wrap_sources(sources, logs) -> list[ReplaySource]:
    """Wrap each source with its replay log (lists must align)."""
    if len(sources) != len(logs):
        raise TopNError(
            f"replay logs do not match the query: {len(logs)} logs for "
            f"{len(sources)} sources")
    return [ReplaySource(source, log) for source, log in zip(sources, logs)]


def replayed_total(sources) -> int:
    """Accesses served from logs across one run's wrapped sources."""
    return sum(getattr(source, "replayed", 0) for source in sources)
