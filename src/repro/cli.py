"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``       build a synthetic database and print sizing statistics
``zipf``        Zipf analysis of a synthetic collection
``search``      run one query under a chosen execution strategy
``experiment``  run the Step-1 fragmentation experiment and print the
                paper-vs-measured table
``example1``    the paper's Example 1 through the optimizer
``lint``        statically verify algebra plans (the plan verifier)
``bounds``      derive certified score intervals over plans and certify
                every pruning decision (the MOA9xx bound-flow analyzer)
``check``       run the concurrency effect / lock-discipline analyzer
                over the package (or explicit paths)
``profile``     run a query or bench scenario under the execution
                tracer and print the span-tree cost breakdown
``bench-parallel``  compare the sharded parallel engine against the
                serial baseline across shard counts (exact-match
                verified)
``bench-cache`` measure the query cache: cold vs warm repeats and
                top-N resume per engine (exact-match verified)
``bench-blocks``  compare the block-at-a-time vectorized engines
                against their scalar oracles across block sizes
                (exact-match verified)
``serve``       run the asynchronous query service over a synthetic
                database (length-prefixed JSON frames + HTTP shim)
``bench-serve`` closed-loop load test of the query service: per-tenant
                qps and latency percentiles, quota isolation verified
                (experiment E19)
``calibrate``   fit the adaptive optimizer's cost calibration from
                tracer exports and/or a self-profiled engine grid,
                writing a versioned ``calibration.json``
``explain``     render the adaptive plan choice for one query: the
                candidate table with estimated vs observed cost,
                Pareto frontier, certification status, and why the
                winner won
``bench-adaptive``  adaptive per-query engine choice vs the static
                single-engine policies on a mixed workload, exactness
                and certification verified (experiment E20)

All commands are deterministic given ``--seed`` (``serve`` and
``bench-serve`` excepted — wall-clock load generation is inherently
timing-dependent, though every answer is still exact-match verified).
"""

from __future__ import annotations

import argparse
import sys

from .core import MMDatabase, QuerySession
from .storage import CostCounter


def _add_bench_flags(parser, *, queries=None,
                     queries_help="number of generated queries",
                     n=10, n_help="top-N size",
                     json_help="emit the report as JSON"):
    """The flag trio every ``bench-*`` subcommand shares.

    One definition instead of five copy-pasted blocks: ``--queries``
    (when the bench takes one), ``--n`` and ``--json`` always get the
    same spellings and types here, so the bench CLIs cannot drift
    apart flag by flag (a test snapshots the option strings)."""
    if queries is not None:
        parser.add_argument("--queries", type=int, default=queries,
                            help=queries_help)
    parser.add_argument("--n", type=int, default=n, help=n_help)
    parser.add_argument("--json", action="store_true", help=json_help)
    return parser


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Top N optimization issues in MM databases' "
                    "(Blok, EDBT 2000).",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="FT-like workload scale (1.0 = 20k documents)")
    parser.add_argument("--seed", type=int, default=7, help="generation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="database sizing statistics")
    sub.add_parser("zipf", help="Zipf analysis of the collection")
    sub.add_parser("example1", help="the paper's Example 1 through the optimizer")

    search = sub.add_parser("search", help="run one top-N query")
    search.add_argument("terms", nargs="+", help="query terms")
    search.add_argument("--n", type=int, default=10)
    search.add_argument("--strategy", default="auto",
                        choices=["auto", "naive", "unfragmented", "unsafe-small",
                                 "safe-switch", "indexed", "parallel"])
    search.add_argument("--shards", type=int, default=None,
                        help="shard count for --strategy parallel (default: "
                             "$REPRO_PARALLEL_DEFAULT_SHARDS or 2)")

    experiment = sub.add_parser("experiment",
                                help="run a named experiment (currently: e3)")
    experiment.add_argument("name", choices=["e3"])
    experiment.add_argument("--queries", type=int, default=30)
    experiment.add_argument("--topn", type=int, default=20)

    lint = sub.add_parser(
        "lint",
        help="statically verify algebra plans and rewrite rules",
        description="Run the plan verifier: lint plan files / expressions "
                    "for type, ordering, duplicate-semantics, cut-off safety, "
                    "cardinality and fragment-coverage issues (stable MOA "
                    "diagnostic codes); optionally verify the optimizer's "
                    "rewrite rules differentially.",
    )
    lint.add_argument("paths", nargs="*", metavar="PLAN_FILE",
                      help="plan files, one expression per line (# comments)")
    lint.add_argument("--expr", action="append", default=[], metavar="EXPR",
                      help="lint this expression (repeatable)")
    lint.add_argument("--json", action="store_true",
                      help="emit reports as JSON instead of text")
    lint.add_argument("--demo-unsafe", action="store_true",
                      help="seed the unsafe stop_after pushdown over an "
                           "unordered BAG and show the verifier flagging it")
    lint.add_argument("--demo-widening", action="store_true",
                      help="seed the select-widening rewrite (a lying 'safe' "
                           "label) and show the harness + MOA904 rejecting it")
    lint.add_argument("--verify-rules", action="store_true",
                      help="run the soundness harness over the default "
                           "optimizer rules of all three layers")

    bounds = sub.add_parser(
        "bounds",
        help="derive certified score intervals and certify every "
             "pruning decision (the MOA9xx bound-flow analyzer)",
        description="Run the interval-domain abstract interpreter over "
                    "algebra plans: derive a certified score interval "
                    "[lo, hi] at every plan edge (fixpoint dataflow with "
                    "widening over resume feedback), render the "
                    "per-operator bound flow, and certify every pruning "
                    "decision — MOA901 non-monotone aggregate under a "
                    "threshold engine, MOA902 undominated pruning bound, "
                    "MOA903 unsafe quit without a computable worst-case "
                    "error, MOA905 epoch-stale seeded bounds.  Exit codes "
                    "and --json schema match repro lint / repro check.",
    )
    bounds.add_argument("paths", nargs="*", metavar="PLAN_FILE",
                        help="plan files, one expression per line (# comments)")
    bounds.add_argument("--expr", action="append", default=[], metavar="EXPR",
                        help="analyze this expression (repeatable)")
    bounds.add_argument("--json", action="store_true",
                        help="emit reports + certificates as JSON "
                             "(shared lint/check/bounds schema)")
    bounds.add_argument("--no-flow", action="store_true",
                        help="omit the per-operator bound-flow tree from "
                             "text output")

    check = sub.add_parser(
        "check",
        help="statically verify the codebase's concurrency discipline",
        description="Run the concurrency effect analyzer: infer per-"
                    "function effects (shared-state writes, lock "
                    "acquisitions, thread spawns) over Python sources and "
                    "check them against the repro.sync declaration "
                    "protocol (SHARED_STATE / @guarded_by), reporting "
                    "MOA7xx diagnostics.  Exit codes match repro lint: "
                    "0 clean, 1 error-severity findings, 2 usage.",
    )
    check.add_argument("paths", nargs="*", metavar="PATH",
                       help="Python files or directories to analyze "
                            "(default: the installed repro package)")
    check.add_argument("--json", action="store_true",
                       help="emit the report as JSON (shared lint/check schema)")
    check.add_argument("--effects", action="store_true",
                       help="include per-module effect summaries in the "
                            "JSON payload")

    profile = sub.add_parser(
        "profile",
        help="run a scenario under the execution tracer and print the "
             "span-tree / per-operator cost breakdown",
        description="Profile one scenario: enable the repro.obs tracer + "
                    "metrics, run the scenario, and print a span tree whose "
                    "per-span exclusive cost deltas sum to the run's "
                    "CostCounter totals.  Scenarios: 'search' (a top-N text "
                    "query through the fragmented database), 'topn' (one "
                    "Fagin-family engine over synthetic multimedia score "
                    "sources), 'example1' (the paper's Example 1 through "
                    "the optimizer pipeline).",
    )
    profile.add_argument("scenario", choices=["search", "topn", "example1"])
    profile.add_argument("--terms", nargs="+", default=["data"],
                         help="query terms (scenario: search)")
    profile.add_argument("--strategy", default="auto",
                         choices=["auto", "naive", "unfragmented", "unsafe-small",
                                  "safe-switch", "indexed", "parallel"],
                         help="execution strategy (scenario: search)")
    profile.add_argument("--algo", default="ta",
                         choices=["naive", "fa", "ta", "nra", "ca"],
                         help="middleware algorithm (scenario: topn)")
    profile.add_argument("--shards", type=int, default=None, metavar="K",
                         help="profile the sharded parallel engine with K "
                              "shards (scenarios: search, topn)")
    profile.add_argument("--n", type=int, default=10, help="top-N size")
    profile.add_argument("--objects", type=int, default=2000,
                         help="synthetic objects (scenario: topn)")
    profile.add_argument("--sources", type=int, default=2,
                         help="graded sources (scenario: topn)")
    profile.add_argument("--events", type=int, default=0, metavar="K",
                         help="show up to K events per span in the tree")
    profile.add_argument("--json", action="store_true",
                         help="emit the full profile (spans, totals, metrics) as JSON")
    profile.add_argument("--export", metavar="PATH",
                         help="additionally write the raw trace as JSONL to PATH")

    bench = sub.add_parser(
        "bench-parallel",
        help="benchmark the sharded parallel engine against the serial "
             "baseline across shard counts",
        description="Run a fixed query workload serially (naive top-N) and "
                    "through the sharded parallel engine at each shard "
                    "count, verifying that every parallel ranking is "
                    "tie-aware identical to the serial one and certified; "
                    "prints latency / tuple-access / probe-saving "
                    "comparisons.  Exits nonzero on any mismatch or "
                    "uncertified result.",
    )
    bench.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4, 8],
                       metavar="K", help="shard counts to benchmark")
    bench.add_argument("--kind", default="thread",
                       choices=["serial", "thread", "process"],
                       help="executor pool kind")
    bench.add_argument("--workers", type=int, default=4,
                       help="executor pool workers")
    _add_bench_flags(bench, queries=10)

    bench_cache = sub.add_parser(
        "bench-cache",
        help="benchmark the query cache: cold vs warm repeats and "
             "top-N resume, exact-match verified",
        description="Run a fixed workload cold, then again against the "
                    "query cache (warm repeats and top-n -> top-N "
                    "resume per engine), verifying every warm or "
                    "resumed ranking is tie-aware identical to its "
                    "cold reference; prints charged-operation "
                    "reductions.  Exits nonzero on any mismatch or a "
                    "warm repeat below the 5x reduction bar.",
    )
    bench_cache.add_argument("--resume-n", type=int, default=100,
                             help="deep top-N size resumed from the "
                                  "shallow runs")
    _add_bench_flags(bench_cache, queries=10, n_help="shallow top-N size")

    bench_blocks = sub.add_parser(
        "bench-blocks",
        help="benchmark the block-at-a-time engines against their "
             "scalar oracles, exact-match verified",
        description="Run the TA/NRA/CA engine pairs over an E15-style "
                    "multi-feature workload: the scalar engine once per "
                    "query, the blocked variant per block size, "
                    "verifying every blocked ranking is bit-identical "
                    "(ids and scores, canonical tie order) to the "
                    "scalar answer.  Exits nonzero on any mismatch.",
    )
    bench_blocks.add_argument("--block-sizes", type=int, nargs="+",
                              default=[16, 128, 1024], metavar="B",
                              help="block sizes to benchmark")
    _add_bench_flags(bench_blocks, queries=3,
                     queries_help="number of grade matrices")

    serve = sub.add_parser(
        "serve",
        help="run the asynchronous query service",
        description="Serve streaming anytime top-N queries over a "
                    "synthetic database with planted feature spaces.  "
                    "Speaks the length-prefixed JSON frame protocol "
                    "and a minimal HTTP shim (GET /healthz, GET "
                    "/stats, POST /query -> NDJSON) on one port.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7333,
                       help="bind port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=4,
                       help="executor pool workers")
    serve.add_argument("--max-concurrent", type=int, default=8,
                       help="pool-wide concurrent query bound")
    serve.add_argument("--chunk-depth", type=int, default=32,
                       help="sorted-access depth of the first streamed "
                            "chunk (doubles per chunk)")

    bench_serve = sub.add_parser(
        "bench-serve",
        help="closed-loop load test of the query service, quota "
             "isolation and exact finals verified (E19)",
        description="Start a server with a steady and a noisy tenant, "
                    "drive closed-loop clients through a solo and a "
                    "mixed phase, and report per-tenant qps and "
                    "latency percentiles.  Verifies every streamed "
                    "final against the direct library call, that the "
                    "noisy tenant is throttled by its token bucket, "
                    "and that the steady tenant's p99 degrades by at "
                    "most 2x under the mixed load.  Exits nonzero "
                    "otherwise.",
    )
    bench_serve.add_argument("--duration", type=float, default=2.0,
                             help="seconds per phase")
    bench_serve.add_argument("--algorithm", default="ta",
                             choices=["fa", "ta", "nra", "ca"],
                             help="engine streamed by the load")
    bench_serve.add_argument("--clients", type=int, default=3,
                             help="closed-loop clients per tenant")
    bench_serve.add_argument("--chunk-depth", type=int, default=8,
                             help="first-chunk depth (small values "
                                  "stream more anytime chunks)")
    _add_bench_flags(bench_serve)

    calibrate = sub.add_parser(
        "calibrate",
        help="fit the adaptive optimizer's cost calibration from "
             "tracer exports (or a self-profiled engine grid)",
        description="Ingest span exports written by `repro profile "
                    "--export` (schema_version-validated; damaged or "
                    "unknown-version records are skipped with a "
                    "warning), optionally self-profile the Fagin-family "
                    "engine grid over the synthetic workload classes, "
                    "fit cost-model constants plus per-engine stopping "
                    "predictors, and write a versioned calibration.json "
                    "for `repro explain` / `repro bench-adaptive`.",
    )
    calibrate.add_argument("traces", nargs="*", metavar="TRACE_JSONL",
                           help="profile exports to ingest (none = "
                                "self-profile only)")
    calibrate.add_argument("--self-profile", action="store_true",
                           help="additionally trace the engine grid over "
                                "the synthetic workload classes (implied "
                                "when no trace files are given)")
    calibrate.add_argument("--output", "-o", default="calibration.json",
                           metavar="PATH", help="where to write the fitted "
                                                "calibration")
    calibrate.add_argument("--objects", type=int, default=800,
                           help="objects per self-profiled corpus")
    calibrate.add_argument("--sources", type=int, default=3,
                           help="graded sources per self-profiled query")
    calibrate.add_argument("--n", type=int, default=10,
                           help="top-N size of self-profiled queries")
    calibrate.add_argument("--json", action="store_true",
                           help="also print the fitted calibration as JSON")

    explain = sub.add_parser(
        "explain",
        help="render the adaptive plan choice: candidate table, "
             "est-vs-observed cost, certification, why the winner won",
        description="Enumerate every candidate plan for one query "
                    "(Fagin-family engines, blocked variants, the "
                    "unsafe budgeted cut-off), cost them with the "
                    "calibrated model, execute each for its observed "
                    "charged cost and overlap@N, and render the table "
                    "with the Pareto frontier and the MOA verifier / "
                    "MOA9xx bound-certification verdicts.  Scenarios: "
                    "'example1' (the paper's Example 1 rewrite choice) "
                    "and 'topn' (a multi-feature middleware query).  "
                    "--json emits the shared lint/bounds/check "
                    "diagnostics payload plus an 'explain' object.",
    )
    explain.add_argument("scenario", choices=["example1", "topn"])
    explain.add_argument("--calibration", metavar="PATH",
                         help="calibration.json from `repro calibrate` "
                              "(default: uncalibrated analytic priors)")
    explain.add_argument("--quality-floor", type=float, default=1.0,
                         help="minimum predicted overlap@N a candidate "
                              "must offer (1.0 = exact plans only)")
    explain.add_argument("--corpus", default="uniform",
                         choices=["uniform", "skewed", "correlated", "sparse"],
                         help="workload class (scenario: topn)")
    explain.add_argument("--n", type=int, default=10, help="top-N size")
    explain.add_argument("--objects", type=int, default=800,
                         help="synthetic objects (scenario: topn)")
    explain.add_argument("--sources", type=int, default=3,
                         help="graded sources (scenario: topn)")
    explain.add_argument("--block-size", type=int, default=None, metavar="B",
                         help="also enumerate the blocked engine variants "
                              "at this block size (scenario: topn)")
    explain.add_argument("--json", action="store_true",
                         help="emit the shared diagnostics payload plus "
                              "the explain object")

    bench_adaptive = sub.add_parser(
        "bench-adaptive",
        help="benchmark the adaptive per-query engine choice against "
             "the static single-engine policies (E20)",
        description="Train a calibration on a disjoint split (or reuse "
                    "one from `repro calibrate`), then run a mixed "
                    "workload of uniform / skewed / correlated / sparse "
                    "corpora under each static always-one-engine policy "
                    "and under the adaptive policy, all measured with "
                    "the same charged-cost functional.  Verifies every "
                    "answer is exact and every adaptively chosen plan "
                    "is verifier-clean and bound-certified; exits "
                    "nonzero when adaptive misses the per-class "
                    "tolerance or fails to beat at least two statics.",
    )
    bench_adaptive.add_argument("--train-queries", type=int, default=4,
                                help="training queries per workload class")
    bench_adaptive.add_argument("--tolerance", type=float, default=1.05,
                                help="allowed adaptive/best-static cost "
                                     "ratio per class")
    bench_adaptive.add_argument("--calibration", metavar="PATH",
                                help="reuse a fitted calibration.json "
                                     "instead of training")
    _add_bench_flags(bench_adaptive, queries=5,
                     queries_help="test queries per workload class")
    return parser


def _make_database(args) -> MMDatabase:
    from .workloads import SyntheticCollection, trec

    collection = SyntheticCollection.generate(trec.ft_like(scale=args.scale,
                                                           seed=args.seed))
    db = MMDatabase.from_collection(collection)
    db.fragment()
    return db


def _cmd_stats(args, out) -> int:
    db = _make_database(args)
    for key, value in sorted(db.stats().items()):
        print(f"{key:<26} {value}", file=out)
    return 0


def _cmd_zipf(args, out) -> int:
    from .ir import fit_zipf, rank_frequency_table, vocabulary_share_for_volume

    db = _make_database(args)
    cf = db.index.vocabulary.cf_array()
    used = cf[cf > 0]
    fit = fit_zipf(used, min_frequency=3)
    print(f"zipf exponent {fit.exponent:.3f}  r^2 {fit.r_squared:.3f}  "
          f"terms {fit.n_terms}", file=out)
    print(f"{'rank':>8} {'frequency':>12}", file=out)
    for rank, freq in rank_frequency_table(used, n_points=10):
        print(f"{rank:>8} {freq:>12.0f}", file=out)
    share = vocabulary_share_for_volume(used, 0.95)
    print(f"95% of volume is carried by {share:.1%} of the used vocabulary", file=out)
    return 0


def _cmd_search(args, out) -> int:
    db = _make_database(args)
    if args.strategy == "parallel" or args.shards is not None:
        db.shard(args.shards)
        args.strategy = "parallel"
    with CostCounter.activate() as cost:
        result = db.search(" ".join(args.terms), n=args.n, strategy=args.strategy)
    print(f"strategy={result.result.strategy} safe={result.safe} "
          f"tuples={cost.tuples_read:,} time={result.elapsed_seconds * 1000:.1f}ms",
          file=out)
    if not result.hits:
        print("no results (unknown terms?)", file=out)
        return 1
    for rank, item in enumerate(result.hits, start=1):
        print(f"{rank:>4}. doc {item.obj_id:<8} score {item.score:.4f}", file=out)
    return 0


def _cmd_experiment_e3(args, out) -> int:
    from .workloads import generate_queries

    db = _make_database(args)
    queries = generate_queries(db.collection, n_queries=args.queries,
                               terms_range=(3, 8), rare_bias=3.0,
                               seed=args.seed + 1)
    session = QuerySession(db)
    reference = session.reference_rankings(queries, n=args.topn)
    exact = session.run(queries, n=args.topn, strategy="unfragmented",
                        reference_rankings=reference)
    unsafe = session.run(queries, n=args.topn, strategy="unsafe-small",
                         reference_rankings=reference)
    print(f"{'metric':<28} {'paper':<10} measured", file=out)
    print(f"{'data touched reduction':<28} {'>= 60%':<10} "
          f"{1 - unsafe.tuples_read / exact.tuples_read:.1%}", file=out)
    print(f"{'average-precision drop':<28} {'> 30%':<10} "
          f"{1 - unsafe.mean_average_precision / exact.mean_average_precision:.1%}",
          file=out)
    print(f"{'top-N overlap with exact':<28} {'-':<10} "
          f"{unsafe.mean_overlap_vs_reference:.1%}", file=out)
    return 0


def _emit_diagnostics_json(out, command: str, reports, exit_code: int,
                           **extra) -> None:
    """The one ``--json`` emit path for every diagnostics command
    (lint / bounds / check).  All of them print exactly
    ``cli_payload(...)`` — same top-level keys, same annotation
    records — so CI tooling can consume any of them identically and
    the schemas cannot drift."""
    import json

    from .analysis import cli_payload

    payload = cli_payload(command, reports, exit_code=exit_code, **extra)
    print(json.dumps(payload, indent=2), file=out)


def _cmd_lint(args, out) -> int:
    from .analysis import (
        EXIT_USAGE,
        SoundnessHarness,
        demo_unsafe_rewrite,
        demo_widening_rewrite,
        lint_file,
        lint_text,
    )
    from .errors import ParseError

    if not (args.paths or args.expr or args.demo_unsafe or args.demo_widening
            or args.verify_rules):
        print("repro lint: nothing to lint (give PLAN_FILEs, --expr, "
              "--demo-unsafe, --demo-widening or --verify-rules)", file=out)
        return EXIT_USAGE

    exit_code = 0
    extra: dict = {}

    reports = []
    for text in args.expr:
        try:
            reports.append(lint_text(text))
        except ParseError as exc:
            print(f"repro lint: {text.strip() or '<empty>'}: syntax error: {exc}",
                  file=out)
            exit_code = 1
    for path in args.paths:
        try:
            reports.extend(lint_file(path))
        except ParseError as exc:
            print(f"repro lint: {path}: syntax error: {exc}", file=out)
            exit_code = 1
        except OSError as exc:
            print(f"repro lint: cannot read {path}: {exc}", file=out)
            return EXIT_USAGE
    if reports:
        if not args.json:
            for report in reports:
                print(report.render_text(), file=out)
        if any(report.has_errors for report in reports):
            exit_code = 1

    if args.demo_unsafe:
        demo = demo_unsafe_rewrite()
        if args.json:
            extra["demo_unsafe"] = demo.to_dict()
        else:
            print(demo.render_text(), file=out)
        # the demo *should* produce errors; report them like any lint run
        if demo.report.has_errors or not demo.verdict.passed:
            exit_code = 1

    if args.demo_widening:
        demo = demo_widening_rewrite()
        if args.json:
            extra["demo_widening"] = demo.to_dict()
        else:
            print(demo.render_text(), file=out)
        # the seeded lying label *should* fail the harness (and MOA904
        # should land in the report); surface that like any lint run
        if demo.report.has_errors or not demo.verdict.passed:
            exit_code = 1

    if args.verify_rules:
        from .optimizer import (
            DEFAULT_INTER_OBJECT_RULES,
            DEFAULT_LOGICAL_RULES,
            intra_rules_for,
        )

        rules = (list(DEFAULT_LOGICAL_RULES) + list(DEFAULT_INTER_OBJECT_RULES)
                 + list(intra_rules_for()))
        verdicts = SoundnessHarness(seed=args.seed).verify_rules(rules)
        if args.json:
            extra["rule_verdicts"] = {
                name: {
                    "layer": verdict.layer,
                    "declared_safety": verdict.declared_safety,
                    "passed": verdict.passed,
                    "exercised": verdict.exercised,
                    "mean_overlap": verdict.mean_overlap,
                    "failures": list(verdict.failures),
                }
                for name, verdict in verdicts.items()
            }
        else:
            for verdict in verdicts.values():
                print(verdict.describe(), file=out)
        if any(not verdict.passed for verdict in verdicts.values()):
            exit_code = 1

    if args.json:
        _emit_diagnostics_json(out, "lint", reports, exit_code, **extra)
    return exit_code


def _cmd_bounds(args, out) -> int:
    from .algebra.parser import parse
    from .analysis import (
        EXIT_USAGE,
        AnalysisContext,
        DiagnosticReport,
        certify,
        exit_code_for,
    )
    from .errors import ParseError

    if not (args.paths or args.expr):
        print("repro bounds: nothing to analyze (give PLAN_FILEs or --expr)",
              file=out)
        return EXIT_USAGE

    cases: list[tuple[str, str]] = [(text, text.strip()) for text in args.expr]
    for path in args.paths:
        try:
            with open(path, encoding="utf-8") as handle:
                for lineno, raw in enumerate(handle, start=1):
                    line = raw.split("#", 1)[0].strip()
                    if line:
                        cases.append((line, f"{path}:{lineno}"))
        except OSError as exc:
            print(f"repro bounds: cannot read {path}: {exc}", file=out)
            return EXIT_USAGE

    exit_code = 0
    reports = []
    certificates = []
    for text, source in cases:
        try:
            expr = parse(text)
        except ParseError as exc:
            print(f"repro bounds: {source}: syntax error: {exc}", file=out)
            exit_code = 1
            continue
        certificate = certify(expr, AnalysisContext())
        report = DiagnosticReport(source=source)
        report.extend(certificate.diagnostics)
        reports.append(report)
        certificates.append((expr, source, certificate))
        if not certificate.certified:
            exit_code = 1  # a failed verdict exits 1 (shared contract)
        if not args.json:
            print(f"bounds {source}: {certificate.describe()}", file=out)
            if not args.no_flow:
                print(certificate.flow.render_text(expr), file=out)
            for diagnostic in report:
                print("  " + diagnostic.render(), file=out)

    exit_code = max(exit_code, exit_code_for(reports))
    if args.json:
        _emit_diagnostics_json(
            out, "bounds", reports, exit_code,
            certificates=[
                dict(source=source, expr=str(expr), **certificate.to_dict())
                for expr, source, certificate in certificates
            ],
        )
    return exit_code


def _cmd_check(args, out) -> int:
    from .analysis import (
        EXIT_CLEAN,
        EXIT_FINDINGS,
        EXIT_USAGE,
        check_lifecycle,
        check_lifecycle_paths,
        check_package,
        check_paths,
        check_serve,
        check_serve_paths,
        effect_summary,
    )

    try:
        report = check_paths(args.paths) if args.paths else check_package()
        # the serve-safety pass (MOA10xx) rides along with the MOA7xx run
        serve_report = (check_serve_paths(args.paths) if args.paths
                        else check_serve())
        report.extend(serve_report.diagnostics)
        # ... as does the resource-lifecycle pass (MOA11xx)
        lifecycle_report = (check_lifecycle_paths(args.paths) if args.paths
                            else check_lifecycle())
        report.extend(lifecycle_report.diagnostics)
    except OSError as exc:
        print(f"repro check: cannot read source: {exc}", file=out)
        return EXIT_USAGE
    except SyntaxError as exc:
        print(f"repro check: cannot parse source: {exc}", file=out)
        return EXIT_USAGE
    exit_code = EXIT_FINDINGS if report.has_errors else EXIT_CLEAN
    if args.json:
        extra = {}
        if args.effects:
            extra["effects"] = effect_summary(paths=args.paths or None)
        _emit_diagnostics_json(out, "check", [report], exit_code, **extra)
    else:
        print(report.render_text(label="check"), file=out)
    return exit_code


def _profile_scenario(args):
    """Build the zero-argument callable the profiler runs for ``args``."""
    if args.scenario == "search":
        db = _make_database(args)
        query = " ".join(args.terms)
        strategy = args.strategy
        if args.shards is not None or strategy == "parallel":
            db.shard(args.shards)
            strategy = "parallel"

        def run():
            return db.search(query, n=args.n, strategy=strategy)

        return run

    if args.scenario == "topn":
        import numpy as np

        from .mm import ArraySource
        from .topn import (
            combined_topn,
            fagin_topn,
            naive_topn_sources,
            nra_topn,
            threshold_topn,
        )

        rng = np.random.default_rng(args.seed)
        matrix = rng.random((args.objects, max(2, args.sources)))
        sources = [ArraySource(matrix[:, j]) for j in range(matrix.shape[1])]
        algo = {
            "naive": naive_topn_sources,
            "fa": fagin_topn,
            "ta": threshold_topn,
            "nra": nra_topn,
            "ca": combined_topn,
        }[args.algo]

        if args.shards is not None:
            from .parallel import parallel_topn_sources

            def run():
                return parallel_topn_sources(sources, args.n, shards=args.shards)

            return run

        def run():
            return algo(sources, args.n)

        return run

    # example1: the paper's Example 1 through the optimizer pipeline
    from .algebra import parse
    from .optimizer import Optimizer

    expr = parse("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
    optimizer = Optimizer()

    def run():
        value, report = optimizer.execute(expr)
        return sorted(value.to_python())

    return run


def _cmd_profile(args, out) -> int:
    from .obs import metrics, run_profiled

    scenario = _profile_scenario(args)
    # start from a clean registry so the snapshot covers just this run
    metrics.reset()
    report = run_profiled(scenario)
    if args.export:
        report.export_jsonl(args.export)
    if args.json:
        print(report.to_json(indent=2), file=out)
    else:
        print(report.render_text(max_events=args.events), file=out)
        if args.export:
            print(f"trace written to {args.export}", file=out)
    return 0


def _cmd_bench_parallel(args, out) -> int:
    import json

    from .parallel import bench_parallel

    report = bench_parallel(scale=args.scale, seed=args.seed,
                            shard_counts=tuple(args.shards),
                            queries=args.queries, n=args.n,
                            kind=args.kind, workers=args.workers)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2), file=out)
    else:
        header = (f"{'config':<12} {'seconds':>9} {'tuples':>10} {'pages':>8} "
                  f"{'probes':>7} {'saved':>6} {'rnd2':>5} {'shipped':>8} "
                  f"{'mismatch':>9}")
        print(header, file=out)
        for row in report.rows:
            print(f"{row.label:<12} {row.seconds:>9.4f} {row.tuples_read:>10,} "
                  f"{row.page_reads:>8,} {row.probes:>7} {row.probes_saved:>6} "
                  f"{row.rounds_2:>5} {row.items_shipped:>8,} "
                  f"{row.mismatches:>9}", file=out)
        verdict = "ok: every parallel ranking matched serial and was certified" \
            if report.ok else "MISMATCH: parallel results diverged from serial"
        print(verdict, file=out)
    return 0 if report.ok else 1


def _cmd_bench_cache(args, out) -> int:
    import json

    from .cache.bench import bench_cache

    report = bench_cache(scale=args.scale, seed=args.seed,
                         queries=args.queries, n=args.n,
                         resume_n=args.resume_n)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2), file=out)
    else:
        header = (f"{'scenario':<18} {'queries':>7} {'cold ops':>10} "
                  f"{'warm ops':>10} {'reduction':>10} {'hits':>5} "
                  f"{'resumes':>8} {'mismatch':>9}")
        print(header, file=out)
        for row in report.rows:
            reduction = ("inf" if row.reduction == float("inf")
                         else f"x{row.reduction:.1f}")
            print(f"{row.label:<18} {row.queries:>7} {row.charged_cold:>10,} "
                  f"{row.charged_warm:>10,} {reduction:>10} {row.hits:>5} "
                  f"{row.resumes:>8} {row.mismatches:>9}", file=out)
        verdict = ("ok: every warm and resumed ranking matched its cold "
                   "reference" if report.ok
                   else "MISMATCH: warm results diverged from cold, or a "
                        "warm repeat missed the 5x reduction bar")
        print(verdict, file=out)
    return 0 if report.ok else 1


def _cmd_bench_blocks(args, out) -> int:
    import json

    from .topn.bench import bench_blocks, render_report

    report = bench_blocks(scale=args.scale, seed=args.seed,
                          queries=args.queries, n=args.n,
                          block_sizes=tuple(args.block_sizes))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2), file=out)
    else:
        print(render_report(report), file=out)
    return 0 if report.ok else 1


def _cmd_serve(args, out) -> int:
    import signal
    import threading

    from .mm.features import color_histograms, texture_features
    from .serve import ServerConfig, ServerThread

    db = _make_database(args)
    db.add_feature_space(color_histograms(db.collection.n_docs, seed=args.seed))
    db.add_feature_space(texture_features(db.collection.n_docs, seed=args.seed))
    config = ServerConfig(host=args.host, port=args.port,
                          workers=args.workers,
                          max_concurrent=args.max_concurrent,
                          chunk_depth=args.chunk_depth)
    server = ServerThread(db, config)
    handle = server.start()
    print(f"repro serve: listening on {handle.host}:{handle.port} "
          f"(feature spaces: {sorted(db.feature_spaces)}; ctrl-c stops)",
          file=out, flush=True)
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        server.stop()
        db.close()
    print("repro serve: stopped", file=out)
    return 0


def _cmd_bench_serve(args, out) -> int:
    import json

    from .serve import bench_serve
    from .serve.bench import render_report

    report = bench_serve(scale=args.scale, seed=args.seed,
                         duration=args.duration, n=args.n,
                         algorithm=args.algorithm,
                         steady_clients=args.clients,
                         noisy_clients=args.clients,
                         chunk_depth=args.chunk_depth)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2), file=out)
    else:
        print(render_report(report), file=out)
    return 0 if report.ok else 1


def _cmd_calibrate(args, out) -> int:
    import json

    from .errors import CalibrationError
    from .optimizer.adaptive import CalibrationStore, train_calibration

    store = CalibrationStore()
    warnings = []
    ingested = skipped = 0
    for path in args.traces:
        try:
            stats = store.ingest_jsonl(path)
        except OSError as exc:
            print(f"calibrate: cannot read {path}: {exc}", file=out)
            return 2
        ingested += stats.ingested
        skipped += stats.skipped
        warnings.extend(stats.warnings)
    for warning in warnings:
        print(f"calibrate: warning: {warning}", file=out)
    try:
        if args.self_profile or not args.traces:
            calibration = train_calibration(
                store=store, seed=args.seed, objects=args.objects,
                sources=args.sources, n=args.n)
        else:
            calibration = store.fit()
    except CalibrationError as exc:
        print(f"calibrate: {exc}", file=out)
        return 2
    calibration.save(args.output)
    meta = calibration.meta
    print(f"calibrate: {meta.get('observations', 0)} engine observations "
          f"({ingested} records ingested, {skipped} skipped), "
          f"weights {'fitted' if meta.get('weights_fitted') else 'defaulted'}, "
          f"engines: {', '.join(sorted(calibration.engines)) or 'none'}",
          file=out)
    print(f"calibration written to {args.output}", file=out)
    if args.json:
        print(json.dumps(calibration.to_json(), indent=2), file=out)
    return 0


def _cmd_explain(args, out) -> int:
    from .errors import CalibrationError
    from .optimizer.adaptive import Calibration, explain_example1, explain_topn

    calibration = None
    if args.calibration:
        try:
            calibration = Calibration.load(args.calibration)
        except OSError as exc:
            print(f"explain: cannot read {args.calibration}: {exc}", file=out)
            return 2
        except CalibrationError as exc:
            print(f"explain: {exc}", file=out)
            return 2
    if args.scenario == "example1":
        report = explain_example1(calibration=calibration)
    else:
        report = explain_topn(corpus=args.corpus, n=args.n,
                              objects=args.objects, sources=args.sources,
                              seed=args.seed, block_size=args.block_size,
                              quality_floor=args.quality_floor,
                              calibration=calibration)
    exit_code = 0 if report.ok else 1
    if args.json:
        _emit_diagnostics_json(out, "explain", [report.diagnostics],
                               exit_code, explain=report.to_dict())
    else:
        print(report.render_text(), file=out)
    return exit_code


def _cmd_bench_adaptive(args, out) -> int:
    import json

    from .errors import CalibrationError
    from .optimizer.adaptive import Calibration, bench_adaptive, render_report

    calibration = None
    if args.calibration:
        try:
            calibration = Calibration.load(args.calibration)
        except OSError as exc:
            print(f"bench-adaptive: cannot read {args.calibration}: {exc}",
                  file=out)
            return 2
        except CalibrationError as exc:
            print(f"bench-adaptive: {exc}", file=out)
            return 2
    report = bench_adaptive(scale=args.scale, seed=args.seed,
                            queries=args.queries, n=args.n,
                            train_queries=args.train_queries,
                            tolerance=args.tolerance,
                            calibration=calibration)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2), file=out)
    else:
        print(render_report(report), file=out)
    return 0 if report.ok else 1


def _cmd_example1(args, out) -> int:
    from .algebra import parse
    from .optimizer import Optimizer

    expr = parse("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
    value, report = Optimizer().execute(expr)
    print(report.describe(), file=out)
    print(f"answer: {sorted(value.to_python())}", file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    import signal

    if out is None and hasattr(signal, "SIGPIPE"):
        # console-script entry: die quietly when the reader closes the
        # pipe (e.g. `repro zipf | head`)
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "stats":
        return _cmd_stats(args, out)
    if args.command == "zipf":
        return _cmd_zipf(args, out)
    if args.command == "search":
        return _cmd_search(args, out)
    if args.command == "experiment":
        return _cmd_experiment_e3(args, out)
    if args.command == "example1":
        return _cmd_example1(args, out)
    if args.command == "lint":
        return _cmd_lint(args, out)
    if args.command == "bounds":
        return _cmd_bounds(args, out)
    if args.command == "check":
        return _cmd_check(args, out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "bench-parallel":
        return _cmd_bench_parallel(args, out)
    if args.command == "bench-cache":
        return _cmd_bench_cache(args, out)
    if args.command == "bench-blocks":
        return _cmd_bench_blocks(args, out)
    if args.command == "calibrate":
        return _cmd_calibrate(args, out)
    if args.command == "explain":
        return _cmd_explain(args, out)
    if args.command == "bench-adaptive":
        return _cmd_bench_adaptive(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "bench-serve":
        return _cmd_bench_serve(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
