"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``       build a synthetic database and print sizing statistics
``zipf``        Zipf analysis of a synthetic collection
``search``      run one query under a chosen execution strategy
``experiment``  run the Step-1 fragmentation experiment and print the
                paper-vs-measured table
``example1``    the paper's Example 1 through the optimizer

All commands are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

from .core import MMDatabase, QuerySession
from .storage import CostCounter


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Top N optimization issues in MM databases' "
                    "(Blok, EDBT 2000).",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="FT-like workload scale (1.0 = 20k documents)")
    parser.add_argument("--seed", type=int, default=7, help="generation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="database sizing statistics")
    sub.add_parser("zipf", help="Zipf analysis of the collection")
    sub.add_parser("example1", help="the paper's Example 1 through the optimizer")

    search = sub.add_parser("search", help="run one top-N query")
    search.add_argument("terms", nargs="+", help="query terms")
    search.add_argument("--n", type=int, default=10)
    search.add_argument("--strategy", default="auto",
                        choices=["auto", "naive", "unfragmented", "unsafe-small",
                                 "safe-switch", "indexed"])

    experiment = sub.add_parser("experiment",
                                help="run a named experiment (currently: e3)")
    experiment.add_argument("name", choices=["e3"])
    experiment.add_argument("--queries", type=int, default=30)
    experiment.add_argument("--topn", type=int, default=20)
    return parser


def _make_database(args) -> MMDatabase:
    from .workloads import SyntheticCollection, trec

    collection = SyntheticCollection.generate(trec.ft_like(scale=args.scale,
                                                           seed=args.seed))
    db = MMDatabase.from_collection(collection)
    db.fragment()
    return db


def _cmd_stats(args, out) -> int:
    db = _make_database(args)
    for key, value in sorted(db.stats().items()):
        print(f"{key:<26} {value}", file=out)
    return 0


def _cmd_zipf(args, out) -> int:
    from .ir import fit_zipf, rank_frequency_table, vocabulary_share_for_volume

    db = _make_database(args)
    cf = db.index.vocabulary.cf_array()
    used = cf[cf > 0]
    fit = fit_zipf(used, min_frequency=3)
    print(f"zipf exponent {fit.exponent:.3f}  r^2 {fit.r_squared:.3f}  "
          f"terms {fit.n_terms}", file=out)
    print(f"{'rank':>8} {'frequency':>12}", file=out)
    for rank, freq in rank_frequency_table(used, n_points=10):
        print(f"{rank:>8} {freq:>12.0f}", file=out)
    share = vocabulary_share_for_volume(used, 0.95)
    print(f"95% of volume is carried by {share:.1%} of the used vocabulary", file=out)
    return 0


def _cmd_search(args, out) -> int:
    db = _make_database(args)
    with CostCounter.activate() as cost:
        result = db.search(" ".join(args.terms), n=args.n, strategy=args.strategy)
    print(f"strategy={result.result.strategy} safe={result.safe} "
          f"tuples={cost.tuples_read:,} time={result.elapsed_seconds * 1000:.1f}ms",
          file=out)
    if not result.hits:
        print("no results (unknown terms?)", file=out)
        return 1
    for rank, item in enumerate(result.hits, start=1):
        print(f"{rank:>4}. doc {item.obj_id:<8} score {item.score:.4f}", file=out)
    return 0


def _cmd_experiment_e3(args, out) -> int:
    from .workloads import generate_queries

    db = _make_database(args)
    queries = generate_queries(db.collection, n_queries=args.queries,
                               terms_range=(3, 8), rare_bias=3.0,
                               seed=args.seed + 1)
    session = QuerySession(db)
    reference = session.reference_rankings(queries, n=args.topn)
    exact = session.run(queries, n=args.topn, strategy="unfragmented",
                        reference_rankings=reference)
    unsafe = session.run(queries, n=args.topn, strategy="unsafe-small",
                         reference_rankings=reference)
    print(f"{'metric':<28} {'paper':<10} measured", file=out)
    print(f"{'data touched reduction':<28} {'>= 60%':<10} "
          f"{1 - unsafe.tuples_read / exact.tuples_read:.1%}", file=out)
    print(f"{'average-precision drop':<28} {'> 30%':<10} "
          f"{1 - unsafe.mean_average_precision / exact.mean_average_precision:.1%}",
          file=out)
    print(f"{'top-N overlap with exact':<28} {'-':<10} "
          f"{unsafe.mean_overlap_vs_reference:.1%}", file=out)
    return 0


def _cmd_example1(args, out) -> int:
    from .algebra import evaluate, parse
    from .optimizer import Optimizer

    expr = parse("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
    value, report = Optimizer().execute(expr)
    print(report.describe(), file=out)
    print(f"answer: {sorted(value.to_python())}", file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    import signal

    if out is None and hasattr(signal, "SIGPIPE"):
        # console-script entry: die quietly when the reader closes the
        # pipe (e.g. `repro zipf | head`)
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "stats":
        return _cmd_stats(args, out)
    if args.command == "zipf":
        return _cmd_zipf(args, out)
    if args.command == "search":
        return _cmd_search(args, out)
    if args.command == "experiment":
        return _cmd_experiment_e3(args, out)
    if args.command == "example1":
        return _cmd_example1(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
