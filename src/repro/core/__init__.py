"""Public facade: :class:`MMDatabase`, search results and sessions."""

from .bridge import RANKING_TYPE, ranking_to_value, value_to_ranking
from .config import DatabaseConfig
from .database import MMDatabase
from .session import QuerySession, SearchResult, SessionReport

__all__ = [
    "DatabaseConfig",
    "MMDatabase",
    "QuerySession",
    "RANKING_TYPE",
    "SearchResult",
    "SessionReport",
    "ranking_to_value",
    "value_to_ranking",
]
