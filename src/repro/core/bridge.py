"""Bridge between retrieval results and the object algebra.

The paper's Step 2 motivates inter-object optimization with exactly
this pattern: *"Ranking of documents in a list results often in
similar nested operators/structures which are typically defined in
different extensions.  However, ... ranking a list of documents is the
core business of content based retrieval DBMSs."*

:func:`ranking_to_value` lifts a :class:`~repro.topn.result.TopNResult`
into a ``LIST<TUPLE<doc: int, score: float>>`` algebra value, so ranked
retrieval output can be post-processed with ordinary algebra
expressions (score-range selects, re-cuts, projections) — and those
expressions go through the same three-layer optimizer as everything
else.  :func:`value_to_ranking` converts back.
"""

from __future__ import annotations

from ..algebra.types import FLOAT, INT, ListType, TupleType
from ..algebra.values import CollectionValue
from ..errors import AlgebraTypeError
from ..storage.bat import BAT
from ..topn.result import RankedItem, TopNResult

#: the element type of ranked-result values
RANKING_ELEMENT = TupleType.of(doc=INT, score=FLOAT)
#: the structure type of ranked-result values
RANKING_TYPE = ListType(RANKING_ELEMENT)


def ranking_to_value(result: TopNResult) -> CollectionValue:
    """Lift a top-N result into a ``LIST<TUPLE<doc, score>>`` value.

    The LIST order is the ranking order; the score column is marked
    descending-sorted so order-aware operators (prefix top-N) apply.
    """
    import numpy as np

    docs = np.asarray([item.obj_id for item in result.items], dtype=np.int64)
    scores = np.asarray([item.score for item in result.items], dtype=np.float64)
    return CollectionValue(
        RANKING_TYPE,
        {
            "doc": BAT(docs),
            "score": BAT(scores, tail_sorted_desc=True),
        },
    )


def value_to_ranking(value: CollectionValue, n_requested: int | None = None,
                     strategy: str = "algebra", safe: bool = True) -> TopNResult:
    """Convert a ``LIST<TUPLE<doc, score>>`` value back to a result.

    The value must be score-descending (i.e. still a ranking); raises
    otherwise so silent mis-use is impossible.
    """
    if value.stype != RANKING_TYPE:
        raise AlgebraTypeError(
            f"expected {RANKING_TYPE}, got {value.stype}"
        )
    rows = list(value.iter_elements())
    scores = [row["score"] for row in rows]
    if any(a < b for a, b in zip(scores, scores[1:])):
        raise AlgebraTypeError("value is not score-descending; not a ranking")
    items = [RankedItem(int(row["doc"]), float(row["score"])) for row in rows]
    return TopNResult(items, n_requested if n_requested is not None else len(items),
                      strategy, safe)
