"""Configuration for the MMDatabase facade."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError


@dataclass
class DatabaseConfig:
    """Tunables of an :class:`~repro.core.database.MMDatabase`.

    Attributes
    ----------
    model:
        Ranking model name (``tfidf`` / ``bm25`` / ``lm``).
    model_params:
        Keyword parameters for the model constructor.
    fragment_volume_cut:
        Postings-volume share assigned to the large fragment when
        fragmenting (the paper's 0.95).
    switch_sensitivity:
        Quality-check sensitivity for the safe switching strategy.
    default_strategy:
        Strategy name used by ``search`` when none is given:
        ``auto``, ``unfragmented``, ``unsafe-small``, ``safe-switch``
        or ``indexed``.
    """

    model: str = "bm25"
    model_params: dict = field(default_factory=dict)
    fragment_volume_cut: float = 0.95
    switch_sensitivity: float = 0.35
    default_strategy: str = "auto"

    def validate(self) -> None:
        if not 0.0 < self.fragment_volume_cut < 1.0:
            raise ReproError(
                f"fragment_volume_cut must be in (0, 1), got {self.fragment_volume_cut}"
            )
        if self.switch_sensitivity < 0:
            raise ReproError(
                f"switch_sensitivity must be non-negative, got {self.switch_sensitivity}"
            )
