"""Configuration for the MMDatabase facade."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError


@dataclass
class DatabaseConfig:
    """Tunables of an :class:`~repro.core.database.MMDatabase`.

    Attributes
    ----------
    model:
        Ranking model name (``tfidf`` / ``bm25`` / ``lm``).
    model_params:
        Keyword parameters for the model constructor.
    fragment_volume_cut:
        Postings-volume share assigned to the large fragment when
        fragmenting (the paper's 0.95).
    switch_sensitivity:
        Quality-check sensitivity for the safe switching strategy.
    default_strategy:
        Strategy name used by ``search`` when none is given:
        ``auto``, ``unfragmented``, ``unsafe-small``, ``safe-switch``,
        ``indexed`` or ``parallel``.
    default_shards:
        Shard count used by ``shard()`` / ``strategy="parallel"`` when
        none is given; ``None`` defers to the
        ``REPRO_PARALLEL_DEFAULT_SHARDS`` environment variable.
    executor_kind:
        Executor pool flavour for parallel search: ``thread``
        (default), ``process`` or ``serial``.
    max_parallel_queries:
        Admission-control bound: concurrent parallel queries beyond
        this are rejected with ``AdmissionRejectedError``.
    cache_enabled:
        Turn on the multi-level query cache (results, resumable top-N
        state, coordinator bounds).  Off by default: cached serving
        changes the cost profile of repeated queries, which the
        cost-model experiments measure cold.
    cache_max_entries:
        LRU capacity of the query cache, in fingerprints.
    buffer_policy:
        Replacement policy installed on the process-wide buffer pool at
        database construction (``lru`` / ``slru`` / ``clock``);
        ``None`` leaves the pool untouched.
    """

    model: str = "bm25"
    model_params: dict = field(default_factory=dict)
    fragment_volume_cut: float = 0.95
    switch_sensitivity: float = 0.35
    default_strategy: str = "auto"
    default_shards: int | None = None
    executor_kind: str = "thread"
    max_parallel_queries: int = 8
    cache_enabled: bool = False
    cache_max_entries: int = 64
    buffer_policy: str | None = None

    def validate(self) -> None:
        if not 0.0 < self.fragment_volume_cut < 1.0:
            raise ReproError(
                f"fragment_volume_cut must be in (0, 1), got {self.fragment_volume_cut}"
            )
        if self.switch_sensitivity < 0:
            raise ReproError(
                f"switch_sensitivity must be non-negative, got {self.switch_sensitivity}"
            )
        if self.default_shards is not None and self.default_shards < 1:
            raise ReproError(
                f"default_shards must be positive, got {self.default_shards}"
            )
        if self.executor_kind not in ("serial", "thread", "process"):
            raise ReproError(
                f"executor_kind must be serial/thread/process, got {self.executor_kind!r}"
            )
        if self.max_parallel_queries < 1:
            raise ReproError(
                f"max_parallel_queries must be positive, got {self.max_parallel_queries}"
            )
        if self.cache_max_entries < 1:
            raise ReproError(
                f"cache_max_entries must be positive, got {self.cache_max_entries}"
            )
        if self.buffer_policy is not None:
            from ..storage.policies import POLICIES

            if self.buffer_policy not in POLICIES:
                raise ReproError(
                    f"buffer_policy must be one of {sorted(POLICIES)}, "
                    f"got {self.buffer_policy!r}"
                )
