"""The MMDatabase facade: one object tying the whole system together.

This is the integrated MM retrieval DBMS the paper's research aims at:
text content (inverted index + ranking models + Zipf fragmentation),
multimedia feature spaces (Fagin-family multi-source top-N), and
alphanumeric attributes (STOP AFTER over attribute predicates) — all
over one storage kernel with one cost accounting.

Typical use::

    collection = SyntheticCollection.generate(n_docs=2000, seed=7)
    db = MMDatabase.from_collection(collection)
    db.fragment()                      # enable Step-1 strategies
    hits = db.search("zipf ranking", n=10, strategy="indexed")

    db.add_feature_space(color_histograms(len(collection), seed=1))
    hits = db.feature_search({"color": query_vector}, n=10, algorithm="ta")
"""

from __future__ import annotations

import time

import numpy as np

from ..cache import (
    CoordinatorBounds,
    QueryCache,
    ReplayLog,
    replayed_total,
    sources_fingerprint,
    text_fingerprint,
    wrap_sources,
)
from ..cache.fingerprint import source_token
from ..errors import ReproError, TopNError, WorkloadError
from ..fragmentation import FragmentedExecutor, QualityCheck, Strategy, fragment_by_volume
from ..ir.analysis import Analyzer, DEFAULT_ANALYZER
from ..ir.documents import Collection
from ..ir.invindex import InvertedIndex
from ..ir.ranking import make_model
from ..mm.features import FeatureSpace
from ..mm.sources import PostingsSource, feature_source
from ..obs import tracer
from ..storage.bat import BAT
from ..storage.stats import CostCounter
from ..topn import (
    SUM,
    combined_topn,
    conjunctive_topn,
    fagin_topn,
    naive_topn,
    nra_topn,
    stop_after_filter,
    threshold_topn,
)
from ..topn.result import TopNResult
from .config import DatabaseConfig
from .session import SearchResult

_ALGORITHMS = {
    "fa": fagin_topn,
    "ta": threshold_topn,
    "nra": nra_topn,
    "ca": combined_topn,
}

#: engines whose reported scores are independent of the requested depth,
#: so a cached top-m answers any top-n with n <= m (see repro.cache);
#: NRA/CA report termination-depth-dependent lower bounds and are
#: served for exact-n repeats or resumed by access replay instead
_PREFIX_SAFE_ALGORITHMS = frozenset({"fa", "ta"})

#: text strategies whose ranking is independent of n (exact engines and
#: the fragment-restricted unsafe one); safe-switch picks its execution
#: path based on an n-dependent quality check, so only exact-n repeats
#: are served for it
_PREFIX_SAFE_STRATEGIES = frozenset(
    {"naive", "unfragmented", "unsafe-small", "indexed"})


class MMDatabase:
    """An in-process multimedia retrieval database."""

    def __init__(self, collection: Collection, index: InvertedIndex,
                 config: DatabaseConfig | None = None) -> None:
        self.collection = collection
        self.index = index
        self.config = config or DatabaseConfig()
        self.config.validate()
        self.model = make_model(self.config.model, **self.config.model_params)
        self.fragmented = None
        self._executor: FragmentedExecutor | None = None
        self.sharded = None
        self._pool = None
        self.feature_spaces: dict[str, FeatureSpace] = {}
        self.attributes: dict[str, BAT] = {}
        #: corpus epoch: bumped by every mutation that can change scores
        #: (fragmenting, sharding, attribute/feature registration) —
        #: cache keys embed it, so stale entries can never hit
        self.epoch = 0
        self.cache: QueryCache | None = (
            QueryCache(self.config.cache_max_entries)
            if self.config.cache_enabled else None)
        if self.config.buffer_policy is not None:
            from ..storage.buffer import get_buffer_manager

            get_buffer_manager().set_policy(self.config.buffer_policy)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_collection(cls, collection: Collection,
                        config: DatabaseConfig | None = None) -> "MMDatabase":
        """Build a database (index included) from a collection."""
        return cls(collection, InvertedIndex.build(collection), config)

    @classmethod
    def from_texts(cls, texts: list[str], analyzer: Analyzer | None = None,
                   config: DatabaseConfig | None = None) -> "MMDatabase":
        """Build a database from raw text documents."""
        index, collection = InvertedIndex.from_texts(texts, analyzer or DEFAULT_ANALYZER)
        return cls(collection, index, config)

    # -- content registration ---------------------------------------------------

    def _bump_epoch(self) -> None:
        """Advance the corpus epoch and garbage-collect stale cache
        entries (they could never hit anyway — the epoch is part of
        every fingerprint)."""
        self.epoch += 1
        if self.cache is not None:
            self.cache.invalidate_below_epoch(self.epoch)

    def fragment(self, volume_cut: float | None = None) -> None:
        """Fragment the inverted file (paper Step 1); enables the
        ``unsafe-small`` / ``safe-switch`` / ``indexed`` strategies."""
        cut = volume_cut if volume_cut is not None else self.config.fragment_volume_cut
        self.fragmented = fragment_by_volume(self.index, volume_cut=cut)
        self._executor = FragmentedExecutor(
            self.fragmented, self.model,
            QualityCheck(sensitivity=self.config.switch_sensitivity),
        )
        self._bump_epoch()

    def shard(self, shards: int | None = None,
              boundaries: list[int] | None = None,
              balance: str = "docs") -> None:
        """Partition the index into document-range shards (enables the
        ``parallel`` strategy).  ``shards`` defaults to the config's
        ``default_shards``, falling back to the
        ``REPRO_PARALLEL_DEFAULT_SHARDS`` environment variable."""
        from ..parallel import default_shard_count, shard_index

        if shards is None and boundaries is None:
            shards = self.config.default_shards or default_shard_count(fallback=2)
        self.sharded = shard_index(self.index, shards=shards,
                                   boundaries=boundaries, balance=balance)
        self._bump_epoch()

    def _parallel_pool(self):
        from ..parallel import ExecutorPool

        if self._pool is None:
            self._pool = ExecutorPool(
                workers=4, kind=self.config.executor_kind,
                max_queries=self.config.max_parallel_queries,
            )
        return self._pool

    def close(self) -> None:
        """Shut down the parallel executor pool, if one was started."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def add_feature_space(self, space: FeatureSpace, name: str | None = None) -> None:
        """Register a multimedia feature space over the documents."""
        if space.n_objects != self.collection.n_docs:
            raise WorkloadError(
                f"feature space covers {space.n_objects} objects, "
                f"collection has {self.collection.n_docs}"
            )
        self.feature_spaces[name or space.name] = space
        self._bump_epoch()

    def set_attribute(self, name: str, values) -> None:
        """Register an alphanumeric attribute column over documents."""
        values = np.asarray(values)
        if len(values) != self.collection.n_docs:
            raise WorkloadError(
                f"attribute {name!r} has {len(values)} values for "
                f"{self.collection.n_docs} documents"
            )
        self.attributes[name] = BAT(values, name=f"attr_{name}", persistent=True)
        self._bump_epoch()

    # -- text search ----------------------------------------------------------

    def _terms_to_tids(self, query) -> list[int]:
        if isinstance(query, str):
            terms = query.split()
        else:
            terms = list(query)
        tids = []
        for term in terms:
            if isinstance(term, (int, np.integer)):
                tids.append(int(term))
            elif term in self.index.vocabulary:
                tids.append(self.index.vocabulary.term_id(term))
        return tids

    def _resolve_strategy(self, strategy) -> Strategy | None:
        """None means plain naive evaluation on the full index."""
        if isinstance(strategy, Strategy):
            return strategy
        name = strategy or self.config.default_strategy
        if name == "auto":
            if self._executor is None:
                return None
            return Strategy.INDEXED
        if name in ("naive", "unfragmented"):
            return Strategy.UNFRAGMENTED if self._executor else None
        for member in Strategy:
            if member.value == name:
                return member
        raise ReproError(f"unknown search strategy {name!r}")

    def search(self, query, n: int = 10, strategy=None,
               attr_filter: tuple[str, object, object] | None = None,
               mode: str = "any") -> SearchResult:
        """Top-``n`` text search.

        ``query`` is a string (whitespace-split; unknown terms are
        ignored) or a list of term strings / term ids.  ``attr_filter``
        = ``(attribute, lo, hi)`` restricts results to documents whose
        attribute lies in the range, executed with the STOP AFTER
        machinery over the score stream.  ``mode="all"`` requires every
        query term (Boolean AND + ranking; naive evaluation only).
        """
        if mode not in ("any", "all"):
            raise ReproError(f"unknown query mode {mode!r}; have any/all")
        tids = self._terms_to_tids(query)
        name = strategy if strategy is not None else self.config.default_strategy
        if name == "parallel":
            return self._parallel_search(tids, n)
        resolved = self._resolve_strategy(strategy)
        fingerprint = None
        label = "naive" if resolved is None else resolved.value
        if self.cache is not None and mode == "any" and attr_filter is None:
            fingerprint = text_fingerprint(tids, self.model.name, self.epoch,
                                           strategy=label)
            with tracer.span("cache.lookup", kind="text", n=n):
                served, _entry = self.cache.lookup(fingerprint, n)
                tracer.annotate(hit=served is not None)
            if served is not None:
                started = time.perf_counter()
                with CostCounter.activate() as cost:
                    pass  # a cache hit charges no cost-model operations
                elapsed = time.perf_counter() - started
                return SearchResult(served, tids, cost, elapsed, self.collection)
        started = time.perf_counter()
        with CostCounter.activate() as cost:
            if mode == "all":
                result = conjunctive_topn(self.index, tids, self.model, n)
            elif attr_filter is not None:
                result = self._search_with_attr_filter(tids, n, resolved, attr_filter)
            elif resolved is None:
                result = naive_topn(self.index, tids, self.model, n)
            else:
                if self._executor is None:
                    raise ReproError("database is not fragmented; call fragment() "
                                     "or use strategy='naive'")
                result = self._executor.query(tids, n, resolved)
        elapsed = time.perf_counter() - started
        if fingerprint is not None:
            self.cache.store(fingerprint, n, result,
                             prefix_safe=label in _PREFIX_SAFE_STRATEGIES,
                             complete=len(result.items) < n)
        return SearchResult(result, tids, cost, elapsed, self.collection)

    def _parallel_search(self, tids, n) -> SearchResult:
        """Sharded parallel execution: admission-controlled, certified
        distributed top-N (auto-shards on first use).

        With the cache enabled, a warm repeat is served outright and a
        cold run seeds/reuses :class:`~repro.cache.CoordinatorBounds`:
        cached per-shard thresholds preclude shards and prune round-2
        probes on the next, deeper run of the same query."""
        from ..parallel import parallel_topn

        if self.sharded is None:
            self.shard()
        fingerprint = None
        entry = None
        if self.cache is not None:
            fingerprint = text_fingerprint(
                tids, self.model.name, self.epoch, strategy="parallel",
                shard_layout=tuple(self.sharded.boundaries))
            with tracer.span("cache.lookup", kind="parallel", n=n):
                served, entry = self.cache.lookup(fingerprint, n)
                tracer.annotate(hit=served is not None)
            if served is not None:
                started = time.perf_counter()
                with CostCounter.activate() as cost:
                    pass  # a cache hit charges no cost-model operations
                elapsed = time.perf_counter() - started
                return SearchResult(served, tids, cost, elapsed, self.collection)
        bounds = None
        if fingerprint is not None:
            bounds = (entry.bounds if entry is not None and entry.bounds is not None
                      else CoordinatorBounds(epoch=self.epoch))
            if not bounds.seedable_at(self.epoch):
                # stale epoch stamp: the fingerprint embeds the epoch, so
                # this cannot happen through the cache path — but a bound
                # object must never seed across epochs (MOA905's runtime
                # twin), so start fresh rather than trust it
                bounds = CoordinatorBounds(epoch=self.epoch)
        pool = self._parallel_pool()
        started = time.perf_counter()
        with CostCounter.activate() as cost:
            with pool.admit():
                result = parallel_topn(self.sharded, tids, self.model, n,
                                       pool=pool, bounds=bounds,
                                       epoch=self.epoch)
        elapsed = time.perf_counter() - started
        if fingerprint is not None and result.certified:
            self.cache.store(fingerprint, n, result, prefix_safe=True,
                             complete=len(result.items) < n, bounds=bounds)
        return SearchResult(result, tids, cost, elapsed, self.collection)

    def _search_with_attr_filter(self, tids, n, resolved, attr_filter) -> TopNResult:
        name, lo, hi = attr_filter
        if name not in self.attributes:
            raise WorkloadError(f"unknown attribute {name!r}; have {sorted(self.attributes)}")
        # score the candidates, then apply the Carey-Kossmann
        # stop/filter plan over the (score, attribute) pair
        from ..ir.ranking import score_all
        from ..storage import kernel
        from ..topn.result import RankedItem

        scores_sparse = score_all(self.index, tids, self.model)
        candidates = scores_sparse.head_array()
        attr_values = kernel.fetch_values(self.attributes[name], candidates)
        result = stop_after_filter(
            BAT(scores_sparse.tail), BAT(attr_values), n, lo, hi, policy="aggressive"
        )
        # map candidate positions back to document ids
        items = [RankedItem(int(candidates[item.obj_id]), item.score)
                 for item in result.items]
        return TopNResult(items, n, result.strategy, result.safe, result.stats)

    # -- multimedia search ---------------------------------------------------------

    def _run_multisource(self, sources, n, algorithm, agg, kind):
        """Run a Fagin-family engine through the cache, when enabled.

        Per-algorithm reuse (see :mod:`repro.cache`): TA resumes from a
        saved frontier; NRA/CA replay memoized source accesses (their
        lower-bound scores depend on termination depth, so re-running
        the exact algorithm over replayed accesses is the only
        bit-identical warm path); FA is prefix-safe, so its results are
        served from cache but carry no resume state.
        """
        engine = _ALGORITHMS[algorithm]
        if self.cache is None:
            return engine(sources, n, agg)
        fingerprint = sources_fingerprint(sources, agg.name, self.epoch,
                                          algorithm, kind=kind)
        with tracer.span("cache.lookup", kind=kind, n=n):
            served, entry = self.cache.lookup(fingerprint, n)
            tracer.annotate(hit=served is not None)
        if served is not None:
            return served
        if algorithm == "ta":
            resume = entry.resume if entry is not None else None
            if resume is not None and n >= resume.n:
                result = threshold_topn(sources, n, agg, resume_from=resume,
                                        capture_state=True)
                self.cache.note_resume()
            else:
                result = threshold_topn(sources, n, agg, capture_state=True)
            self.cache.store(fingerprint, n, result, prefix_safe=True,
                             complete=len(result.items) < n,
                             resume=result.stats.pop("resume_state", None))
            return result
        if algorithm in ("nra", "ca"):
            logs = entry.replay_logs if entry is not None else None
            fresh_logs = logs is None
            if fresh_logs:
                logs = tuple(ReplayLog(source_token(s)) for s in sources)
            wrapped = wrap_sources(sources, logs)
            result = engine(wrapped, n, agg)
            if not fresh_logs and replayed_total(wrapped):
                self.cache.note_resume()
            result.stats["replayed_accesses"] = replayed_total(wrapped)
            # a run that exhausts the corpus ranks every object with
            # exact (depth-independent) scores: complete is safe
            self.cache.store(fingerprint, n, result, prefix_safe=False,
                             complete=len(result.items) < n, replay_logs=logs)
            return result
        result = engine(sources, n, agg)
        self.cache.store(fingerprint, n, result, prefix_safe=True,
                         complete=len(result.items) < n)
        return result

    def feature_sources(self, queries: dict[str, np.ndarray],
                        measure: str = "l2") -> list:
        """Graded sources for a multi-feature query, one per named
        feature space — the building block :meth:`feature_search` and
        the serve layer's anytime runners share."""
        sources = []
        for name, vector in queries.items():
            if name not in self.feature_spaces:
                raise WorkloadError(f"unknown feature space {name!r}; "
                                    f"have {sorted(self.feature_spaces)}")
            sources.append(feature_source(self.feature_spaces[name],
                                          np.asarray(vector, dtype=np.float64),
                                          measure))
        return sources

    def feature_search(self, queries: dict[str, np.ndarray], n: int = 10,
                       algorithm: str = "ta", agg=SUM,
                       measure: str = "l2") -> SearchResult:
        """Multi-feature top-``n``: one graded source per feature query,
        combined with a Fagin-family algorithm."""
        if algorithm not in _ALGORITHMS:
            raise TopNError(f"unknown algorithm {algorithm!r}; have {sorted(_ALGORITHMS)}")
        sources = self.feature_sources(queries, measure)
        started = time.perf_counter()
        with CostCounter.activate() as cost:
            result = self._run_multisource(sources, n, algorithm, agg,
                                           kind="feature")
        elapsed = time.perf_counter() - started
        return SearchResult(result, [], cost, elapsed, self.collection)

    def combined_search(self, text_query, feature_queries: dict[str, np.ndarray],
                        n: int = 10, algorithm: str = "ta", agg=SUM,
                        measure: str = "l2") -> SearchResult:
        """Integrated content query: text terms and feature similarity
        as one multi-source top-N (the paper's target scenario —
        "integrated top N queries on several content and alpha
        numerical types")."""
        if algorithm not in _ALGORITHMS:
            raise TopNError(f"unknown algorithm {algorithm!r}; have {sorted(_ALGORITHMS)}")
        sources = []
        tids = self._terms_to_tids(text_query)
        for tid in tids:
            sources.append(PostingsSource(self.index, tid, self.model))
        for name, vector in feature_queries.items():
            if name not in self.feature_spaces:
                raise WorkloadError(f"unknown feature space {name!r}")
            space = self.feature_spaces[name]
            # scale text-partial magnitudes and similarities comparably
            raw = feature_source(space, vector, measure)
            sources.append(raw)
        if not sources:
            raise TopNError("combined_search needs at least one source")
        started = time.perf_counter()
        with CostCounter.activate() as cost:
            result = self._run_multisource(sources, n, algorithm, agg,
                                           kind="combined")
        elapsed = time.perf_counter() - started
        return SearchResult(result, tids, cost, elapsed, self.collection)

    # -- persistence -------------------------------------------------------------

    def save(self, directory) -> None:
        """Persist the database (index, vocabulary, attributes, feature
        spaces, config) under ``directory``.

        Document *content* is not stored — like any IR system, the
        inverted index plus vocabulary is the searchable database; a
        loaded database answers queries identically but cannot re-render
        document text.
        """
        import json
        from pathlib import Path

        from ..storage.catalog import Catalog

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        catalog = Catalog()
        catalog.register("postings_terms", self.index.postings_terms)
        catalog.register("postings_docs", self.index.postings_docs)
        catalog.register("postings_tf", self.index.postings_tf)
        catalog.register("doc_lengths", self.index.doc_lengths)
        for name, bat in self.attributes.items():
            catalog.register(f"attr_{name}", bat)
        catalog.save(directory / "bats")
        np.save(directory / "offsets.npy", self.index.offsets)
        np.savez(
            directory / "vocabulary.npz",
            df=self.index.vocabulary.df_array(),
            cf=self.index.vocabulary.cf_array(),
        )
        with open(directory / "terms.txt", "w") as fh:
            fh.write("\n".join(self.index.vocabulary.terms()))
        for name, space in self.feature_spaces.items():
            np.savez(directory / f"feature_{name}.npz", vectors=space.vectors,
                     cluster_of=(space.cluster_of
                                 if space.cluster_of is not None else np.empty(0)))
        manifest = {
            "n_docs": self.collection.n_docs,
            "name": self.collection.name,
            "model": self.config.model,
            "model_params": self.config.model_params,
            "fragment_volume_cut": self.config.fragment_volume_cut,
            "switch_sensitivity": self.config.switch_sensitivity,
            "default_strategy": self.config.default_strategy,
            "attributes": sorted(self.attributes),
            "feature_spaces": sorted(self.feature_spaces),
            "fragmented": self.fragmented is not None,
        }
        with open(directory / "database.json", "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, directory) -> "MMDatabase":
        """Load a database saved with :meth:`save`.

        The loaded database answers queries identically (same index,
        vocabulary, model, attributes, feature spaces); fragmentation
        is re-derived when the saved database was fragmented.
        """
        import json
        from pathlib import Path

        from ..ir.documents import Collection, Document
        from ..ir.vocabulary import Vocabulary
        from ..storage.catalog import Catalog

        directory = Path(directory)
        with open(directory / "database.json") as fh:
            manifest = json.load(fh)
        catalog = Catalog.load(directory / "bats")
        with open(directory / "terms.txt") as fh:
            term_strings = fh.read().split("\n") if fh else []
        vocab_arrays = np.load(directory / "vocabulary.npz")
        vocabulary = Vocabulary()
        vocabulary._id_to_term = term_strings
        vocabulary._term_to_id = {t: i for i, t in enumerate(term_strings)}
        vocabulary._df = vocab_arrays["df"].tolist()
        vocabulary._cf = vocab_arrays["cf"].tolist()
        offsets = np.load(directory / "offsets.npy")
        index = InvertedIndex(
            catalog.get("postings_terms"),
            catalog.get("postings_docs"),
            catalog.get("postings_tf"),
            offsets,
            catalog.get("doc_lengths"),
            vocabulary,
        )
        # placeholder documents: content is not persisted (see save)
        documents = [Document(i, np.empty(0, dtype=np.int64))
                     for i in range(manifest["n_docs"])]
        collection = Collection(documents, term_strings, name=manifest["name"])
        config = DatabaseConfig(
            model=manifest["model"],
            model_params=manifest["model_params"],
            fragment_volume_cut=manifest["fragment_volume_cut"],
            switch_sensitivity=manifest["switch_sensitivity"],
            default_strategy=manifest["default_strategy"],
        )
        db = cls(collection, index, config)
        for name in manifest["attributes"]:
            db.attributes[name] = catalog.get(f"attr_{name}")
        for name in manifest["feature_spaces"]:
            arrays = np.load(directory / f"feature_{name}.npz")
            cluster_of = arrays["cluster_of"]
            db.feature_spaces[name] = FeatureSpace(
                name, arrays["vectors"],
                cluster_of if len(cluster_of) else None,
            )
        if manifest["fragmented"]:
            db.fragment()
        return db

    # -- introspection ---------------------------------------------------------------

    def stats(self) -> dict:
        """Sizing statistics of the database."""
        out = {
            "n_docs": self.collection.n_docs,
            "n_terms": self.index.n_terms,
            "total_postings": self.index.total_postings(),
            "avg_doc_length": self.index.avg_dl,
            "model": self.model.name,
            "feature_spaces": sorted(self.feature_spaces),
            "attributes": sorted(self.attributes),
            "fragmented": self.fragmented is not None,
        }
        if self.fragmented is not None:
            out["small_volume_share"] = self.fragmented.small_volume_share()
            out["small_vocabulary_share"] = self.fragmented.small_vocabulary_share()
        if self.sharded is not None:
            out["shards"] = self.sharded.n_shards
            out["shard_skew"] = self.sharded.skew()
        return out
