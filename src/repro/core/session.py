"""Search results and measurement sessions.

:class:`SearchResult` decorates a :class:`~repro.topn.result.TopNResult`
with the cost snapshot and wall time of the query.  :class:`QuerySession`
batches a query set through a database under one strategy and
aggregates cost and quality — the workhorse of the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..quality import average_precision, mean_over_queries, overlap_at, precision_at
from ..storage.stats import CostCounter
from ..topn.result import TopNResult


@dataclass
class SearchResult:
    """One query's answer plus its measured cost."""

    result: TopNResult
    term_ids: list[int]
    cost: CostCounter
    elapsed_seconds: float
    collection: object = None

    @property
    def hits(self):
        return self.result.items

    @property
    def doc_ids(self) -> list[int]:
        return self.result.doc_ids

    @property
    def safe(self) -> bool:
        return self.result.safe

    def __len__(self) -> int:
        return len(self.result)

    def terms(self) -> list[str]:
        """Query terms as strings (when a collection is attached)."""
        if self.collection is None:
            return [str(t) for t in self.term_ids]
        return [self.collection.term_strings[t] for t in self.term_ids]

    def describe(self) -> str:
        lines = [
            f"strategy={self.result.strategy} safe={self.result.safe} "
            f"n={len(self.result)} time={self.elapsed_seconds * 1000:.1f}ms "
            f"tuples_read={self.cost.tuples_read} pages={self.cost.page_reads}"
        ]
        for rank, item in enumerate(self.result, start=1):
            lines.append(f"  {rank:>3}. doc {item.obj_id:<8} score {item.score:.4f}")
        return "\n".join(lines)


@dataclass
class SessionReport:
    """Aggregated measurements of one strategy over a query set."""

    strategy: str
    n_queries: int
    total_cost: CostCounter
    total_seconds: float
    mean_average_precision: float | None = None
    mean_precision_at_n: float | None = None
    mean_overlap_vs_reference: float | None = None
    per_query: list[dict] = field(default_factory=list)

    @property
    def tuples_read(self) -> int:
        return self.total_cost.tuples_read

    @property
    def page_reads(self) -> int:
        return self.total_cost.page_reads

    @property
    def modeled_seconds(self) -> float:
        """Deterministic modeled execution time (see
        :meth:`repro.storage.stats.CostCounter.modeled_seconds`)."""
        return self.total_cost.modeled_seconds()


class QuerySession:
    """Runs a query set against a database and measures it."""

    def __init__(self, database) -> None:
        self.database = database

    def run(
        self,
        query_set,
        n: int = 20,
        strategy=None,
        reference_rankings: dict[int, list[int]] | None = None,
        cold_buffer: bool = True,
    ) -> SessionReport:
        """Execute every query; aggregate cost, wall time and quality.

        ``reference_rankings`` (query id → exact top doc ids) enables
        the overlap metric against a reference strategy.
        ``cold_buffer`` (default) flushes the simulated buffer pool
        before the run so strategies are compared from the same cold
        state regardless of what ran before; queries within the run
        still warm the pool for each other, as in a real system.
        """
        if cold_buffer:
            from ..storage.buffer import get_buffer_manager

            get_buffer_manager().flush()
        total_cost = CostCounter()
        total_seconds = 0.0
        aps, pns, overlaps = [], [], []
        per_query = []
        strategy_name = None
        for query in query_set:
            result = self.database.search(list(query.term_ids), n=n, strategy=strategy)
            strategy_name = result.result.strategy
            total_cost.add(result.cost)
            total_seconds += result.elapsed_seconds
            relevant = query_set.relevant(query.query_id)
            entry = {
                "query_id": query.query_id,
                "tuples_read": result.cost.tuples_read,
                "elapsed": result.elapsed_seconds,
            }
            if relevant:
                entry["average_precision"] = average_precision(result.doc_ids, relevant, cutoff=n)
                entry["precision_at_n"] = precision_at(result.doc_ids, relevant, n)
                aps.append(entry["average_precision"])
                pns.append(entry["precision_at_n"])
            if reference_rankings is not None:
                entry["overlap"] = overlap_at(
                    result.doc_ids, reference_rankings[query.query_id], n
                )
                overlaps.append(entry["overlap"])
            per_query.append(entry)
        return SessionReport(
            strategy=strategy_name or str(strategy),
            n_queries=len(per_query),
            total_cost=total_cost,
            total_seconds=total_seconds,
            mean_average_precision=mean_over_queries(aps) if aps else None,
            mean_precision_at_n=mean_over_queries(pns) if pns else None,
            mean_overlap_vs_reference=mean_over_queries(overlaps) if overlaps else None,
            per_query=per_query,
        )

    def reference_rankings(self, query_set, n: int = 20) -> dict[int, list[int]]:
        """Exact (naive) top-n doc ids per query, as overlap reference."""
        out = {}
        for query in query_set:
            result = self.database.search(list(query.term_ids), n=n, strategy="naive")
            out[query.query_id] = result.doc_ids
        return out
