"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the most specific
subclass that applies; the hierarchy mirrors the package layout
(storage, algebra, optimizer, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class StorageError(ReproError):
    """Base class for errors raised by the binary-table storage kernel."""


class BATTypeError(StorageError):
    """An operation received a BAT whose column type it cannot handle."""


class BATShapeError(StorageError):
    """Head and tail columns of a BAT disagree in length, or an
    operation received BATs of incompatible cardinalities."""


class CatalogError(StorageError):
    """A named BAT was not found in, or conflicts with, the catalog."""


class BufferError_(StorageError):
    """The simulated buffer manager was configured or used incorrectly."""


class IndexError_(StorageError):
    """A (non-)dense index was built over or probed with invalid data."""


class AlgebraError(ReproError):
    """Base class for errors raised by the structured object algebra."""


class AlgebraTypeError(AlgebraError):
    """A structure expression is ill-typed (e.g. ``select`` applied to
    an ATOMIC value, or operator arity mismatch)."""


class UnknownOperatorError(AlgebraError):
    """An expression refers to an operator no extension provides."""


class UnknownExtensionError(AlgebraError):
    """An expression refers to a structure/extension that has not been
    registered with the extension registry."""


class ParseError(AlgebraError):
    """The textual algebra parser could not parse its input."""


class EvaluationError(AlgebraError):
    """A well-formed expression failed during physical evaluation."""


class OptimizerError(ReproError):
    """Base class for errors raised by the optimizer layers."""


class RewriteError(OptimizerError):
    """A rewrite rule produced an invalid or ill-typed expression."""


class CostModelError(OptimizerError):
    """The cost model was asked to cost an unknown operator shape."""


class CalibrationError(OptimizerError):
    """A calibration file or trace record could not be used (unknown
    schema version, damaged payload, empty store)."""


class TopNError(ReproError):
    """Base class for errors raised by top-N operator implementations."""


class SourceExhaustedError(TopNError):
    """A sorted/random access source was read past its end where the
    algorithm required more input."""


class ParallelError(TopNError):
    """Base class for errors raised by the sharded parallel execution
    engine (:mod:`repro.parallel`)."""


class ShardingError(ParallelError):
    """A sharder received an invalid shard count or shard boundaries."""


class AdmissionRejectedError(ParallelError):
    """Admission control rejected a query: the executor pool already
    runs its maximum number of in-flight queries, or the shard-task
    queue bound would be exceeded.  Raised *instead of* queueing —
    rejection is explicit, never silent."""


class QueryCancelledError(ParallelError):
    """A parallel query was cancelled before its result was resolved."""


class ServeError(ReproError):
    """Base class for errors raised by the query service layer
    (:mod:`repro.serve`)."""


class ProtocolError(ServeError):
    """A wire frame was malformed: bad length prefix, oversized frame,
    invalid JSON, or a request missing required fields."""


class QuotaExceededError(ServeError):
    """A tenant exceeded its token-bucket rate or concurrency quota.

    The rejection is explicit and retryable — ``retry_after`` (seconds,
    possibly 0.0) hints when the bucket will hold a token again.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ResumeTokenError(ServeError):
    """A resume token could not be redeemed: unknown/expired token, a
    session already being served, or a corpus-epoch mismatch (the
    MOA1002 condition — resuming across epochs could serve stale
    frontiers as fresh answers).

    ``diagnostic`` carries the MOA diagnostic when one applies.
    """

    def __init__(self, message: str, code: str = "resume_unknown",
                 diagnostic=None) -> None:
        super().__init__(message)
        self.code = code
        self.diagnostic = diagnostic


class WorkloadError(ReproError):
    """A workload/collection generator received invalid parameters."""


class QualityError(ReproError):
    """A retrieval-quality metric received inconsistent rankings or
    relevance judgments."""
