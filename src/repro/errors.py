"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the most specific
subclass that applies; the hierarchy mirrors the package layout
(storage, algebra, optimizer, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class StorageError(ReproError):
    """Base class for errors raised by the binary-table storage kernel."""


class BATTypeError(StorageError):
    """An operation received a BAT whose column type it cannot handle."""


class BATShapeError(StorageError):
    """Head and tail columns of a BAT disagree in length, or an
    operation received BATs of incompatible cardinalities."""


class CatalogError(StorageError):
    """A named BAT was not found in, or conflicts with, the catalog."""


class BufferError_(StorageError):
    """The simulated buffer manager was configured or used incorrectly."""


class IndexError_(StorageError):
    """A (non-)dense index was built over or probed with invalid data."""


class AlgebraError(ReproError):
    """Base class for errors raised by the structured object algebra."""


class AlgebraTypeError(AlgebraError):
    """A structure expression is ill-typed (e.g. ``select`` applied to
    an ATOMIC value, or operator arity mismatch)."""


class UnknownOperatorError(AlgebraError):
    """An expression refers to an operator no extension provides."""


class UnknownExtensionError(AlgebraError):
    """An expression refers to a structure/extension that has not been
    registered with the extension registry."""


class ParseError(AlgebraError):
    """The textual algebra parser could not parse its input."""


class EvaluationError(AlgebraError):
    """A well-formed expression failed during physical evaluation."""


class OptimizerError(ReproError):
    """Base class for errors raised by the optimizer layers."""


class RewriteError(OptimizerError):
    """A rewrite rule produced an invalid or ill-typed expression."""


class CostModelError(OptimizerError):
    """The cost model was asked to cost an unknown operator shape."""


class TopNError(ReproError):
    """Base class for errors raised by top-N operator implementations."""


class SourceExhaustedError(TopNError):
    """A sorted/random access source was read past its end where the
    algorithm required more input."""


class ParallelError(TopNError):
    """Base class for errors raised by the sharded parallel execution
    engine (:mod:`repro.parallel`)."""


class ShardingError(ParallelError):
    """A sharder received an invalid shard count or shard boundaries."""


class AdmissionRejectedError(ParallelError):
    """Admission control rejected a query: the executor pool already
    runs its maximum number of in-flight queries, or the shard-task
    queue bound would be exceeded.  Raised *instead of* queueing —
    rejection is explicit, never silent."""


class QueryCancelledError(ParallelError):
    """A parallel query was cancelled before its result was resolved."""


class WorkloadError(ReproError):
    """A workload/collection generator received invalid parameters."""


class QualityError(ReproError):
    """A retrieval-quality metric received inconsistent rankings or
    relevance judgments."""
