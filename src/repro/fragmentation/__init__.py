"""Step 1 of the paper: Zipf-based horizontal fragmentation of the
inverted file, with unsafe, safe-switching and non-dense-indexed
execution strategies."""

from .executor import FragmentedExecutor, Strategy
from .fragmenter import FragmentedIndex, HeapFragment, fragment_by_volume
from .profiling import ProfiledFragments, profile_hits, profiled_topn
from .quality_check import QualityCheck, SwitchDecision

__all__ = [
    "FragmentedExecutor",
    "FragmentedIndex",
    "HeapFragment",
    "ProfiledFragments",
    "QualityCheck",
    "Strategy",
    "SwitchDecision",
    "fragment_by_volume",
    "profile_hits",
    "profiled_topn",
]
