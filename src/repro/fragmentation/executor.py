"""Fragment-aware query execution strategies (Step 1 of the paper).

Four strategies over one :class:`~repro.fragmentation.fragmenter.FragmentedIndex`:

``UNFRAGMENTED``
    the baseline: full index, naive evaluation;
``UNSAFE_SMALL``
    process only the small (interesting) fragment; terms living in the
    large fragment are skipped entirely.  Fast — it touches ~5% of the
    postings — but *unsafe*: answer quality drops;
``SAFE_SWITCH``
    process the small fragment, then run the early
    :class:`~repro.fragmentation.quality_check.QualityCheck`; when the
    check fires, also process the query's large-fragment terms — which
    requires *scanning* the unindexed large fragment, so quality is
    restored at a substantial speed cost;
``INDEXED``
    like SAFE_SWITCH, but the large fragment carries the paper's
    non-dense index, so the switch fetches only the needed postings —
    "extra computations while still decreasing execution time".
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import TopNError
from ..ir.ranking import ScoringModel
from ..obs import tracer
from ..storage import kernel, stats
from ..storage.bat import BAT
from ..topn.naive import naive_topn
from ..topn.result import TopNResult
from .fragmenter import FragmentedIndex
from .quality_check import QualityCheck


class Strategy(enum.Enum):
    """Fragment-aware execution strategies."""

    UNFRAGMENTED = "unfragmented"
    UNSAFE_SMALL = "unsafe-small"
    SAFE_SWITCH = "safe-switch"
    INDEXED = "indexed"


class FragmentedExecutor:
    """Executes top-N queries against a fragmented inverted file."""

    def __init__(
        self,
        fragmented: FragmentedIndex,
        model: ScoringModel,
        quality_check: QualityCheck | None = None,
    ) -> None:
        self.fragmented = fragmented
        self.model = model
        self.quality_check = quality_check or QualityCheck()
        if not fragmented.large.has_index:
            # INDEXED strategy builds it lazily on first use
            self._index_built = False
        else:
            self._index_built = True

    # -- public API ---------------------------------------------------------

    def query(self, tids: list[int], n: int, strategy: Strategy) -> TopNResult:
        """Run a top-N query under the given strategy."""
        if n <= 0:
            raise TopNError(f"n must be positive, got {n}")
        with tracer.span("frag.query", strategy=strategy.value, n=n, terms=len(tids)):
            if strategy is Strategy.UNFRAGMENTED:
                return self._unfragmented(tids, n)
            if strategy is Strategy.UNSAFE_SMALL:
                return self._unsafe_small(tids, n)
            if strategy is Strategy.SAFE_SWITCH:
                return self._with_switch(tids, n, use_index=False)
            if strategy is Strategy.INDEXED:
                return self._with_switch(tids, n, use_index=True)
        raise TopNError(f"unknown strategy {strategy!r}")

    # -- strategies ------------------------------------------------------------

    def _unfragmented(self, tids: list[int], n: int) -> TopNResult:
        result = naive_topn(self.fragmented.full, tids, self.model, n)
        result.stats["strategy"] = Strategy.UNFRAGMENTED.value
        return result

    def _small_fragment_scores(self, tids_small: list[int]) -> tuple[np.ndarray, np.ndarray]:
        """Accumulate small-fragment partial scores; returns
        (accumulator over all docs, candidate mask)."""
        index = self.fragmented.small
        with tracer.span("frag.small_fragment", terms=len(tids_small)):
            accumulator = np.zeros(index.n_docs, dtype=np.float64)
            touched = np.zeros(index.n_docs, dtype=bool)
            for tid in tids_small:
                doc_ids, tfs = index.postings(tid)
                if len(doc_ids) == 0:
                    continue
                partials = self.model.partial_scores(index, tid, doc_ids, tfs)
                np.add.at(accumulator, doc_ids, partials)
                touched[doc_ids] = True
            return accumulator, touched

    def _finish(self, accumulator, touched, n, strategy_name, extra_stats) -> TopNResult:
        candidates = np.nonzero(touched)[0]
        stats.charge_tuples_written(len(candidates))
        scores = BAT(accumulator[candidates], head=candidates.astype(np.int64), head_key=True)
        top = kernel.topn_tail(scores, n, descending=True)
        safe = strategy_name != Strategy.UNSAFE_SMALL.value
        result = TopNResult.from_bat(top, n, strategy=strategy_name, safe=safe,
                                     stats=extra_stats)
        result.stats["candidates"] = len(candidates)
        return result

    def _unsafe_small(self, tids: list[int], n: int) -> TopNResult:
        tids_small, tids_large = self.fragmented.split_query(tids)
        accumulator, touched = self._small_fragment_scores(tids_small)
        return self._finish(
            accumulator, touched, n, Strategy.UNSAFE_SMALL.value,
            {
                "strategy": Strategy.UNSAFE_SMALL.value,
                "terms_small": len(tids_small),
                "terms_skipped": len(tids_large),
            },
        )

    def _with_switch(self, tids: list[int], n: int, use_index: bool) -> TopNResult:
        tids_small, tids_large = self.fragmented.split_query(tids)
        accumulator, touched = self._small_fragment_scores(tids_small)

        # provisional N-th score for the early quality check
        positive = accumulator[touched] if touched.any() else np.empty(0)
        found = int(touched.sum())
        if found >= n:
            nth_score = float(np.partition(positive, len(positive) - n)[len(positive) - n])
        else:
            nth_score = 0.0
        with tracer.span("frag.quality_check", terms_large=len(tids_large)):
            decision = self.quality_check.decide(
                self.fragmented.full, self.model, tids_large, nth_score, found, n
            )
            tracer.annotate(switch=decision.switch, missing_mass=decision.missing_mass)

        switched = False
        if decision.switch and tids_large:
            switched = True
            with tracer.span("frag.switch", use_index=use_index,
                             terms_large=len(tids_large)):
                if use_index:
                    if not self.fragmented.large.has_index:
                        self.fragmented.large.build_sparse_index()
                    postings = self.fragmented.large.indexed_postings(tids_large)
                else:
                    postings = self.fragmented.large.scan_postings(tids_large)
                for tid, (doc_ids, tfs) in postings.items():
                    if len(doc_ids) == 0:
                        continue
                    partials = self.model.partial_scores(
                        self.fragmented.full, tid, doc_ids, tfs
                    )
                    np.add.at(accumulator, doc_ids, partials)
                    touched[doc_ids] = True

        name = Strategy.INDEXED.value if use_index else Strategy.SAFE_SWITCH.value
        result = self._finish(
            accumulator, touched, n, name,
            {
                "strategy": name,
                "terms_small": len(tids_small),
                "terms_large": len(tids_large),
                "switched": switched,
                "missing_mass": decision.missing_mass,
                "nth_score_small": decision.nth_score,
            },
        )
        # the switch makes the strategy quality-preserving *when it
        # fires*; when it does not fire it accepts the (bounded) risk —
        # the paper calls the overall technique safe because the check
        # is conservative. We report safety accordingly.
        result.safe = True
        return result
