"""Zipf-based horizontal fragmentation of the inverted file (Step 1).

The paper: *"the least frequently occurring terms are the most
interesting ones while the most frequently occurring/least interesting
terms take up most of the storage/memory space.  To take advantage of
this effect I horizontally fragmented the most important vectors in
the database.  By processing only a small portion of the data of
approximately 5% of the unfragmented size, containing the 95% most
interesting terms, I was able to speed up query processing ... with at
least 60%."*

:func:`fragment_by_volume` splits one inverted index into

* a **small fragment** — the rare, interesting majority of the
  *vocabulary* carrying a small share of the *postings volume*, stored
  fully indexed (CSR) for cheap per-term access, and
* a **large fragment** — the few frequent terms owning most of the
  postings, stored as a raw posting heap (:class:`HeapFragment`):
  per-term access requires scanning it, unless the paper's *non-dense
  index* is built on it.

Both fragments share the global vocabulary and collection statistics,
so any ranking model produces identical partial scores regardless of
which fragment a posting is read from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..ir.invindex import InvertedIndex
from ..storage import kernel, stats
from ..storage.bat import BAT
from ..storage.index import SparseIndex


class HeapFragment:
    """The large fragment: term-sorted posting triples *without* a
    per-term directory.

    Without an index, fetching one term's postings costs a scan of the
    whole fragment (this is why the paper's safe switch "lowered the
    speed also quite a lot").  :meth:`build_sparse_index` adds the
    paper's non-dense index on the term column, after which per-term
    access reads only the strides that can contain the term.
    """

    def __init__(self, terms: BAT, docs: BAT, tfs: BAT) -> None:
        self.terms = terms
        self.docs = docs
        self.tfs = tfs
        self._sparse_index: SparseIndex | None = None

    def __len__(self) -> int:
        return len(self.terms)

    @property
    def has_index(self) -> bool:
        return self._sparse_index is not None

    def build_sparse_index(self, stride: int | None = None) -> SparseIndex:
        """Build the non-dense index over the term column."""
        self._sparse_index = SparseIndex(self.terms, stride=stride)
        return self._sparse_index

    def scan_postings(self, tids: list[int]) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Postings of the requested terms by scanning the whole heap."""
        kernel.scan_cost(self.terms)
        kernel.scan_cost(self.docs)
        kernel.scan_cost(self.tfs)
        stats.charge_comparisons(len(self.terms) * max(len(tids), 1))
        out = {}
        for tid in tids:
            mask = self.terms.tail == tid
            out[tid] = (self.docs.tail[mask], self.tfs.tail[mask])
        return out

    def indexed_postings(self, tids: list[int]) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Postings of the requested terms through the non-dense index
        (raises unless :meth:`build_sparse_index` was called)."""
        if self._sparse_index is None:
            raise WorkloadError("large fragment has no non-dense index; "
                                "call build_sparse_index() first")
        out = {}
        for tid in tids:
            hits = self._sparse_index.lookup_eq(tid)
            positions = hits.head_array()
            # fetch the aligned doc/tf pages for the hit positions
            if len(positions):
                from ..storage.buffer import get_buffer_manager

                manager = get_buffer_manager()
                stats.charge_tuples_read(2 * len(positions))
                for page in np.unique(positions // manager.page_tuples):
                    manager.request(self.docs.segment_id, int(page))
                    manager.request(self.tfs.segment_id, int(page))
            out[tid] = (self.docs.tail[positions], self.tfs.tail[positions])
        return out


@dataclass
class FragmentedIndex:
    """A fragmented inverted file: CSR small fragment + heap large
    fragment, plus the term assignment and sizing statistics."""

    full: InvertedIndex
    small: InvertedIndex
    large: HeapFragment
    #: True where the term lives in the small (interesting) fragment
    in_small: np.ndarray
    volume_cut: float

    @property
    def small_postings(self) -> int:
        return self.small.total_postings()

    @property
    def large_postings(self) -> int:
        return len(self.large)

    def small_volume_share(self) -> float:
        """Fraction of all postings held by the small fragment — the
        paper's "approximately 5% of the unfragmented size"."""
        total = self.small_postings + self.large_postings
        return self.small_postings / total if total else 0.0

    def small_vocabulary_share(self) -> float:
        """Fraction of the vocabulary in the small fragment — the
        paper's "95% most interesting terms"."""
        if len(self.in_small) == 0:
            return 0.0
        return float(self.in_small.mean())

    def split_query(self, tids: list[int]) -> tuple[list[int], list[int]]:
        """Partition query terms into (small-fragment, large-fragment)."""
        small = [tid for tid in tids if self.in_small[tid]]
        large = [tid for tid in tids if not self.in_small[tid]]
        return small, large


def fragment_by_volume(index: InvertedIndex, volume_cut: float = 0.95) -> FragmentedIndex:
    """Fragment an index so the most frequent terms carrying
    ``volume_cut`` of the postings volume go to the large fragment.

    With Zipf-distributed text and ``volume_cut=0.95`` this reproduces
    the paper's split: ~95% of terms (the interesting ones) end up in a
    small fragment holding ~5% of the postings.
    """
    if not 0.0 < volume_cut < 1.0:
        raise WorkloadError(f"volume_cut must be in (0, 1), got {volume_cut}")
    n_terms = index.n_terms
    df = index.vocabulary.df_array().astype(np.float64)
    order = np.argsort(-df, kind="stable")  # most frequent first
    cumulative = np.cumsum(df[order])
    total = cumulative[-1] if len(cumulative) else 0.0
    in_small = np.ones(n_terms, dtype=bool)
    if total > 0:
        n_large = int(np.searchsorted(cumulative, volume_cut * total) + 1)
        in_small[order[:n_large]] = False

    terms = index.postings_terms.tail
    docs = index.postings_docs.tail
    tfs = index.postings_tf.tail
    posting_in_small = in_small[terms]
    # one full pass to write both fragments
    kernel.scan_cost(index.postings_terms)
    kernel.scan_cost(index.postings_docs)
    kernel.scan_cost(index.postings_tf)
    stats.charge_tuples_written(len(terms))

    small = InvertedIndex.from_postings(
        terms[posting_in_small],
        docs[posting_in_small],
        tfs[posting_in_small],
        n_terms,
        index.doc_lengths,
        index.vocabulary,
        stats_from=index,
        name="small",
    )
    large = HeapFragment(
        BAT(terms[~posting_in_small], name="large_terms", tail_sorted=True, persistent=True),
        BAT(docs[~posting_in_small], name="large_docs", persistent=True),
        BAT(tfs[~posting_in_small], name="large_tf", persistent=True),
    )
    return FragmentedIndex(index, small, large, in_small, volume_cut)
