"""Learned (profiled) fragmentation for non-text content.

The paper, Step 1: *"For the case of non-text content data we are yet
not aware of a special distribution of the data (such as Zipf for
text).  Maybe such a distribution can be 'learned' by the system by
means of profiling, although the thus found distribution most likely
will not be independent from the data set."*

This module implements that proposal for feature spaces:

1. :func:`profile_hits` runs a training workload of similarity queries
   and counts, per object, how often it reaches the top-K — the
   learned analogue of term "interestingness".  On clustered data the
   hit distribution is heavily skewed (a learned Zipf-like law).
2. :class:`ProfiledFragments` splits the space into a small **hot**
   fragment (the objects that answer most queries) and a **cold**
   remainder, which is organized into bounding groups (centroid +
   radius) so that upper bounds on cold similarities can be computed
   without touching the objects.
3. :func:`profiled_topn` executes top-N queries against the fragments:

   * ``"unsafe"`` — scan only the hot fragment (fast, quality may drop:
     the learned distribution is "not independent from the data set");
   * ``"safe"`` — scan the hot fragment, then use the group bounds to
     prune cold groups that cannot reach the current N-th score, and
     scan only the surviving groups: exact answers, bounded extra work.
     This is the same upper-bound administration as Step 1's quality
     check, transplanted to learned fragments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TopNError, WorkloadError
from ..mm.distances import l2_distances
from ..mm.features import FeatureSpace
from ..storage import stats
from ..topn.heap import BoundedTopN
from ..topn.result import TopNResult


def profile_hits(
    space: FeatureSpace,
    n_queries: int = 200,
    k: int = 50,
    seed: int = 0,
) -> np.ndarray:
    """Learn per-object interestingness by profiling.

    Draws ``n_queries`` training queries by perturbing randomly chosen
    objects of the space itself (the realistic "queries look like the
    data" assumption the paper's caveat is about) and counts how often
    each object lands in a query's top-``k`` by L2 similarity.
    """
    if n_queries <= 0 or k <= 0:
        raise WorkloadError("n_queries and k must be positive")
    rng = np.random.default_rng(seed)
    hits = np.zeros(space.n_objects, dtype=np.int64)
    scale = max(float(np.std(space.vectors)), 1e-9)
    for _ in range(n_queries):
        anchor = space.vectors[rng.integers(0, space.n_objects)]
        query = anchor + rng.normal(0.0, 0.1 * scale, size=space.dim)
        distances = l2_distances(space.vectors, query)
        top = np.argpartition(distances, min(k, space.n_objects) - 1)[:k]
        hits[top] += 1
    stats.charge_extra("profiling_queries", n_queries)
    return hits


@dataclass
class ColdGroup:
    """A bounding group of cold objects: centroid, radius, members."""

    members: np.ndarray
    centroid: np.ndarray
    radius: float


class ProfiledFragments:
    """A feature space fragmented by learned interestingness.

    ``hot_fraction`` of the objects (those with the highest profiled
    hit counts) form the hot fragment; cold objects are grouped around
    sampled centroids so distance lower bounds
    ``d(q, x) >= d(q, centroid) - radius`` prune whole groups.
    """

    def __init__(
        self,
        space: FeatureSpace,
        hit_counts: np.ndarray,
        hot_fraction: float = 0.2,
        n_groups: int = 32,
        seed: int = 0,
    ) -> None:
        if not 0.0 < hot_fraction < 1.0:
            raise WorkloadError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
        if len(hit_counts) != space.n_objects:
            raise WorkloadError("hit_counts must cover every object of the space")
        self.space = space
        self.hot_fraction = hot_fraction
        n_hot = max(int(round(hot_fraction * space.n_objects)), 1)
        order = np.argsort(-hit_counts, kind="stable")
        self.hot_ids = np.sort(order[:n_hot])
        self.cold_ids = np.sort(order[n_hot:])
        self.hit_counts = hit_counts
        self.groups = self._build_groups(max(min(n_groups, len(self.cold_ids)), 1), seed)

    def _build_groups(self, n_groups: int, seed: int) -> list[ColdGroup]:
        cold = self.cold_ids
        if len(cold) == 0:
            return []
        rng = np.random.default_rng(seed)
        vectors = self.space.vectors[cold]
        centroid_ids = rng.choice(len(cold), size=n_groups, replace=False)
        centroids = vectors[centroid_ids]
        # assign every cold object to its nearest centroid
        assignment = np.empty(len(cold), dtype=np.int64)
        for i in range(len(cold)):
            assignment[i] = int(np.argmin(((centroids - vectors[i]) ** 2).sum(axis=1)))
        groups = []
        for g in range(n_groups):
            members = cold[assignment == g]
            if len(members) == 0:
                continue
            member_vectors = self.space.vectors[members]
            centroid = member_vectors.mean(axis=0)
            radius = float(np.sqrt(((member_vectors - centroid) ** 2).sum(axis=1)).max())
            groups.append(ColdGroup(members, centroid, radius))
        return groups

    def hot_share(self) -> float:
        """Fraction of objects in the hot fragment."""
        return len(self.hot_ids) / max(self.space.n_objects, 1)

    def hit_skew(self) -> float:
        """Share of all profiled hits captured by the hot fragment —
        how strongly the learned distribution is skewed."""
        total = self.hit_counts.sum()
        if total == 0:
            return 0.0
        return float(self.hit_counts[self.hot_ids].sum() / total)


def _similarities(vectors: np.ndarray, query: np.ndarray, scale: float) -> np.ndarray:
    return np.exp(-l2_distances(vectors, query) / scale)


def profiled_topn(
    fragments: ProfiledFragments,
    query: np.ndarray,
    n: int,
    mode: str = "safe",
) -> TopNResult:
    """Top-N similarity search over profiled fragments.

    Returns similarity scores ``exp(-d / scale)`` with ``scale`` fixed
    from the space (so scores are comparable across fragments).
    """
    if mode not in ("unsafe", "safe", "full"):
        raise TopNError(f"unknown mode {mode!r}; have unsafe/safe/full")
    space = fragments.space
    query = np.asarray(query, dtype=np.float64)
    if query.shape != (space.dim,):
        raise TopNError(f"query dimension {query.shape} != space dimension {space.dim}")
    scale = max(float(np.std(space.vectors)) * np.sqrt(space.dim), 1e-9)

    heap = BoundedTopN(n)
    scored = 0

    def score_objects(object_ids: np.ndarray) -> None:
        nonlocal scored
        if len(object_ids) == 0:
            return
        sims = _similarities(space.vectors[object_ids], query, scale)
        stats.charge_tuples_read(len(object_ids))
        stats.charge_comparisons(len(object_ids))
        scored += len(object_ids)
        for obj, sim in zip(object_ids, sims):
            heap.push(int(obj), float(sim))

    if mode == "full":
        score_objects(np.arange(space.n_objects))
        return TopNResult(heap.items_sorted(), n, "profiled-full", True,
                          {"objects_scored": scored, "groups_pruned": 0})

    score_objects(fragments.hot_ids)
    if mode == "unsafe":
        return TopNResult(heap.items_sorted(), n, "profiled-unsafe", False,
                          {"objects_scored": scored, "groups_pruned": 0,
                           "hot_share": fragments.hot_share()})

    # safe mode: bound-administrate the cold groups
    pruned = 0
    # visit most promising groups first so the threshold tightens early
    def group_bound(group: ColdGroup) -> float:
        centroid_distance = float(np.sqrt(((group.centroid - query) ** 2).sum()))
        return float(np.exp(-max(centroid_distance - group.radius, 0.0) / scale))

    ordered = sorted(fragments.groups, key=group_bound, reverse=True)
    for group in ordered:
        bound = group_bound(group)
        stats.charge_comparisons(1)
        if heap.full and bound <= heap.threshold():
            pruned += 1
            continue
        score_objects(group.members)
    return TopNResult(heap.items_sorted(), n, "profiled-safe", True,
                      {"objects_scored": scored, "groups_pruned": pruned,
                       "groups_total": len(fragments.groups),
                       "hot_share": fragments.hot_share()})
