"""The early quality check that drives the safe switching strategy.

The paper: *"I inserted a check early in the query plan that is able
to detect when the answer quality would be better when the other
fragment would be used.  This allows query processing to switch
accordingly in time."*

The check is upper-bound administration applied across fragments: the
score mass a query could still gain from its large-fragment terms is
bounded by the sum of those terms' per-posting upper bounds.  If that
potential exceeds a fraction of the provisional N-th score obtained
from the small fragment alone, the large fragment can still change the
top N and the plan must switch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.invindex import InvertedIndex
from ..ir.ranking import ScoringModel


@dataclass(frozen=True)
class SwitchDecision:
    """Outcome of the quality check, with its evidence."""

    switch: bool
    missing_mass: float
    nth_score: float
    threshold: float

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.switch


class QualityCheck:
    """Decides whether small-fragment-only processing is good enough.

    ``sensitivity`` scales how aggressively the check switches: the
    check switches when ``missing_mass > sensitivity * nth_score``.
    Low sensitivity (< 1) switches often (conservative about quality);
    high sensitivity tolerates more potential error (faster).
    """

    def __init__(self, sensitivity: float = 0.35) -> None:
        self.sensitivity = sensitivity

    def decide(
        self,
        index: InvertedIndex,
        model: ScoringModel,
        large_tids: list[int],
        nth_score: float,
        found: int,
        n: int,
    ) -> SwitchDecision:
        """Evaluate the check after the small fragment was processed.

        Parameters
        ----------
        large_tids:
            The query terms living in the large fragment (skipped so far).
        nth_score:
            The provisional N-th best score from the small fragment.
        found:
            How many candidates the small fragment produced.
        """
        missing_mass = sum(
            model.upper_bound(index, index.term_stats(tid)) for tid in large_tids
        )
        if found < n:
            # not even N candidates: quality is definitely at risk
            return SwitchDecision(bool(large_tids), missing_mass, nth_score,
                                  threshold=0.0)
        threshold = self.sensitivity * max(nth_score, 1e-12)
        return SwitchDecision(missing_mass > threshold, missing_mass, nth_score, threshold)
