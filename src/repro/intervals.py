"""The shared score-bound domain: certified intervals and threshold bounds.

One bound vocabulary for the whole system.  The abstract interpreter
(:mod:`repro.analysis.bounds`) derives a :class:`ScoreInterval` at every
plan edge; the parallel coordinator's bound cache
(:mod:`repro.cache.bounds`) records :class:`ThresholdBound` facts from
certified runs; the aggregates (:mod:`repro.topn.aggregates`) transfer
intervals through their combine functions.  Before this module the
coordinator, the cache and the engines each carried ad-hoc bound
objects (bare sort keys, ``(lower, upper)`` pairs, floats); sharing one
dataclass is what lets the analyzer treat every pruning decision — TA
thresholds, coordinator shard pruning, cache-resume frontiers — as the
same mathematical object: a certified interval the true score must lie
in.

Interval semantics
------------------
``ScoreInterval(lo, hi)`` asserts: every value the annotated edge can
produce lies in ``[lo, hi]``.  ``TOP`` (``[-inf, +inf]``) is "nothing
known"; :data:`UNIT` (``[0, 1]``) is the graded-source domain;
``point(v)`` is an exact value.  All operations are *conservative*:
they may over-approximate, never under-approximate — the containment
property tests (hypothesis: "the derived interval always contains the
true score") hold by construction of every method here.

This module deliberately has no intra-package imports so every layer
(storage, topn, cache, parallel, analysis) can use it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

_INF = math.inf


@dataclass(frozen=True)
class ScoreInterval:
    """A certified closed interval ``[lo, hi]`` of possible scores."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        lo, hi = float(self.lo), float(self.hi)
        if math.isnan(lo) or math.isnan(hi):
            raise ValueError(f"interval bounds may not be NaN: [{lo}, {hi}]")
        if lo > hi:
            raise ValueError(f"empty interval: lo {lo} > hi {hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def point(value: float) -> "ScoreInterval":
        return ScoreInterval(value, value)

    @staticmethod
    def of_values(values: Iterable[float]) -> "ScoreInterval":
        """Tightest interval containing ``values`` (TOP when empty is
        wrong for sums — callers decide; here empty raises)."""
        values = [float(v) for v in values]
        if not values:
            raise ValueError("of_values needs at least one value")
        return ScoreInterval(min(values), max(values))

    # -- predicates ---------------------------------------------------------

    @property
    def bounded(self) -> bool:
        """Both endpoints finite: a worst-case error is computable."""
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "ScoreInterval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def dominates(self, bound: float) -> bool:
        """True when ``bound`` is a sound upper bound for this edge:
        no value of the interval can exceed it."""
        return self.hi <= bound

    # -- lattice operations -------------------------------------------------

    def join(self, other: "ScoreInterval") -> "ScoreInterval":
        """Least upper bound (union hull)."""
        return ScoreInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "ScoreInterval") -> "ScoreInterval | None":
        """Greatest lower bound (intersection); ``None`` when disjoint."""
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return None
        return ScoreInterval(lo, hi)

    def widen(self, newer: "ScoreInterval") -> "ScoreInterval":
        """Classic interval widening: any endpoint still moving after
        the warm-up iterations jumps straight to infinity, so fixpoint
        iteration terminates on cyclic (resume-feedback) flows."""
        lo = self.lo if newer.lo >= self.lo else -_INF
        hi = self.hi if newer.hi <= self.hi else _INF
        return ScoreInterval(lo, hi)

    # -- arithmetic (all conservative) --------------------------------------

    def __add__(self, other: "ScoreInterval") -> "ScoreInterval":
        return ScoreInterval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def scale(self, factor: float) -> "ScoreInterval":
        """Multiply by a known scalar (weights; sign handled)."""
        a, b = _mul(self.lo, factor), _mul(self.hi, factor)
        return ScoreInterval(min(a, b), max(a, b))

    def multiply(self, other: "ScoreInterval") -> "ScoreInterval":
        """Interval product (probabilistic conjunction)."""
        products = [_mul(self.lo, other.lo), _mul(self.lo, other.hi),
                    _mul(self.hi, other.lo), _mul(self.hi, other.hi)]
        return ScoreInterval(min(products), max(products))

    def min_with(self, other: "ScoreInterval") -> "ScoreInterval":
        return ScoreInterval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "ScoreInterval") -> "ScoreInterval":
        return ScoreInterval(max(self.lo, other.lo), max(self.hi, other.hi))

    def clamp(self, lo: float, hi: float) -> "ScoreInterval | None":
        """Meet with ``[lo, hi]`` (selection pushdown transfer)."""
        return self.meet(ScoreInterval(lo, hi))

    # -- rendering -----------------------------------------------------------

    def describe(self) -> str:
        def fmt(v: float) -> str:
            if v == _INF:
                return "+inf"
            if v == -_INF:
                return "-inf"
            return f"{v:g}"
        return f"[{fmt(self.lo)}, {fmt(self.hi)}]"

    def to_dict(self) -> dict:
        return {"lo": _json_float(self.lo), "hi": _json_float(self.hi)}


#: nothing known about the edge
TOP = ScoreInterval(-_INF, _INF)
#: the graded-source domain of the Fagin engines
UNIT = ScoreInterval(0.0, 1.0)
#: non-negative scores (posting-list accumulation, counts)
NON_NEGATIVE = ScoreInterval(0.0, _INF)


def join_all(intervals: Sequence[ScoreInterval]) -> ScoreInterval:
    """Union hull of several intervals (TOP for an empty sequence)."""
    if not intervals:
        return TOP
    out = intervals[0]
    for interval in intervals[1:]:
        out = out.join(interval)
    return out


def sum_of(intervals: Sequence[ScoreInterval]) -> ScoreInterval:
    """Interval sum (the Sum aggregate's transfer); empty sums to 0."""
    out = ScoreInterval.point(0.0)
    for interval in intervals:
        out = out + interval
    return out


@dataclass(frozen=True)
class ThresholdBound:
    """One recorded pruning threshold from a certified run.

    The coordinator's merge threshold ``τ(n)`` — the sort key of the
    n-th best merged item — stamped with the corpus ``epoch`` it was
    measured at.  Reuse is sound only at the same epoch (scores may
    change across mutations); the MOA905 analyzer check and the
    runtime's :meth:`~repro.cache.bounds.CoordinatorBounds.seedable_at`
    gate both consult the stamp.
    """

    #: the merge depth the threshold certifies
    n: int
    #: sort key ``(-score, obj_id)`` of the n-th merged item
    key: tuple
    #: corpus epoch the producing run executed at
    epoch: int = 0

    @property
    def score(self) -> float:
        """The n-th item's score (sort keys are ``(-score, obj_id)``)."""
        return -self.key[0]

    def interval(self) -> ScoreInterval:
        """What the threshold certifies about any *pruned* tail: every
        unfetched item scores at most the threshold score."""
        return ScoreInterval(-_INF, self.score)

    def to_dict(self) -> dict:
        return {"n": self.n, "key": list(self.key), "epoch": self.epoch,
                "score": _json_float(self.score)}


def _add(a: float, b: float) -> float:
    # inf + -inf never occurs for valid intervals added endpoint-wise
    # (lo+lo and hi+hi keep signs aligned), but be safe:
    if math.isinf(a) and math.isinf(b) and (a > 0) != (b > 0):
        return -_INF if a < 0 or b < 0 else _INF
    return a + b


def _mul(a: float, b: float) -> float:
    if a == 0.0 or b == 0.0:
        return 0.0  # 0 * inf = 0 under measure-style convention
    return a * b


def _json_float(v: float):
    """JSON-safe rendering of possibly-infinite endpoints."""
    if v == _INF:
        return "inf"
    if v == -_INF:
        return "-inf"
    return v
