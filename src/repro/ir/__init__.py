"""Information-retrieval substrate: documents, analysis, vocabulary,
inverted index on BATs, ranking models and Zipf analysis."""

from .analysis import Analyzer, DEFAULT_ANALYZER, STOPWORDS, stem, tokenize
from .documents import Collection, Document
from .invindex import InvertedIndex, TermStats
from .ranking import BM25, LanguageModel, MODELS, ScoringModel, TfIdf, make_model, score_all
from .vocabulary import Vocabulary
from .zipf import (
    ZipfFit,
    fit_zipf,
    rank_frequency_table,
    vocabulary_share_for_volume,
    volume_share_of_top_terms,
)

__all__ = [
    "Analyzer",
    "BM25",
    "Collection",
    "DEFAULT_ANALYZER",
    "Document",
    "InvertedIndex",
    "LanguageModel",
    "MODELS",
    "STOPWORDS",
    "ScoringModel",
    "TermStats",
    "TfIdf",
    "Vocabulary",
    "ZipfFit",
    "fit_zipf",
    "make_model",
    "rank_frequency_table",
    "score_all",
    "stem",
    "tokenize",
    "vocabulary_share_for_volume",
    "volume_share_of_top_terms",
]
