"""Text analysis: tokenization, stopping, stemming.

A deliberately classic early-2000s IR pipeline, matching what the
mirror/INQUERY-era systems the paper builds on would have used: regex
word tokenizer, lowercase, a small English stopword list, and a light
suffix-stripping stemmer (a reduced Porter step 1).
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

_WORD_RE = re.compile(r"[a-z0-9]+")

#: compact English stopword list (the SMART top tier)
STOPWORDS = frozenset(
    """
    a about above after again all also am an and any are as at be because
    been before being below between both but by can did do does doing down
    during each few for from further had has have having he her here hers
    him his how i if in into is it its itself just me more most my no nor
    not now of off on once only or other our ours out over own same she
    should so some such than that the their theirs them then there these
    they this those through to too under until up very was we were what
    when where which while who whom why will with you your yours
    """.split()
)

#: suffixes stripped by the light stemmer, longest first
_SUFFIXES = ("ations", "ation", "ingly", "iness", "ments", "ness", "ings", "ing",
             "ies", "ment", "edly", "ed", "es", "ly", "s")
_MIN_STEM = 3


def tokenize(text: str) -> Iterator[str]:
    """Lowercase word tokens of ``text`` (letters and digits)."""
    for match in _WORD_RE.finditer(text.lower()):
        yield match.group()


def stem(token: str) -> str:
    """Light suffix-stripping stem of ``token``.

    Strips the longest matching suffix that leaves at least
    ``_MIN_STEM`` characters; ``ies`` restores the ``y``
    (``queries`` → ``query``).
    """
    for suffix in _SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= _MIN_STEM:
            base = token[: -len(suffix)]
            if suffix == "ies":
                return base + "y"
            return base
    return token


class Analyzer:
    """Configurable analysis pipeline: tokenize → stop → stem."""

    def __init__(self, use_stopwords: bool = True, use_stemming: bool = True,
                 extra_stopwords: Iterable[str] = ()) -> None:
        self.use_stopwords = use_stopwords
        self.use_stemming = use_stemming
        self.stopwords = STOPWORDS | frozenset(extra_stopwords)

    def analyze(self, text: str) -> list[str]:
        """Index terms of ``text`` after the full pipeline."""
        terms = []
        for token in tokenize(text):
            if self.use_stopwords and token in self.stopwords:
                continue
            if self.use_stemming:
                token = stem(token)
            terms.append(token)
        return terms

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Analyzer(stopwords={self.use_stopwords}, stemming={self.use_stemming})"
        )


#: a default analyzer instance for convenience
DEFAULT_ANALYZER = Analyzer()
