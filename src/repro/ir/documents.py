"""Document and collection model for the IR substrate.

Documents carry their content as *term-id sequences* (the form the
inverted index consumes); text documents are turned into term ids by
the analysis pipeline (:mod:`repro.ir.analysis` +
:mod:`repro.ir.vocabulary`).  Synthetic collections generate term ids
directly and render text lazily.

A :class:`Collection` optionally carries topic labels (ground truth
planted by the generator) which the workload layer uses to derive
relevance judgments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError


@dataclass
class Document:
    """One document: an id, its term-id sequence, optional metadata."""

    doc_id: int
    token_ids: np.ndarray
    topic: int | None = None

    @property
    def length(self) -> int:
        """Document length in tokens."""
        return len(self.token_ids)

    def term_frequencies(self) -> dict[int, int]:
        """Term id → within-document frequency."""
        unique, counts = np.unique(self.token_ids, return_counts=True)
        return {int(t): int(c) for t, c in zip(unique, counts)}

    def render_text(self, term_strings: list[str]) -> str:
        """The document as whitespace-joined term strings."""
        return " ".join(term_strings[t] for t in self.token_ids)


@dataclass
class Collection:
    """A document collection plus its vocabulary strings.

    ``term_strings[tid]`` is the surface form of term id ``tid``.
    ``topics`` (when present) gives each document's generating topic —
    the ground truth behind synthetic relevance judgments.
    """

    documents: list[Document]
    term_strings: list[str]
    name: str = "collection"
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if any(doc.doc_id != i for i, doc in enumerate(self.documents)):
            raise WorkloadError("document ids must be dense 0..n-1 in collection order")

    def __len__(self) -> int:
        return len(self.documents)

    @property
    def n_docs(self) -> int:
        return len(self.documents)

    @property
    def n_terms(self) -> int:
        return len(self.term_strings)

    def total_tokens(self) -> int:
        """Collection size in tokens."""
        return sum(doc.length for doc in self.documents)

    def document(self, doc_id: int) -> Document:
        try:
            return self.documents[doc_id]
        except IndexError:
            raise WorkloadError(f"no document with id {doc_id}") from None

    def term_id(self, term: str) -> int:
        """Look up a term string (linear scan cached on first use)."""
        index = self.extras.get("_term_index")
        if index is None:
            index = {t: i for i, t in enumerate(self.term_strings)}
            self.extras["_term_index"] = index
        try:
            return index[term]
        except KeyError:
            raise WorkloadError(f"unknown term {term!r}") from None

    def doc_lengths(self) -> np.ndarray:
        """Array of document lengths, indexed by doc id."""
        return np.asarray([doc.length for doc in self.documents], dtype=np.int64)

    def average_doc_length(self) -> float:
        if not self.documents:
            return 0.0
        return float(self.doc_lengths().mean())

    def texts(self) -> list[str]:
        """All documents rendered to text (slow; for examples/tests)."""
        return [doc.render_text(self.term_strings) for doc in self.documents]
