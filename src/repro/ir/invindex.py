"""The inverted index, flattened onto BATs.

Layout is CSR-style, exactly how a Moa/MonetDB IR schema would store
it: three aligned, persistent BATs sorted by term id —

* ``postings_terms``  ``[pos -> term_id]`` (ascending),
* ``postings_docs``   ``[pos -> doc_id]``,
* ``postings_tf``     ``[pos -> tf]``,

plus an in-memory offsets array ``offsets[tid] .. offsets[tid+1]``
delimiting each term's posting range, and a ``doc_lengths`` BAT.
Reading a term's postings charges a scan of exactly that range on the
simulated buffer manager, so "how much of the inverted file a strategy
touches" is measured the way the paper argues about it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..storage import kernel
from ..storage.bat import BAT
from .analysis import Analyzer, DEFAULT_ANALYZER
from .documents import Collection, Document
from .vocabulary import Vocabulary


@dataclass(frozen=True)
class TermStats:
    """Per-term statistics published to ranking models and optimizers."""

    term_id: int
    df: int
    cf: int
    max_tf: int
    max_tf_over_dl: float


class InvertedIndex:
    """CSR inverted index over persistent BATs."""

    def __init__(
        self,
        postings_terms: BAT,
        postings_docs: BAT,
        postings_tf: BAT,
        offsets: np.ndarray,
        doc_lengths: BAT,
        vocabulary: Vocabulary,
        stats_from: "InvertedIndex | None" = None,
    ) -> None:
        self.postings_terms = postings_terms
        self.postings_docs = postings_docs
        self.postings_tf = postings_tf
        self.offsets = offsets
        self.doc_lengths = doc_lengths
        self.vocabulary = vocabulary
        self.n_docs = len(doc_lengths)
        self.n_terms = len(offsets) - 1
        self._dl = doc_lengths.tail.astype(np.float64)
        if stats_from is not None:
            # fragments share the full index's global statistics so that
            # ranking-model scores are identical across fragmentations
            self.avg_dl = stats_from.avg_dl
            self.total_cf = stats_from.total_cf
        else:
            self.avg_dl = float(self._dl.mean()) if self.n_docs else 0.0
            self.total_cf = int(postings_tf.tail.sum()) if len(postings_tf) else 0
        # per-term maxima, for upper-bound administration
        self._max_tf = np.zeros(self.n_terms, dtype=np.int64)
        self._max_tf_over_dl = np.zeros(self.n_terms, dtype=np.float64)
        tf = postings_tf.tail
        docs = postings_docs.tail
        for tid in range(self.n_terms):
            start, stop = offsets[tid], offsets[tid + 1]
            if stop > start:
                seg_tf = tf[start:stop]
                self._max_tf[tid] = int(seg_tf.max())
                self._max_tf_over_dl[tid] = float(
                    (seg_tf / self._dl[docs[start:stop]]).max()
                )

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, collection: Collection, vocabulary: Vocabulary | None = None) -> "InvertedIndex":
        """Build the index from a collection of term-id documents."""
        if vocabulary is None:
            vocabulary = Vocabulary.from_token_id_docs(
                (doc.token_ids for doc in collection.documents), collection.term_strings
            )
        n_terms = len(vocabulary)
        term_chunks, doc_chunks, tf_chunks = [], [], []
        for doc in collection.documents:
            unique, counts = np.unique(doc.token_ids, return_counts=True)
            term_chunks.append(unique.astype(np.int64))
            doc_chunks.append(np.full(len(unique), doc.doc_id, dtype=np.int64))
            tf_chunks.append(counts.astype(np.int64))
        if term_chunks:
            terms = np.concatenate(term_chunks)
            docs = np.concatenate(doc_chunks)
            tfs = np.concatenate(tf_chunks)
        else:
            terms = docs = tfs = np.empty(0, dtype=np.int64)
        order = np.argsort(terms, kind="stable")  # doc order preserved per term
        terms, docs, tfs = terms[order], docs[order], tfs[order]
        offsets = np.searchsorted(terms, np.arange(n_terms + 1))
        doc_lengths = BAT(
            np.asarray([doc.length for doc in collection.documents], dtype=np.int64),
            name="doc_lengths",
            persistent=True,
        )
        return cls(
            BAT(terms, name="postings_terms", tail_sorted=True, persistent=True),
            BAT(docs, name="postings_docs", persistent=True),
            BAT(tfs, name="postings_tf", persistent=True),
            offsets,
            doc_lengths,
            vocabulary,
        )

    @classmethod
    def from_postings(
        cls,
        terms: np.ndarray,
        docs: np.ndarray,
        tfs: np.ndarray,
        n_terms: int,
        doc_lengths: BAT,
        vocabulary: Vocabulary,
        stats_from: "InvertedIndex | None" = None,
        name: str = "fragment",
    ) -> "InvertedIndex":
        """Build an index over raw posting triples (must be sorted by
        term id).  Used by the fragmentation layer, which carves one
        full index into term-disjoint physical fragments that share the
        global vocabulary and collection statistics."""
        if len(terms) > 1 and not np.all(terms[:-1] <= terms[1:]):
            raise WorkloadError("from_postings requires term-sorted triples")
        offsets = np.searchsorted(terms, np.arange(n_terms + 1))
        return cls(
            BAT(terms, name=f"{name}_terms", tail_sorted=True, persistent=True),
            BAT(docs, name=f"{name}_docs", persistent=True),
            BAT(tfs, name=f"{name}_tf", persistent=True),
            offsets,
            doc_lengths,
            vocabulary,
            stats_from=stats_from,
        )

    @classmethod
    def from_texts(cls, texts: list[str], analyzer: Analyzer | None = None,
                   name: str = "texts") -> tuple["InvertedIndex", Collection]:
        """Analyze raw text documents and build an index over them."""
        analyzer = analyzer or DEFAULT_ANALYZER
        vocabulary = Vocabulary()
        documents = []
        for doc_id, text in enumerate(texts):
            token_ids = vocabulary.add_document_terms(analyzer.analyze(text))
            documents.append(Document(doc_id, np.asarray(token_ids, dtype=np.int64)))
        collection = Collection(documents, vocabulary.terms(), name=name)
        return cls.build(collection, vocabulary), collection

    # -- access ---------------------------------------------------------------

    def posting_length(self, tid: int) -> int:
        """Length of a term's posting list (metadata; no I/O)."""
        self._check_tid(tid)
        return int(self.offsets[tid + 1] - self.offsets[tid])

    def postings(self, tid: int) -> tuple[np.ndarray, np.ndarray]:
        """``(doc_ids, tfs)`` for a term, charging the scan of exactly
        that posting range on both posting columns."""
        self._check_tid(tid)
        start, stop = int(self.offsets[tid]), int(self.offsets[tid + 1])
        n = stop - start
        kernel.scan_cost(self.postings_docs, n, start=start)
        kernel.scan_cost(self.postings_tf, n, start=start)
        return self.postings_docs.tail[start:stop], self.postings_tf.tail[start:stop]

    def doc_length(self, doc_ids: np.ndarray) -> np.ndarray:
        """Lengths of the given documents (random probe charge)."""
        return kernel.fetch_values(self.doc_lengths, doc_ids).astype(np.float64)

    def doc_lengths_array(self) -> np.ndarray:
        """All document lengths (cached metadata; used by models that
        pre-normalize — charged once at build)."""
        return self._dl

    def term_stats(self, tid: int) -> TermStats:
        self._check_tid(tid)
        return TermStats(
            term_id=tid,
            df=self.vocabulary.df(tid),
            cf=self.vocabulary.cf(tid),
            max_tf=int(self._max_tf[tid]),
            max_tf_over_dl=float(self._max_tf_over_dl[tid]),
        )

    def candidate_documents(self, tids: list[int]) -> np.ndarray:
        """Distinct documents containing at least one of the terms —
        the candidate set whose size the paper's Section 1 discusses."""
        parts = [self.postings(tid)[0] for tid in tids]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def total_postings(self) -> int:
        """Total number of postings (the "unfragmented size")."""
        return len(self.postings_docs)

    def _check_tid(self, tid: int) -> None:
        if not 0 <= tid < self.n_terms:
            raise WorkloadError(f"term id {tid} outside index vocabulary (n={self.n_terms})")
