"""Ranking models: tf-idf, BM25 and a Jelinek-Mercer language model.

All models share one contract that the top-N machinery depends on:

* a query's document score is the **sum of non-negative per-term
  partial scores** (monotone aggregation — the precondition of Fagin's
  bound administration);
* :meth:`ScoringModel.upper_bound` returns, from per-term statistics
  alone, a value no partial score of that term can exceed — the basis
  of safe early termination and of term-ordering heuristics.

The naive evaluator :func:`score_all` is the unoptimized baseline every
experiment compares against: it reads the *complete* posting list of
every query term and materializes all candidate scores.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import TopNError
from ..storage.bat import BAT
from .invindex import InvertedIndex, TermStats


class ScoringModel:
    """Base class; see module docstring for the contract."""

    name = "abstract"

    def partial_scores(self, index: InvertedIndex, tid: int,
                       doc_ids: np.ndarray, tfs: np.ndarray) -> np.ndarray:
        """Non-negative per-document partial scores for one term."""
        raise NotImplementedError

    def upper_bound(self, index: InvertedIndex, stats: TermStats) -> float:
        """An upper bound on any partial score this term can produce."""
        raise NotImplementedError


class TfIdf(ScoringModel):
    """Classic ``(1 + log tf) * idf`` weighting with pivoted length
    normalization ``1 / (1 - slope + slope * dl/avg_dl)``."""

    name = "tfidf"

    def __init__(self, slope: float = 0.2) -> None:
        if not 0.0 <= slope < 1.0:
            raise TopNError(f"tfidf slope must be in [0, 1), got {slope}")
        self.slope = slope

    def _idf(self, index: InvertedIndex, df: int) -> float:
        return math.log(1.0 + index.n_docs / max(df, 1))

    def partial_scores(self, index, tid, doc_ids, tfs):
        idf = self._idf(index, index.vocabulary.df(tid))
        dl = index.doc_lengths_array()[doc_ids]
        norm = 1.0 - self.slope + self.slope * dl / max(index.avg_dl, 1e-9)
        return (1.0 + np.log(tfs)) * idf / norm

    def upper_bound(self, index, stats):
        idf = self._idf(index, stats.df)
        min_norm = 1.0 - self.slope  # shortest possible document
        return (1.0 + math.log(max(stats.max_tf, 1))) * idf / max(min_norm, 1e-9)


class BM25(ScoringModel):
    """Okapi BM25 with the non-negative idf variant
    ``log(1 + (N - df + 0.5) / (df + 0.5))``."""

    name = "bm25"

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0 or not 0.0 <= b <= 1.0:
            raise TopNError(f"invalid BM25 parameters k1={k1}, b={b}")
        self.k1 = k1
        self.b = b

    def _idf(self, index: InvertedIndex, df: int) -> float:
        return math.log(1.0 + (index.n_docs - df + 0.5) / (df + 0.5))

    def partial_scores(self, index, tid, doc_ids, tfs):
        idf = self._idf(index, index.vocabulary.df(tid))
        dl = index.doc_lengths_array()[doc_ids]
        denom = tfs + self.k1 * (1.0 - self.b + self.b * dl / max(index.avg_dl, 1e-9))
        return idf * tfs * (self.k1 + 1.0) / denom

    def upper_bound(self, index, stats):
        idf = self._idf(index, stats.df)
        # tf*(k1+1)/(tf + k1*something>= (1-b)) is increasing in tf and
        # bounded by (k1+1); use max_tf with the smallest possible denom
        tf = max(stats.max_tf, 1)
        denom = tf + self.k1 * (1.0 - self.b)
        return idf * tf * (self.k1 + 1.0) / denom


class LanguageModel(ScoringModel):
    """Jelinek-Mercer smoothed query-likelihood in the additive
    ``log(1 + ...)`` form (Hiemstra's model, as used by the author's
    mirror DBMS at TREC)::

        score(d, q) = sum_t log(1 + (lam * tf/dl) / ((1-lam) * cf/|C|))
    """

    name = "lm"

    def __init__(self, lam: float = 0.15) -> None:
        if not 0.0 < lam < 1.0:
            raise TopNError(f"lambda must be in (0, 1), got {lam}")
        self.lam = lam

    def _background(self, index: InvertedIndex, cf: int) -> float:
        return max(cf, 1) / max(index.total_cf, 1)

    def partial_scores(self, index, tid, doc_ids, tfs):
        background = self._background(index, index.vocabulary.cf(tid))
        dl = index.doc_lengths_array()[doc_ids]
        ratio = (self.lam * tfs / dl) / ((1.0 - self.lam) * background)
        return np.log1p(ratio)

    def upper_bound(self, index, stats):
        background = self._background(index, stats.cf)
        ratio = (self.lam * stats.max_tf_over_dl) / ((1.0 - self.lam) * background)
        return math.log1p(ratio)


#: model registry by name, for configs and CLIs
MODELS = {cls.name: cls for cls in (TfIdf, BM25, LanguageModel)}


def make_model(name: str, **params) -> ScoringModel:
    """Instantiate a scoring model by registry name."""
    try:
        return MODELS[name](**params)
    except KeyError:
        raise TopNError(f"unknown scoring model {name!r}; have {sorted(MODELS)}") from None


def score_all(index: InvertedIndex, tids: list[int], model: ScoringModel) -> BAT:
    """The naive evaluator: full posting scan for every query term.

    Returns ``[(doc_id, score)]`` over all candidate documents
    (documents containing at least one query term), unordered.
    """
    accumulator = np.zeros(index.n_docs, dtype=np.float64)
    touched = np.zeros(index.n_docs, dtype=bool)
    for tid in tids:
        doc_ids, tfs = index.postings(tid)
        if len(doc_ids) == 0:
            continue
        partials = model.partial_scores(index, tid, doc_ids, tfs)
        np.add.at(accumulator, doc_ids, partials)
        touched[doc_ids] = True
    candidates = np.nonzero(touched)[0]
    from ..storage import stats as _stats

    _stats.charge_tuples_written(len(candidates))
    return BAT(accumulator[candidates], head=candidates.astype(np.int64), head_key=True)
