"""Vocabulary: term string ↔ term id mapping with corpus statistics."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import WorkloadError


class Vocabulary:
    """Bidirectional term mapping plus document/collection frequencies.

    ``df`` (document frequency) drives the Zipf fragmentation of the
    paper's Step 1; ``cf`` (collection frequency) drives language-model
    smoothing.
    """

    def __init__(self) -> None:
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []
        self._df: list[int] = []
        self._cf: list[int] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def add_document_terms(self, terms: Iterable[str]) -> list[int]:
        """Register one document's term list; updates df/cf and returns
        the document's term ids (one per token, in order)."""
        token_ids = []
        seen: set[int] = set()
        for term in terms:
            tid = self._term_to_id.get(term)
            if tid is None:
                tid = len(self._id_to_term)
                self._term_to_id[term] = tid
                self._id_to_term.append(term)
                self._df.append(0)
                self._cf.append(0)
            self._cf[tid] += 1
            token_ids.append(tid)
            seen.add(tid)
        for tid in seen:
            self._df[tid] += 1
        return token_ids

    @classmethod
    def from_token_id_docs(cls, docs_token_ids: Iterable[np.ndarray],
                           term_strings: list[str]) -> "Vocabulary":
        """Build from pre-assigned term ids (synthetic collections)."""
        vocab = cls()
        vocab._id_to_term = list(term_strings)
        vocab._term_to_id = {t: i for i, t in enumerate(term_strings)}
        vocab._df = [0] * len(term_strings)
        vocab._cf = [0] * len(term_strings)
        for token_ids in docs_token_ids:
            unique, counts = np.unique(token_ids, return_counts=True)
            for tid, count in zip(unique, counts):
                if tid < 0 or tid >= len(term_strings):
                    raise WorkloadError(f"token id {tid} outside vocabulary")
                vocab._df[tid] += 1
                vocab._cf[tid] += int(count)
        return vocab

    def term_id(self, term: str) -> int:
        try:
            return self._term_to_id[term]
        except KeyError:
            raise WorkloadError(f"unknown term {term!r}") from None

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def term(self, tid: int) -> str:
        try:
            return self._id_to_term[tid]
        except IndexError:
            raise WorkloadError(f"unknown term id {tid}") from None

    def df(self, tid: int) -> int:
        """Document frequency of a term id."""
        return self._df[tid]

    def cf(self, tid: int) -> int:
        """Collection frequency (total occurrences) of a term id."""
        return self._cf[tid]

    def df_array(self) -> np.ndarray:
        return np.asarray(self._df, dtype=np.int64)

    def cf_array(self) -> np.ndarray:
        return np.asarray(self._cf, dtype=np.int64)

    def total_cf(self) -> int:
        """Total token count over the corpus."""
        return int(sum(self._cf))

    def terms(self) -> list[str]:
        return list(self._id_to_term)
