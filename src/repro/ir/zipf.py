"""Zipf analysis of term distributions.

The paper's Step 1 rests on two empirical facts about text: term
frequencies are Zipf distributed, and therefore "the least frequently
occurring terms are the most interesting ones while the most frequently
occurring/least interesting terms take up most of the storage/memory
space".  This module quantifies both: a Zipf exponent fit, and the
share of postings volume occupied by the most frequent terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError


@dataclass(frozen=True)
class ZipfFit:
    """Least-squares fit of ``log cf = intercept - exponent * log rank``."""

    exponent: float
    intercept: float
    r_squared: float
    n_terms: int

    def predicted_cf(self, rank: int) -> float:
        """Model-predicted collection frequency at 1-based ``rank``."""
        return float(np.exp(self.intercept - self.exponent * np.log(rank)))


def fit_zipf(frequencies: np.ndarray, min_frequency: int = 1) -> ZipfFit:
    """Fit a Zipf law to term frequencies (any order; zeros dropped).

    Ranks terms by descending frequency and regresses log-frequency on
    log-rank.  ``min_frequency`` drops the noisy low-frequency tail
    (standard practice when estimating the exponent).
    """
    freqs = np.asarray(frequencies, dtype=np.float64)
    freqs = np.sort(freqs[freqs >= max(min_frequency, 1)])[::-1]
    if len(freqs) < 3:
        raise WorkloadError("need at least 3 nonzero frequencies to fit a Zipf law")
    log_rank = np.log(np.arange(1, len(freqs) + 1, dtype=np.float64))
    log_freq = np.log(freqs)
    slope, intercept = np.polyfit(log_rank, log_freq, 1)
    predicted = intercept + slope * log_rank
    total_var = float(((log_freq - log_freq.mean()) ** 2).sum())
    residual = float(((log_freq - predicted) ** 2).sum())
    r_squared = 1.0 - residual / total_var if total_var > 0 else 1.0
    return ZipfFit(exponent=-float(slope), intercept=float(intercept),
                   r_squared=r_squared, n_terms=len(freqs))


def volume_share_of_top_terms(frequencies: np.ndarray, top_fraction: float) -> float:
    """Fraction of total postings/occurrence volume contributed by the
    ``top_fraction`` most frequent terms.

    With a Zipf distribution a tiny fraction of the vocabulary carries
    most of the volume — the quantitative core of the paper's
    fragmentation argument.
    """
    if not 0.0 <= top_fraction <= 1.0:
        raise WorkloadError(f"top_fraction must be in [0, 1], got {top_fraction}")
    freqs = np.sort(np.asarray(frequencies, dtype=np.float64))[::-1]
    total = freqs.sum()
    if total <= 0:
        return 0.0
    k = int(round(top_fraction * len(freqs)))
    return float(freqs[:k].sum() / total)


def vocabulary_share_for_volume(frequencies: np.ndarray, volume_fraction: float) -> float:
    """Smallest fraction of the (most frequent) vocabulary whose
    combined volume reaches ``volume_fraction`` of the total.

    E.g. a return value of 0.05 at ``volume_fraction=0.95`` means 5% of
    terms carry 95% of the postings."""
    if not 0.0 <= volume_fraction <= 1.0:
        raise WorkloadError(f"volume_fraction must be in [0, 1], got {volume_fraction}")
    freqs = np.sort(np.asarray(frequencies, dtype=np.float64))[::-1]
    total = freqs.sum()
    if total <= 0 or len(freqs) == 0:
        return 0.0
    cumulative = np.cumsum(freqs) / total
    k = int(np.searchsorted(cumulative, volume_fraction) + 1)
    return min(k / len(freqs), 1.0)


def rank_frequency_table(frequencies: np.ndarray, n_points: int = 20) -> list[tuple[int, float]]:
    """(rank, frequency) samples at log-spaced ranks, for plots/benches."""
    freqs = np.sort(np.asarray(frequencies, dtype=np.float64))[::-1]
    freqs = freqs[freqs > 0]
    if len(freqs) == 0:
        return []
    ranks = np.unique(np.geomspace(1, len(freqs), num=min(n_points, len(freqs))).astype(int))
    return [(int(rank), float(freqs[rank - 1])) for rank in ranks]
