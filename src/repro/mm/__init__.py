"""Multimedia feature substrate: synthetic feature spaces, distance /
similarity measures, and the graded-list score sources consumed by the
Fagin-family algorithms."""

from .distances import (
    SIMILARITIES,
    cosine_similarity,
    distance_to_similarity,
    histogram_intersection,
    l1_distances,
    l2_distances,
    similarity_scores,
)
from .features import (
    FeatureSpace,
    color_histograms,
    keyword_scores,
    query_near_cluster,
    texture_features,
)
from .sources import (
    ArraySource,
    BlockedSource,
    PostingsSource,
    ScoreSource,
    feature_source,
)

__all__ = [
    "ArraySource",
    "BlockedSource",
    "FeatureSpace",
    "PostingsSource",
    "SIMILARITIES",
    "ScoreSource",
    "color_histograms",
    "cosine_similarity",
    "distance_to_similarity",
    "feature_source",
    "histogram_intersection",
    "keyword_scores",
    "l1_distances",
    "l2_distances",
    "query_near_cluster",
    "similarity_scores",
    "texture_features",
]
