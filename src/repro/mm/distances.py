"""Distance and similarity functions over feature vectors.

Fagin's middleware algorithms need per-feature *grades* in a bounded
range with larger-is-better semantics, so each distance comes with a
similarity transform into ``[0, 1]``.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError


def l1_distances(vectors: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Manhattan distance of every row to the query."""
    return np.abs(vectors - query).sum(axis=1)


def l2_distances(vectors: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Euclidean distance of every row to the query."""
    return np.sqrt(((vectors - query) ** 2).sum(axis=1))


def histogram_intersection(vectors: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Histogram intersection similarity (already in [0, 1] for
    normalized histograms): ``sum_i min(v_i, q_i)``."""
    return np.minimum(vectors, query).sum(axis=1)


def cosine_similarity(vectors: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Cosine similarity, clipped to [0, 1] for non-negative features."""
    norms = np.linalg.norm(vectors, axis=1) * np.linalg.norm(query)
    norms = np.where(norms == 0, 1.0, norms)
    return np.clip(vectors @ query / norms, 0.0, 1.0)


def distance_to_similarity(distances: np.ndarray, scale: float | None = None) -> np.ndarray:
    """Map distances to similarities in (0, 1] via ``exp(-d / scale)``.

    ``scale`` defaults to the mean distance (so similarities are well
    spread regardless of the feature's natural scale)."""
    distances = np.asarray(distances, dtype=np.float64)
    if (distances < 0).any():
        raise WorkloadError("distances must be non-negative")
    if scale is None:
        mean = float(distances.mean()) if len(distances) else 1.0
        scale = mean if mean > 0 else 1.0
    return np.exp(-distances / scale)


#: named similarity functions: feature matrix + query -> scores in [0, 1]
SIMILARITIES = {
    "l1": lambda vectors, query: distance_to_similarity(l1_distances(vectors, query)),
    "l2": lambda vectors, query: distance_to_similarity(l2_distances(vectors, query)),
    "histogram": histogram_intersection,
    "cosine": cosine_similarity,
}


def similarity_scores(vectors: np.ndarray, query: np.ndarray, measure: str = "l2") -> np.ndarray:
    """Similarity of every object to ``query`` under a named measure."""
    try:
        func = SIMILARITIES[measure]
    except KeyError:
        raise WorkloadError(
            f"unknown similarity measure {measure!r}; have {sorted(SIMILARITIES)}"
        ) from None
    if vectors.shape[1] != len(query):
        raise WorkloadError(
            f"query dimension {len(query)} != feature dimension {vectors.shape[1]}"
        )
    return func(vectors, np.asarray(query, dtype=np.float64))
