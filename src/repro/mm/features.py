"""Synthetic multimedia feature spaces.

The paper targets *multimedia* retrieval: ranking objects by distances
in feature spaces (color histograms, textures, ...).  Real image
collections are not available offline, so this module generates
feature matrices with planted cluster structure (a Gaussian mixture,
projected to valid feature ranges): queries drawn near a cluster
center have meaningful nearest neighbours, which is all the
Fagin-family experiments need (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError


@dataclass
class FeatureSpace:
    """A named feature matrix: one row per object."""

    name: str
    vectors: np.ndarray  # (n_objects, dim)
    cluster_of: np.ndarray | None = None  # planted cluster id per object

    def __post_init__(self) -> None:
        if self.vectors.ndim != 2:
            raise WorkloadError(f"feature matrix must be 2-D, got shape {self.vectors.shape}")

    @property
    def n_objects(self) -> int:
        return self.vectors.shape[0]

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    def vector(self, obj_id: int) -> np.ndarray:
        if not 0 <= obj_id < self.n_objects:
            raise WorkloadError(f"object id {obj_id} outside feature space")
        return self.vectors[obj_id]


def color_histograms(
    n_objects: int,
    bins: int = 16,
    n_clusters: int = 8,
    concentration: float = 40.0,
    seed: int = 0,
) -> FeatureSpace:
    """Color-histogram-like features: rows are points on the simplex.

    Each cluster has a Dirichlet "palette"; objects are Dirichlet draws
    concentrated around their cluster's palette.
    """
    if n_objects <= 0 or bins <= 1 or n_clusters <= 0:
        raise WorkloadError("n_objects, bins and n_clusters must be positive (bins > 1)")
    rng = np.random.default_rng(seed)
    palettes = rng.dirichlet(np.ones(bins) * 1.5, size=n_clusters)
    cluster_of = rng.integers(0, n_clusters, size=n_objects)
    vectors = np.empty((n_objects, bins))
    for cluster in range(n_clusters):
        members = np.nonzero(cluster_of == cluster)[0]
        if len(members) == 0:
            continue
        alpha = palettes[cluster] * concentration + 0.1
        vectors[members] = rng.dirichlet(alpha, size=len(members))
    return FeatureSpace("color", vectors, cluster_of)


def texture_features(
    n_objects: int,
    dim: int = 8,
    n_clusters: int = 8,
    spread: float = 0.15,
    seed: int = 0,
) -> FeatureSpace:
    """Texture-like features: Gaussian mixture in the unit cube."""
    if n_objects <= 0 or dim <= 0 or n_clusters <= 0:
        raise WorkloadError("n_objects, dim and n_clusters must be positive")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.1, 0.9, size=(n_clusters, dim))
    cluster_of = rng.integers(0, n_clusters, size=n_objects)
    vectors = np.clip(
        centers[cluster_of] + rng.normal(0.0, spread, size=(n_objects, dim)), 0.0, 1.0
    )
    return FeatureSpace("texture", vectors, cluster_of)


def keyword_scores(
    n_objects: int,
    sparsity: float = 0.9,
    seed: int = 0,
) -> FeatureSpace:
    """A one-dimensional "annotation score" feature: most objects score
    near zero (sparse keyword match), a few score high — mimicking a
    text-annotation subsystem attached to an image archive."""
    if not 0.0 <= sparsity < 1.0:
        raise WorkloadError(f"sparsity must be in [0, 1), got {sparsity}")
    rng = np.random.default_rng(seed)
    scores = rng.beta(0.5, 8.0, size=n_objects)
    mask = rng.random(n_objects) < sparsity
    scores[mask] *= 0.05
    return FeatureSpace("keywords", scores.reshape(-1, 1))


def query_near_cluster(space: FeatureSpace, cluster: int, noise: float = 0.05,
                       seed: int = 0) -> np.ndarray:
    """A query vector near one of a space's planted cluster centers."""
    if space.cluster_of is None:
        raise WorkloadError(f"feature space {space.name!r} has no planted clusters")
    members = np.nonzero(space.cluster_of == cluster)[0]
    if len(members) == 0:
        raise WorkloadError(f"cluster {cluster} is empty in space {space.name!r}")
    rng = np.random.default_rng(seed)
    center = space.vectors[members].mean(axis=0)
    query = center + rng.normal(0.0, noise, size=space.dim)
    return np.clip(query, 0.0, None)
