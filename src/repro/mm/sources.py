"""Score sources: the access model of Fagin's middleware algorithms.

Fagin's FA/TA/NRA see each subsystem (a feature index, a text engine)
as a *graded list* supporting

* **sorted access** — next ``(object, grade)`` in descending grade
  order, and
* **random access** — the grade of a given object.

Both access kinds are charged on the active cost counters
(``sorted_accesses`` / ``random_accesses``), which is the cost measure
Fagin's analysis — and experiment E6 — is stated in.

:class:`ArraySource` wraps a precomputed score array (e.g. a feature
similarity for one query).  :class:`PostingsSource` adapts one query
term of an inverted index, bridging the IR substrate into the same
middleware model (objects absent from the posting list grade 0).
"""

from __future__ import annotations

import numpy as np

from ..errors import SourceExhaustedError, TopNError
from ..storage import stats
from .distances import similarity_scores
from .features import FeatureSpace


class ScoreSource:
    """Abstract graded list over objects ``0 .. n_objects - 1``."""

    name = "source"

    @property
    def n_objects(self) -> int:
        raise NotImplementedError

    def sorted_access(self, rank: int) -> tuple[int, float]:
        """The ``rank``-th best ``(object, grade)`` (0-based).  Charges
        one sorted access."""
        raise NotImplementedError

    def random_access(self, obj_id: int) -> float:
        """The grade of ``obj_id``.  Charges one random access."""
        raise NotImplementedError

    def exhausted(self, rank: int) -> bool:
        """True when ``rank`` is past the end of the list."""
        return rank >= self.n_objects


class ArraySource(ScoreSource):
    """A score source over a dense grade array (one grade per object)."""

    def __init__(self, scores: np.ndarray, name: str = "array") -> None:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise TopNError(f"scores must be one-dimensional, got shape {scores.shape}")
        if len(scores) and scores.min() < 0:
            raise TopNError("grades must be non-negative (monotone aggregation contract)")
        self.name = name
        self._scores = scores
        # descending grade order; ties broken by object id for determinism
        self._order = np.lexsort((np.arange(len(scores)), -scores))

    @property
    def n_objects(self) -> int:
        return len(self._scores)

    def sorted_access(self, rank: int) -> tuple[int, float]:
        if rank >= len(self._order):
            raise SourceExhaustedError(
                f"sorted access past end of source {self.name!r} (rank {rank})"
            )
        stats.charge_sorted_accesses(1)
        obj = int(self._order[rank])
        return obj, float(self._scores[obj])

    def random_access(self, obj_id: int) -> float:
        if not 0 <= obj_id < len(self._scores):
            raise TopNError(f"object id {obj_id} outside source {self.name!r}")
        stats.charge_random_accesses(1)
        return float(self._scores[obj_id])

    def bottom_grade(self, rank: int) -> float:
        """Grade at ``rank`` without charging (used only by tests)."""
        return float(self._scores[self._order[min(rank, len(self._order) - 1)]])


def feature_source(space: FeatureSpace, query: np.ndarray, measure: str = "l2") -> ArraySource:
    """Build a graded list from a feature space and a query vector."""
    scores = similarity_scores(space.vectors, query, measure)
    return ArraySource(scores, name=f"{space.name}:{measure}")


class PostingsSource(ScoreSource):
    """One query term of an inverted index as a graded list.

    Grades are the ranking model's partial scores; objects without the
    term grade 0.  Sorted access sorts the posting list by partial
    score once, at first use (charged as comparisons + the posting
    scan); random access binary-searches the doc-sorted postings.
    """

    def __init__(self, index, tid: int, model) -> None:
        self.index = index
        self.tid = tid
        self.model = model
        self.name = f"term:{tid}"
        doc_ids, tfs = index.postings(tid)
        self._doc_ids = doc_ids  # ascending doc id (for random access)
        partials = (
            model.partial_scores(index, tid, doc_ids, tfs)
            if len(doc_ids)
            else np.empty(0, dtype=np.float64)
        )
        self._partials = partials
        order = np.lexsort((doc_ids, -partials))
        stats.charge_comparisons(len(doc_ids) * max(int(np.log2(max(len(doc_ids), 2))), 1))
        self._by_score_docs = doc_ids[order]
        self._by_score_grades = partials[order]

    @property
    def n_objects(self) -> int:
        return self.index.n_docs

    @property
    def posting_length(self) -> int:
        return len(self._doc_ids)

    def exhausted(self, rank: int) -> bool:
        # after the posting list ends, every remaining object grades 0
        return rank >= len(self._by_score_docs)

    def sorted_access(self, rank: int) -> tuple[int, float]:
        if rank >= len(self._by_score_docs):
            raise SourceExhaustedError(
                f"sorted access past posting list of {self.name!r} (rank {rank})"
            )
        stats.charge_sorted_accesses(1)
        return int(self._by_score_docs[rank]), float(self._by_score_grades[rank])

    def random_access(self, obj_id: int) -> float:
        stats.charge_random_accesses(1)
        pos = int(np.searchsorted(self._doc_ids, obj_id))
        if pos < len(self._doc_ids) and self._doc_ids[pos] == obj_id:
            return float(self._partials[pos])
        return 0.0
