"""Score sources: the access model of Fagin's middleware algorithms.

Fagin's FA/TA/NRA see each subsystem (a feature index, a text engine)
as a *graded list* supporting

* **sorted access** — next ``(object, grade)`` in descending grade
  order, and
* **random access** — the grade of a given object.

Both access kinds are charged on the active cost counters
(``sorted_accesses`` / ``random_accesses``), which is the cost measure
Fagin's analysis — and experiment E6 — is stated in.

:class:`ArraySource` wraps a precomputed score array (e.g. a feature
similarity for one query).  :class:`PostingsSource` adapts one query
term of an inverted index, bridging the IR substrate into the same
middleware model (objects absent from the posting list grade 0).
"""

from __future__ import annotations

import numpy as np

from ..errors import SourceExhaustedError, TopNError
from ..storage import stats
from ..storage.blocks import ScoredBlocks
from .distances import similarity_scores
from .features import FeatureSpace


class ScoreSource:
    """Abstract graded list over objects ``0 .. n_objects - 1``."""

    name = "source"

    @property
    def n_objects(self) -> int:
        raise NotImplementedError

    def sorted_access(self, rank: int) -> tuple[int, float]:
        """The ``rank``-th best ``(object, grade)`` (0-based).  Charges
        one sorted access."""
        raise NotImplementedError

    def random_access(self, obj_id: int) -> float:
        """The grade of ``obj_id``.  Charges one random access."""
        raise NotImplementedError

    def exhausted(self, rank: int) -> bool:
        """True when ``rank`` is past the end of the list."""
        return rank >= self.n_objects

    def synopsis(self, ranks) -> list[tuple[int, float]] | None:
        """Catalog metadata: ``(object, grade)`` at the given sorted
        ranks, **uncharged** — the planner's champion-list sketch.

        Like a zone map or the per-block upper bounds of
        :class:`~repro.storage.blocks.ScoredBlocks`, this is metadata a
        DBMS computes once while building the sorted list (the sort at
        source construction is where the work already happened), so
        reading it costs no sorted or random accesses at query time.
        The adaptive plan chooser uses it to estimate the threshold
        decay rate and cross-source agreement of a query *before*
        picking an engine.  Ranks past the stored list report grade 0
        (the posting convention: absent objects grade 0).  Returns
        ``None`` when the source keeps no such metadata.
        """
        return None


class ArraySource(ScoreSource):
    """A score source over a dense grade array (one grade per object)."""

    def __init__(self, scores: np.ndarray, name: str = "array") -> None:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise TopNError(f"scores must be one-dimensional, got shape {scores.shape}")
        if len(scores) and scores.min() < 0:
            raise TopNError("grades must be non-negative (monotone aggregation contract)")
        self.name = name
        self._scores = scores
        # descending grade order; ties broken by object id for determinism
        self._order = np.lexsort((np.arange(len(scores)), -scores))

    @property
    def n_objects(self) -> int:
        return len(self._scores)

    def sorted_access(self, rank: int) -> tuple[int, float]:
        if rank >= len(self._order):
            raise SourceExhaustedError(
                f"sorted access past end of source {self.name!r} (rank {rank})"
            )
        stats.charge_sorted_accesses(1)
        obj = int(self._order[rank])
        return obj, float(self._scores[obj])

    def random_access(self, obj_id: int) -> float:
        if not 0 <= obj_id < len(self._scores):
            raise TopNError(f"object id {obj_id} outside source {self.name!r}")
        stats.charge_random_accesses(1)
        return float(self._scores[obj_id])

    def bottom_grade(self, rank: int) -> float:
        """Grade at ``rank`` without charging (used only by tests)."""
        return float(self._scores[self._order[min(rank, len(self._order) - 1)]])

    def synopsis(self, ranks) -> list[tuple[int, float]]:
        out = []
        for rank in ranks:
            if 0 <= rank < len(self._order):
                obj = int(self._order[rank])
                out.append((obj, float(self._scores[obj])))
            else:
                out.append((-1, 0.0))
        return out


def feature_source(space: FeatureSpace, query: np.ndarray, measure: str = "l2") -> ArraySource:
    """Build a graded list from a feature space and a query vector."""
    scores = similarity_scores(space.vectors, query, measure)
    return ArraySource(scores, name=f"{space.name}:{measure}")


class PostingsSource(ScoreSource):
    """One query term of an inverted index as a graded list.

    Grades are the ranking model's partial scores; objects without the
    term grade 0.  Sorted access sorts the posting list by partial
    score once, at first use (charged as comparisons + the posting
    scan); random access binary-searches the doc-sorted postings.
    """

    def __init__(self, index, tid: int, model) -> None:
        self.index = index
        self.tid = tid
        self.model = model
        self.name = f"term:{tid}"
        doc_ids, tfs = index.postings(tid)
        self._doc_ids = doc_ids  # ascending doc id (for random access)
        partials = (
            model.partial_scores(index, tid, doc_ids, tfs)
            if len(doc_ids)
            else np.empty(0, dtype=np.float64)
        )
        self._partials = partials
        order = np.lexsort((doc_ids, -partials))
        stats.charge_comparisons(len(doc_ids) * max(int(np.log2(max(len(doc_ids), 2))), 1))
        self._by_score_docs = doc_ids[order]
        self._by_score_grades = partials[order]

    @property
    def n_objects(self) -> int:
        return self.index.n_docs

    @property
    def posting_length(self) -> int:
        return len(self._doc_ids)

    def exhausted(self, rank: int) -> bool:
        # after the posting list ends, every remaining object grades 0
        return rank >= len(self._by_score_docs)

    def sorted_access(self, rank: int) -> tuple[int, float]:
        if rank >= len(self._by_score_docs):
            raise SourceExhaustedError(
                f"sorted access past posting list of {self.name!r} (rank {rank})"
            )
        stats.charge_sorted_accesses(1)
        return int(self._by_score_docs[rank]), float(self._by_score_grades[rank])

    def random_access(self, obj_id: int) -> float:
        stats.charge_random_accesses(1)
        pos = int(np.searchsorted(self._doc_ids, obj_id))
        if pos < len(self._doc_ids) and self._doc_ids[pos] == obj_id:
            return float(self._partials[pos])
        return 0.0

    def synopsis(self, ranks) -> list[tuple[int, float]]:
        out = []
        for rank in ranks:
            if 0 <= rank < len(self._by_score_docs):
                out.append((int(self._by_score_docs[rank]),
                            float(self._by_score_grades[rank])))
            else:
                out.append((-1, 0.0))
        return out


class BlockedSource(ScoreSource):
    """A graded list stored as scored blocks (block-at-a-time access).

    The scalar :class:`ScoreSource` interface is preserved bit for bit
    — the block payload is the same descending-grade / id-ascending
    order :class:`ArraySource` and :class:`PostingsSource` use — so
    everything written against the scalar protocol (the scalar engines,
    the replay wrapper :class:`~repro.cache.resume.ReplaySource`, the
    parallel coordinator's range evaluators) keeps working over blocked
    storage unchanged.  On top of it, the block API serves whole
    ``(doc_ids, grades)`` slabs with one bulk sorted-access charge, the
    per-block score upper bounds the blocked engines prune by, and
    vectorized random access for batch grade completion.
    """

    def __init__(self, dense_grades: np.ndarray, blocks: ScoredBlocks,
                 name: str = "blocked") -> None:
        dense_grades = np.asarray(dense_grades, dtype=np.float64)
        if dense_grades.ndim != 1:
            raise TopNError(
                f"grades must be one-dimensional, got shape {dense_grades.shape}")
        if len(dense_grades) and dense_grades.min() < 0:
            raise TopNError("grades must be non-negative (monotone aggregation contract)")
        self.name = name
        self._dense = dense_grades
        self.blocks = blocks

    @classmethod
    def from_array(cls, scores, block_size: int, name: str = "blocked") -> "BlockedSource":
        """Blocked view of a dense grade array (one grade per object);
        the sorted-access order matches :class:`ArraySource` exactly."""
        scores = np.asarray(scores, dtype=np.float64)
        blocks = ScoredBlocks(np.arange(len(scores), dtype=np.int64), scores,
                              block_size)
        return cls(scores, blocks, name=name)

    @classmethod
    def from_postings(cls, index, tid: int, model, block_size: int) -> "BlockedSource":
        """Blocked view of one query term of an inverted index; the
        sorted-access order matches :class:`PostingsSource` exactly
        (objects without the term grade 0 under random access)."""
        doc_ids, tfs = index.postings(tid)
        partials = (
            model.partial_scores(index, tid, doc_ids, tfs)
            if len(doc_ids)
            else np.empty(0, dtype=np.float64)
        )
        # same one-off sort charge as the scalar postings adapter
        stats.charge_comparisons(len(doc_ids) * max(int(np.log2(max(len(doc_ids), 2))), 1))
        dense = np.zeros(index.n_docs, dtype=np.float64)
        if len(doc_ids):
            dense[doc_ids] = partials
        blocks = ScoredBlocks(doc_ids, partials, block_size)
        return cls(dense, blocks, name=f"term:{tid}")

    # -- scalar protocol ----------------------------------------------------

    @property
    def n_objects(self) -> int:
        return len(self._dense)

    def exhausted(self, rank: int) -> bool:
        # past the stored list every remaining object grades 0 (the
        # posting-source convention; dense builds store every object)
        return rank >= self.blocks.n_postings

    def sorted_access(self, rank: int) -> tuple[int, float]:
        if rank >= self.blocks.n_postings:
            raise SourceExhaustedError(
                f"sorted access past end of source {self.name!r} (rank {rank})")
        stats.charge_sorted_accesses(1)
        return int(self.blocks.doc_ids[rank]), float(self.blocks.grades[rank])

    def random_access(self, obj_id: int) -> float:
        if not 0 <= obj_id < len(self._dense):
            raise TopNError(f"object id {obj_id} outside source {self.name!r}")
        stats.charge_random_accesses(1)
        return float(self._dense[obj_id])

    # -- block-at-a-time protocol -------------------------------------------

    @property
    def block_size(self) -> int:
        return self.blocks.block_size

    @property
    def n_blocks(self) -> int:
        return self.blocks.n_blocks

    @property
    def dense_grades(self) -> np.ndarray:
        """The per-object grade column (read-only use by the blocked
        engines for vectorized completion; not charged — charging
        happens via :meth:`random_access_many`)."""
        return self._dense

    def read_block(self, b: int) -> tuple[np.ndarray, np.ndarray]:
        """Block ``b`` as ``(doc_ids, grades)``, charged as one bulk
        sorted-access run over the block's postings."""
        doc_ids, grades = self.blocks.block(b)
        stats.charge_sorted_accesses(len(doc_ids))
        return doc_ids, grades

    def block_upper(self, b: int) -> float:
        return self.blocks.block_upper(b)

    def random_access_many(self, obj_ids: np.ndarray) -> np.ndarray:
        """Grades of ``obj_ids`` in one vectorized probe (one random
        access charged per object, matching the scalar loop)."""
        stats.charge_random_accesses(len(obj_ids))
        return self._dense[obj_ids]

    def threshold_bounds(self, epoch: int = 0):
        """Per-block upper bounds as epoch-stamped ThresholdBound
        records (see :meth:`repro.storage.blocks.ScoredBlocks.threshold_bounds`)."""
        return self.blocks.threshold_bounds(epoch)

    def synopsis(self, ranks) -> list[tuple[int, float]]:
        out = []
        for rank in ranks:
            if 0 <= rank < self.blocks.n_postings:
                out.append((int(self.blocks.doc_ids[rank]),
                            float(self.blocks.grades[rank])))
            else:
                out.append((-1, 0.0))
        return out
