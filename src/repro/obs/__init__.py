"""repro.obs — execution tracing and metrics.

The observability layer over the simulated cost model:

* :mod:`repro.obs.tracer` — thread-local span stack with per-span
  wall time and :class:`~repro.storage.stats.CostCounter`
  snapshot/delta attribution, a bounded trace buffer and JSONL export;
* :mod:`repro.obs.metrics` — counters / gauges / histograms with a
  global registry and a zero-cost no-op mode while disabled;
* :mod:`repro.obs.profile` — profiled runs and the span-tree cost
  breakdown behind ``repro profile``.

A note on the cost substrate this layer reads: *work performed* is
counted by :mod:`repro.storage.stats` (the ``CostCounter`` stack the
tracer snapshots), which is **not** the same module as
:mod:`repro.storage.statistics` — that one holds *column statistics*
(zone maps, histograms) for the optimizer's selectivity estimates.
Spans attribute the former; they never read the latter.

Everything is off by default: with no active
:func:`~repro.obs.tracer.trace_session` and metrics disabled, the
instrumentation threaded through the kernel, the top-N engines, the
optimizer and the fragmentation executor reduces to shared no-op
singletons.  Use :func:`observe` to switch both facilities on for a
scope::

    from repro import obs

    with obs.observe() as session:
        run_query(...)
    print(obs.ProfileReport(roots=list(session.roots), ...))  # or:
    result = obs.run_profiled(lambda: run_query(...))
"""

from __future__ import annotations

from contextlib import contextmanager

from . import metrics, tracer
from .profile import ProfileReport, run_profiled
from .tracer import (
    NOOP_SPAN,
    SpanRecord,
    TraceSession,
    annotate,
    current_session,
    enabled,
    event,
    span,
    start_session,
    stop_session,
    trace_session,
)

__all__ = [
    "NOOP_SPAN",
    "ProfileReport",
    "SpanRecord",
    "TraceSession",
    "annotate",
    "current_session",
    "enabled",
    "event",
    "metrics",
    "observe",
    "run_profiled",
    "span",
    "start_session",
    "stop_session",
    "trace_session",
    "tracer",
]


@contextmanager
def observe(max_spans: int = tracer.DEFAULT_MAX_SPANS):
    """Enable tracing *and* metrics for the enclosed scope."""
    was_enabled = metrics.enabled()
    metrics.enable()
    try:
        with trace_session(max_spans=max_spans) as session:
            yield session
    finally:
        if not was_enabled:
            metrics.disable()
