"""Counters, gauges and histograms with a global registry.

Complements the tracer: spans say *where* cost accrues within one run,
metrics accumulate named quantities *across* runs (buffer-pool churn,
heap evictions, optimizer rule hits) without any span context.

Zero-cost no-op mode
--------------------
Metrics are **disabled by default**.  While disabled, the fast-path
helpers (:func:`inc`, :func:`set_gauge`, :func:`observe`) return after
a single global read, and the instrument accessors (:func:`counter`,
:func:`gauge`, :func:`histogram`) hand out shared no-op singletons, so
instrumented hot paths — the buffer manager charges one :func:`inc`
per page request — add no measurable overhead to the benchmarks.
Enable with :func:`enable` or via
:func:`repro.obs.observe`, which turns on tracing and metrics
together.

Naming follows the tracer's convention: dotted lowercase
``<subsystem>.<quantity>``, e.g. ``buffer.evictions``,
``topn.heap.evictions``, ``optimizer.rule_hits``.
"""

from __future__ import annotations

import math

from ..sync import declares_shared_state, make_lock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "add_reset_hook",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "inc",
    "observe",
    "registry",
    "reset",
    "set_gauge",
    "snapshot",
]


@declares_shared_state
class Counter:
    """Monotonically increasing count.

    Worker threads increment concurrently (the buffer manager charges
    one :func:`inc` per page request), so the read-modify-write goes
    through a class-wide lock; the lock is class-level to keep the
    per-instance footprint at two slots.
    """

    __slots__ = ("name", "value")

    SHARED_STATE = {"value": "_instrument_lock"}
    _instrument_lock = make_lock("metrics.counter")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._instrument_lock:
            self.value += n


@declares_shared_state
class Gauge:
    """Last-write-wins value (pool occupancy, current depth, ...)."""

    __slots__ = ("name", "value")

    SHARED_STATE = {"value": "_instrument_lock"}
    _instrument_lock = make_lock("metrics.gauge")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._instrument_lock:
            self.value = float(value)


@declares_shared_state
class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    Deliberately tiny: the reproduction needs distribution *summaries*
    (posting lengths touched, per-round thresholds), not quantile
    sketches."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    SHARED_STATE = {
        "count": "_instrument_lock",
        "total": "_instrument_lock",
        "minimum": "_instrument_lock",
        "maximum": "_instrument_lock",
    }
    _instrument_lock = make_lock("metrics.histogram")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._instrument_lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
        }


class _NoopCounter:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NoopGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NoopHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: shared no-op instruments handed out while metrics are disabled
NOOP_COUNTER = _NoopCounter()
NOOP_GAUGE = _NoopGauge()
NOOP_HISTOGRAM = _NoopHistogram()


@declares_shared_state
class MetricsRegistry:
    """Name → instrument map; get-or-create accessors."""

    SHARED_STATE = {
        "counters": "_lock",
        "gauges": "_lock",
        "histograms": "_lock",
    }

    def __init__(self) -> None:
        self._lock = make_lock("metrics.registry")
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.histograms.setdefault(name, Histogram(name))
        return instrument

    def snapshot(self) -> dict:
        """All instruments as one JSON-able dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


#: enable/disable happen in single-threaded setup, never on worker paths;
#: reset hooks are registered at import time by subsystems holding their
#: own counters (e.g. the query cache)
SHARED_STATE = {"_enabled": "<config>", "_reset_hooks": "<config>"}

_registry = MetricsRegistry()
_enabled = False
_reset_hooks: list = []


def registry() -> MetricsRegistry:
    """The global registry (instruments persist across enable cycles)."""
    return _registry


def enabled() -> bool:
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def add_reset_hook(hook) -> None:
    """Register a callable to run on every :func:`reset`.

    Subsystems that keep effectiveness counters outside the registry
    (the query cache's hit/miss/resume tallies) register here so
    ``metrics.reset()`` — and therefore ``repro profile`` — never
    reports stale rates.  Registration is idempotent."""
    if hook not in _reset_hooks:
        _reset_hooks.append(hook)


def reset() -> None:
    """Drop every instrument from the global registry and run the
    registered reset hooks."""
    _registry.reset()
    for hook in _reset_hooks:
        hook()


def snapshot() -> dict:
    return _registry.snapshot()


# -- fast-path helpers ------------------------------------------------------


def counter(name: str):
    """The named counter, or the shared no-op while disabled."""
    if not _enabled:
        return NOOP_COUNTER
    return _registry.counter(name)


def gauge(name: str):
    if not _enabled:
        return NOOP_GAUGE
    return _registry.gauge(name)


def histogram(name: str):
    if not _enabled:
        return NOOP_HISTOGRAM
    return _registry.histogram(name)


def inc(name: str, n: int = 1) -> None:
    """Increment a counter (single-branch no-op while disabled)."""
    if not _enabled:
        return
    _registry.counter(name).inc(n)


def set_gauge(name: str, value: float) -> None:
    if not _enabled:
        return
    _registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    if not _enabled:
        return
    _registry.histogram(name).observe(value)
