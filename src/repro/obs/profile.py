"""Profiled execution: run a callable under tracing + cost counting
and render a span-tree / per-operator cost breakdown.

This is the library behind the ``repro profile`` CLI subcommand and
the reproducibility hook EXPERIMENTS.md points at: every experiment's
"how much data is processed" claim can now be broken down span by
span, and the breakdown is *checked* — the sum of all spans' exclusive
costs must equal the run's :class:`~repro.storage.stats.CostCounter`
totals (up to work done outside any span, reported as the
``untraced`` row).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..storage import stats as _stats
from . import metrics as _metrics
from . import tracer as _tracer

__all__ = ["ProfileReport", "run_profiled", "COST_COLUMNS"]

#: columns of the text table: (header, snapshot key)
COST_COLUMNS = (
    ("pages", "page_reads"),
    ("hits", "buffer_hits"),
    ("tup_r", "tuples_read"),
    ("tup_w", "tuples_written"),
    ("cmp", "comparisons"),
    ("sort_acc", "sorted_accesses"),
    ("rand_acc", "random_accesses"),
)


@dataclass
class ProfileReport:
    """Outcome of one profiled run."""

    roots: list
    totals: dict
    wall_seconds: float
    dropped_spans: int = 0
    metrics: dict = field(default_factory=dict)
    result: object = None

    def spans(self):
        for root in self.roots:
            yield from root.walk()

    def self_cost_totals(self) -> dict:
        """Sum of every span's exclusive cost."""
        totals: dict = {}
        for record in self.spans():
            for key, value in record.self_cost.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def untraced(self) -> dict:
        """Cost charged during the run but outside every span."""
        traced = self.self_cost_totals()
        return {
            key: self.totals.get(key, 0) - traced.get(key, 0)
            for key in dict.fromkeys(list(self.totals) + list(traced))
        }

    # -- rendering ---------------------------------------------------------

    def render_text(self, max_events: int = 0) -> str:
        """Aligned span-tree table: self costs per span, totals last."""
        headers = ["span", "wall_ms"] + [header for header, _ in COST_COLUMNS]
        rows: list[list[str]] = []

        def add_row(label: str, wall_ms, cost: dict) -> None:
            rows.append(
                [label, f"{wall_ms:.2f}" if wall_ms is not None else ""]
                + [str(cost.get(key, 0)) for _, key in COST_COLUMNS]
            )

        def walk(record, indent: int) -> None:
            attrs = " ".join(
                f"{k}={v}" for k, v in record.attrs.items() if not isinstance(v, dict)
            )
            label = "  " * indent + record.name + (f" [{attrs}]" if attrs else "")
            add_row(label, record.duration * 1e3, record.self_cost)
            for i, ev in enumerate(record.events):
                if i >= max_events:
                    remaining = len(record.events) - max_events
                    if remaining > 0:
                        rows.append(
                            ["  " * (indent + 1) + f"... {remaining} more events", ""]
                            + [""] * len(COST_COLUMNS)
                        )
                    break
                ev_attrs = " ".join(f"{k}={v}" for k, v in ev["attrs"].items())
                rows.append(
                    ["  " * (indent + 1) + f"* {ev['name']} {ev_attrs}".rstrip(), ""]
                    + [""] * len(COST_COLUMNS)
                )
            for child in record.children:
                walk(child, indent + 1)

        for root in self.roots:
            walk(root, 0)
        untraced = self.untraced()
        if any(untraced.get(key, 0) for _, key in COST_COLUMNS):
            add_row("(untraced)", None, untraced)
        add_row("TOTAL (CostCounter)", self.wall_seconds * 1e3, self.totals)

        widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(len(headers))]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * widths[i] for i in range(len(headers))),
        ]
        for row in rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
        if self.dropped_spans:
            lines.append(f"({self.dropped_spans} oldest root spans dropped by the buffer bound)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "wall_seconds": self.wall_seconds,
            "totals": self.totals,
            "self_cost_totals": self.self_cost_totals(),
            "untraced": self.untraced(),
            "dropped_spans": self.dropped_spans,
            "metrics": self.metrics,
            "spans": [record.to_dict() for root in self.roots for record in root.walk()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def export_jsonl(self, path) -> int:
        """Write the trace as JSON Lines (one flattened span per line);
        returns the span count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.spans():
                handle.write(json.dumps(record.to_dict()) + "\n")
                count += 1
        return count


def run_profiled(fn, *, max_spans: int = _tracer.DEFAULT_MAX_SPANS,
                 with_metrics: bool = True) -> ProfileReport:
    """Run ``fn()`` under a trace session and an outer cost counter.

    Returns a :class:`ProfileReport`; ``fn``'s return value is kept in
    ``report.result``.  Metrics are enabled for the duration (and
    restored afterwards) unless ``with_metrics=False``.
    """
    was_enabled = _metrics.enabled()
    if with_metrics:
        _metrics.enable()
    try:
        with _stats.CostCounter.activate() as cost:
            with _tracer.trace_session(max_spans=max_spans) as session:
                import time

                t0 = time.perf_counter()
                result = fn()
                wall = time.perf_counter() - t0
        return ProfileReport(
            roots=list(session.roots),
            totals=cost.snapshot(),
            wall_seconds=wall,
            dropped_spans=session.dropped,
            metrics=_metrics.snapshot() if with_metrics else {},
            result=result,
        )
    finally:
        if with_metrics and not was_enabled:
            _metrics.disable()
