"""Span-based execution tracer.

The paper's claims are all stated in terms of *work performed* — how
much data is processed, how many sorted/random accesses the
Fagin-family middleware algorithms issue.  The end-of-run totals of
:class:`~repro.storage.stats.CostCounter` say *how much*; this module
says *when and where*: a thread-local stack of nested **spans**, each
recording wall time, structured attributes, point **events**, and
start/end :meth:`~repro.storage.stats.CostCounter.snapshot` views of a
session-owned cost counter, so every span knows its inclusive
simulated cost (via :meth:`~repro.storage.stats.CostCounter.delta`)
and, by subtracting its children, its exclusive ("self") cost.

Usage::

    from repro.obs import tracer

    with tracer.trace_session() as session:
        with tracer.span("ta.run", n=10):
            ...
            tracer.event("ta.round", depth=depth, threshold=tau)
    for record in session.spans():
        print(record.name, record.cost)

Design rules:

* **Disabled is the default and costs (almost) nothing.**  With no
  active session, :func:`span` returns a shared no-op singleton and
  :func:`event` / :func:`annotate` return after one attribute lookup —
  no allocation reaches the trace buffer.  Hot loops that want to
  avoid even keyword-dict construction can guard on :func:`enabled`.
* **Bounded memory.**  Finished root spans land in a ``deque`` with a
  ``max_spans`` bound; the oldest trace is dropped (and counted in
  ``session.dropped``) rather than growing without limit.
* **JSONL export.**  :meth:`TraceSession.export_jsonl` writes one JSON
  object per span (flattened, parent ids preserved) for offline
  analysis and for ``repro profile --json``.

Naming convention (see ``docs/API.md``): dotted lowercase
``<subsystem>.<operation>`` — e.g. ``topn.ta``, ``ta.round``,
``kernel.sort_tail``, ``optimizer.logical``, ``frag.switch``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..storage import stats as _stats
from ..sync import declares_shared_state

__all__ = [
    "NOOP_SPAN",
    "SpanRecord",
    "TRACE_SCHEMA_VERSION",
    "TraceSession",
    "annotate",
    "current_session",
    "enabled",
    "event",
    "span",
    "start_session",
    "stop_session",
    "trace_session",
]

_local = threading.local()

#: default bound on retained finished root spans
DEFAULT_MAX_SPANS = 4096

#: version stamped on every exported span record (``repro profile
#: --export`` JSONL and ``--json`` payloads).  Consumers — the
#: calibration ingest in :mod:`repro.optimizer.adaptive` — validate it
#: and skip records from unknown versions, so a trace produced by a
#: different build degrades to a warning instead of silently feeding
#: the cost model misinterpreted fields.  Bump on any change to the
#: :meth:`SpanRecord.to_dict` schema.
TRACE_SCHEMA_VERSION = 1


@dataclass
class SpanRecord:
    """One recorded span: a named, attributed, costed scope."""

    span_id: int
    parent_id: int | None
    name: str
    attrs: dict
    depth: int
    t_start: float = 0.0
    t_end: float = 0.0
    cost_start: dict = field(default_factory=dict)
    cost_end: dict = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Inclusive wall-clock seconds."""
        return self.t_end - self.t_start

    @property
    def cost(self) -> dict:
        """Inclusive simulated-cost delta (this span and descendants)."""
        return _stats.CostCounter.delta(self.cost_start, self.cost_end)

    @property
    def self_cost(self) -> dict:
        """Exclusive cost: inclusive minus the children's inclusive.

        Summed over every span of a trace, self costs reconstruct the
        run's totals exactly — the invariant ``repro profile`` prints
        and the obs test suite asserts.
        """
        own = self.cost
        for child in self.children:
            for key, value in child.cost.items():
                own[key] = own.get(key, 0) - value
        return own

    def walk(self):
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """Flat JSON-able form (children referenced by ``parent_id``)."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "attrs": self.attrs,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "cost": self.cost,
            "self_cost": self.self_cost,
            "events": self.events,
        }


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


#: the singleton no-op span (identity-tested by the overhead tests)
NOOP_SPAN = _NoopSpan()


class _Span:
    """Live span handle: a context manager bound to one session."""

    __slots__ = ("_session", "_record", "_name", "_attrs")

    def __init__(self, session: "TraceSession", name: str, attrs: dict) -> None:
        self._session = session
        self._name = name
        self._attrs = attrs
        self._record: SpanRecord | None = None

    def __enter__(self) -> "_Span":
        self._record = self._session.begin(self._name, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._record is not None:
            if exc_type is not None:
                self._record.attrs.setdefault("error", exc_type.__name__)
            self._session.finish(self._record)
        return False

    def set(self, **attrs) -> "_Span":
        """Attach attributes to the underlying record."""
        if self._record is not None:
            self._record.attrs.update(attrs)
        else:
            self._attrs.update(attrs)
        return self


@declares_shared_state
class TraceSession:
    """One tracing scope: owns the cost counter and the span buffer.

    Sessions are *thread-confined* by design (the module hands them out
    via ``threading.local``), so the span buffer needs no lock — the
    declaration below states the confinement so the race sanitizer can
    verify that no worker thread ever reaches into a foreign session's
    buffers (the executor ships span-less cost snapshots instead).
    """

    SHARED_STATE = {
        "roots": "<thread-confined>",
        "stack": "<thread-confined>",
        "dropped": "<thread-confined>",
        "orphan_events": "<thread-confined>",
    }

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.counter = _stats.CostCounter()
        self.roots: deque[SpanRecord] = deque(maxlen=max_spans)
        self.stack: list[SpanRecord] = []
        self.dropped = 0
        self.orphan_events: list[dict] = []
        self._ids = itertools.count(1)

    # -- span lifecycle ----------------------------------------------------

    def begin(self, name: str, attrs: dict) -> SpanRecord:
        parent = self.stack[-1] if self.stack else None
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            name=name,
            attrs=dict(attrs),
            depth=len(self.stack),
        )
        record.cost_start = self.counter.snapshot()
        record.t_start = time.perf_counter()
        if parent is not None:
            parent.children.append(record)
        self.stack.append(record)
        return record

    def finish(self, record: SpanRecord) -> None:
        record.t_end = time.perf_counter()
        record.cost_end = self.counter.snapshot()
        while self.stack:
            top = self.stack.pop()
            if top is record:
                break
        if record.parent_id is None:
            if self.roots.maxlen is not None and len(self.roots) == self.roots.maxlen:
                self.dropped += 1
            self.roots.append(record)

    def event(self, name: str, attrs: dict) -> None:
        """Record a point event on the innermost open span."""
        entry = {"name": name, "t": time.perf_counter(), "attrs": attrs}
        if self.stack:
            self.stack[-1].events.append(entry)
        elif len(self.orphan_events) < 1024:
            self.orphan_events.append(entry)

    # -- introspection -----------------------------------------------------

    def spans(self):
        """Every finished span, depth-first over the retained roots."""
        for root in self.roots:
            yield from root.walk()

    def self_cost_totals(self) -> dict:
        """Sum of every retained span's exclusive cost."""
        totals: dict = {}
        for record in self.spans():
            for key, value in record.self_cost.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The trace as JSON Lines: one flattened span object per line."""
        return "\n".join(json.dumps(record.to_dict()) for record in self.spans())

    def export_jsonl(self, path) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the span count."""
        lines = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            if lines:
                handle.write(lines + "\n")
        return sum(1 for _ in self.spans())


# -- module-level session management ---------------------------------------


def current_session() -> TraceSession | None:
    """The active session of this thread, or ``None``."""
    return getattr(_local, "session", None)


def enabled() -> bool:
    """Whether a trace session is active on this thread."""
    return getattr(_local, "session", None) is not None


def start_session(max_spans: int = DEFAULT_MAX_SPANS) -> TraceSession:
    """Begin tracing on this thread (and activate the session's cost
    counter, so spans can attribute simulated cost)."""
    if current_session() is not None:
        raise RuntimeError("a trace session is already active on this thread")
    session = TraceSession(max_spans=max_spans)
    session.counter.__enter__()
    _local.session = session
    return session


def stop_session() -> TraceSession | None:
    """End tracing; closes any still-open spans defensively and
    returns the finished session (``None`` when not tracing)."""
    session = current_session()
    if session is None:
        return None
    while session.stack:
        session.finish(session.stack[-1])
    _local.session = None
    session.counter.__exit__(None, None, None)
    return session


class _TraceScope:
    """Context manager for a tracing scope (with-statement form)."""

    __slots__ = ("_max_spans", "_session")

    def __init__(self, max_spans: int) -> None:
        self._max_spans = max_spans
        self._session: TraceSession | None = None

    def __enter__(self) -> TraceSession:
        self._session = start_session(self._max_spans)
        return self._session

    def __exit__(self, exc_type, exc, tb) -> bool:
        if current_session() is self._session:
            stop_session()
        return False


def trace_session(max_spans: int = DEFAULT_MAX_SPANS) -> _TraceScope:
    """``with trace_session() as session:`` — trace the enclosed work."""
    return _TraceScope(max_spans)


# -- recording primitives ---------------------------------------------------


def span(name: str, **attrs):
    """Open a span: ``with span("topn.ta", n=10) as sp: ...``.

    Returns the shared :data:`NOOP_SPAN` when tracing is disabled."""
    session = getattr(_local, "session", None)
    if session is None:
        return NOOP_SPAN
    return _Span(session, name, attrs)


def event(name: str, **attrs) -> None:
    """Record a point event on the current span (no-op when disabled).

    Per-iteration call sites (e.g. one event per TA round) should
    guard on :func:`enabled` to skip keyword construction entirely."""
    session = getattr(_local, "session", None)
    if session is None:
        return
    session.event(name, attrs)


def annotate(**attrs) -> None:
    """Merge attributes into the current span (no-op when disabled)."""
    session = getattr(_local, "session", None)
    if session is None:
        return
    if session.stack:
        session.stack[-1].attrs.update(attrs)
