"""The three-layer optimizer (paper Steps 2 and 3): general logical
rules, the novel inter-object layer coordinating rewrites across
extensions, E-ADT-style intra-object rules, and a centralized cost
model driving plan choice."""

from .adaptive import (
    CALIBRATION_VERSION,
    Calibration,
    CalibrationStore,
    ChooserDecision,
    PlanCandidate,
    QueryFeatures,
    bench_adaptive,
    choose,
    choose_engine,
    enumerate_candidates,
    explain_example1,
    explain_topn,
    pareto_frontier,
    query_features,
    train_calibration,
)
from .cost import ColumnStatisticsLike, CostModel, PlanEstimate
from .interobject import (
    DEFAULT_INTER_OBJECT_RULES,
    AggregateThroughConversion,
    PushSelectThroughConversion,
    PushSortThroughConversion,
    PushTopNThroughConversion,
    SliceOfSortIsTopN,
)
from .intraobject import intra_rules_for, register_intra_rule
from .logical import DEFAULT_LOGICAL_RULES, MergeSelects, SliceOfSlice, SortIdempotent
from .pipeline import OptimizationReport, Optimizer
from .rules import (
    BUDGET_EXHAUSTED_RULE,
    LAYERS,
    RewriteRule,
    RuleContext,
    TraceEntry,
    rewrite_fixpoint,
)

__all__ = [
    "AggregateThroughConversion",
    "BUDGET_EXHAUSTED_RULE",
    "CALIBRATION_VERSION",
    "Calibration",
    "CalibrationStore",
    "ChooserDecision",
    "ColumnStatisticsLike",
    "CostModel",
    "DEFAULT_INTER_OBJECT_RULES",
    "DEFAULT_LOGICAL_RULES",
    "LAYERS",
    "MergeSelects",
    "OptimizationReport",
    "Optimizer",
    "PlanCandidate",
    "PlanEstimate",
    "QueryFeatures",
    "PushSelectThroughConversion",
    "PushSortThroughConversion",
    "PushTopNThroughConversion",
    "RewriteRule",
    "RuleContext",
    "SliceOfSlice",
    "SliceOfSortIsTopN",
    "SortIdempotent",
    "TraceEntry",
    "bench_adaptive",
    "choose",
    "choose_engine",
    "enumerate_candidates",
    "explain_example1",
    "explain_topn",
    "intra_rules_for",
    "register_intra_rule",
    "pareto_frontier",
    "query_features",
    "train_calibration",
]
