"""The adaptive optimizer: trace-calibrated costs and per-query plans.

Three cooperating pieces (see ``docs/API.md``, "Adaptive optimizer &
explain"):

* :mod:`~repro.optimizer.adaptive.calibration` — the calibration
  store: ingests tracer span exports (``repro profile --export``),
  fits cost-model constants and per-engine stopping predictors, and
  persists them to a versioned ``calibration.json``;
* :mod:`~repro.optimizer.adaptive.chooser` — per-query candidate
  enumeration over the engine inventory, costed with the calibrated
  model, exposed as a cost/quality Pareto frontier, gated by the MOA
  verifier and MOA9xx bound certification;
* :mod:`~repro.optimizer.adaptive.explain` / ``repro explain`` — the
  candidate table (estimated vs observed cost, safety, certification,
  why the winner won) on the shared CLI diagnostics contract;
* :mod:`~repro.optimizer.adaptive.bench` — experiment E20, adaptive
  choice vs. the static single-engine policies on a mixed workload.
"""

from .bench import AdaptiveReport, bench_adaptive, render_report, train_calibration
from .calibration import (
    CALIBRATION_VERSION,
    Calibration,
    CalibrationStore,
    EngineModel,
    EngineObservation,
    IngestStats,
    QueryFeatures,
    engine_for_span,
)
from .chooser import (
    ChooserDecision,
    PlanCandidate,
    choose,
    choose_engine,
    enumerate_candidates,
    pareto_frontier,
    query_features,
)
from .explain import ExplainReport, ExplainRow, explain_example1, explain_topn
from .workload import CORPUS_KINDS, corpus_matrix, make_sources

__all__ = [
    "AdaptiveReport",
    "CALIBRATION_VERSION",
    "CORPUS_KINDS",
    "Calibration",
    "CalibrationStore",
    "ChooserDecision",
    "EngineModel",
    "EngineObservation",
    "ExplainReport",
    "ExplainRow",
    "IngestStats",
    "PlanCandidate",
    "QueryFeatures",
    "bench_adaptive",
    "choose",
    "choose_engine",
    "corpus_matrix",
    "engine_for_span",
    "enumerate_candidates",
    "explain_example1",
    "explain_topn",
    "make_sources",
    "pareto_frontier",
    "query_features",
    "render_report",
    "train_calibration",
]
