"""E20 — adaptive engine choice vs. static policies on a mixed workload.

The experiment the adaptive optimizer has to win: a workload mixing
the four :mod:`~repro.optimizer.adaptive.workload` classes, where no
single static always-one-engine policy is best everywhere.  The harness

1. **trains** a :class:`~repro.optimizer.adaptive.calibration.Calibration`
   by running every scalar engine over a training split under the
   tracer and feeding the engine spans (plus synopsis-derived features)
   into a :class:`CalibrationStore` — exactly the evidence a production
   ``repro profile --export`` / ``repro calibrate`` loop would collect;
2. **evaluates** on a fresh split: the four static policies (always-FA
   / TA / NRA / CA) against the adaptive policy (predict per query,
   run the argmin), all measured with the *same* scalar charged-cost
   functional, so ratios are apples-to-apples whatever the fitted
   weights turned out to be;
3. **checks safety**: every answer (static and adaptive) must be exact
   against the naive reference (tie-aware: equal true-score multisets),
   and every adaptively chosen plan must be MOA-verifier-clean and
   MOA9xx bound-certified.

``ok`` requires: per-class adaptive cost within ``tolerance`` (1.05×)
of the best static policy for that class, adaptive strictly cheaper
than at least two static policies overall, and every exactness /
certification check green.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ...obs import tracer
from ...storage.stats import CostCounter
from ...topn import SUM, combined_topn, fagin_topn, nra_topn, threshold_topn
from .calibration import Calibration, CalibrationStore
from .chooser import SCALAR_ENGINES, choose_engine, query_features, synopsis_upper_bound
from .workload import CORPUS_KINDS, corpus_matrix, make_sources

__all__ = ["AdaptiveReport", "ClassRow", "bench_adaptive", "render_report",
           "train_calibration"]

_ENGINE_FUNCS = {
    "fa": fagin_topn,
    "ta": threshold_topn,
    "nra": nra_topn,
    "ca": combined_topn,
}

#: cost slack the adaptive policy may pay over the best static policy
#: per workload class (the E20 acceptance bar)
DEFAULT_TOLERANCE = 1.05


def train_calibration(*, seed: int = 7, objects: int = 800, sources: int = 3,
                      n: int = 10, queries_per_class: int = 4,
                      classes=CORPUS_KINDS,
                      store: CalibrationStore | None = None) -> Calibration:
    """Fit a calibration from traced engine runs over a training split.

    Pass an existing ``store`` to blend the self-profiled spans with
    already-ingested trace exports (``repro calibrate`` does)."""
    if store is None:
        store = CalibrationStore()
    rng = np.random.default_rng(seed)
    for kind in classes:
        for _query in range(queries_per_class):
            matrix = corpus_matrix(kind, objects, sources, rng)
            source_list = make_sources(matrix, prefix=kind)
            feats = query_features(source_list, n)
            for func in _ENGINE_FUNCS.values():
                with tracer.trace_session() as session:
                    func(source_list, n)
                    roots = list(session.roots)
                for root in roots:
                    store.observe_span(root.to_dict(), features=feats)
    return store.fit()


def _true_topn_scores(matrix: np.ndarray, n: int) -> np.ndarray:
    """The exact top-``n`` aggregate scores, descending (SUM aggregate)."""
    totals = matrix.sum(axis=1)
    order = np.sort(totals)[::-1]
    return order[:n]


def _is_exact(result, matrix: np.ndarray, reference: np.ndarray) -> bool:
    """Tie-aware exactness: the answer's *true* aggregate scores (looked
    up in the grade matrix, not the engine's reported bounds — NRA/CA
    report certified lower bounds) must match the reference score
    multiset."""
    totals = matrix.sum(axis=1)
    scores = np.sort(np.array([totals[item.obj_id] for item in result.items]))[::-1]
    if len(scores) != len(reference):
        return False
    return bool(np.allclose(scores, reference, atol=1e-9))


@dataclass
class ClassRow:
    """Per-workload-class outcome: each policy's total charged cost."""

    corpus: str
    queries: int
    costs: dict = field(default_factory=dict)
    chosen: dict = field(default_factory=dict)
    best_static: str = ""
    ratio: float = 0.0
    exact: bool = True
    certified: bool = True

    def to_dict(self) -> dict:
        return {
            "corpus": self.corpus,
            "queries": self.queries,
            "costs": {name: round(value, 2) for name, value in self.costs.items()},
            "chosen": dict(self.chosen),
            "best_static": self.best_static,
            "ratio": round(self.ratio, 4),
            "exact": self.exact,
            "certified": self.certified,
        }


@dataclass
class AdaptiveReport:
    """The full E20 outcome."""

    scale: float
    seed: int
    n: int
    objects: int
    tolerance: float
    rows: list = field(default_factory=list)
    totals: dict = field(default_factory=dict)
    statics_beaten: int = 0
    ok: bool = True
    seconds: float = 0.0
    calibration_meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "n": self.n,
            "objects": self.objects,
            "tolerance": self.tolerance,
            "rows": [row.to_dict() for row in self.rows],
            "totals": {name: round(value, 2) for name, value in self.totals.items()},
            "statics_beaten": self.statics_beaten,
            "ok": self.ok,
            "seconds": round(self.seconds, 3),
            "calibration": dict(self.calibration_meta),
        }


def bench_adaptive(*, scale: float = 1.0, seed: int = 7, queries: int = 5,
                   n: int = 10, sources: int = 3,
                   train_queries: int = 4,
                   tolerance: float = DEFAULT_TOLERANCE,
                   calibration: Calibration | None = None) -> AdaptiveReport:
    """Run E20 (see module docstring).  ``scale`` sizes the corpus
    (~800 objects at scale 1.0); ``calibration=None`` trains one on a
    disjoint split first."""
    t_start = time.perf_counter()
    objects = max(200, int(800 * scale))
    if calibration is None:
        calibration = train_calibration(
            seed=seed + 1000, objects=objects, sources=sources, n=n,
            queries_per_class=train_queries)
    policies = list(SCALAR_ENGINES) + ["adaptive"]
    rng = np.random.default_rng(seed)
    rows = []
    totals = dict.fromkeys(policies, 0.0)
    for kind in CORPUS_KINDS:
        row = ClassRow(corpus=kind, queries=queries,
                       costs=dict.fromkeys(policies, 0.0),
                       chosen=dict.fromkeys(SCALAR_ENGINES, 0))
        for _query in range(queries):
            matrix = corpus_matrix(kind, objects, sources, rng)
            source_list = make_sources(matrix, prefix=kind)
            reference = _true_topn_scores(matrix, n)
            for engine in SCALAR_ENGINES:
                with CostCounter.activate() as cost:
                    result = _ENGINE_FUNCS[engine](source_list, n)
                row.costs[engine] += calibration.charged_cost(cost.snapshot())
                if not _is_exact(result, matrix, reference):
                    row.exact = False
            engine, _estimates = choose_engine(source_list, n,
                                               calibration=calibration)
            if not _plan_certified(engine, source_list, n):
                row.certified = False
            with CostCounter.activate() as cost:
                result = _ENGINE_FUNCS[engine](source_list, n)
            row.costs["adaptive"] += calibration.charged_cost(cost.snapshot())
            row.chosen[engine] += 1
            if not _is_exact(result, matrix, reference):
                row.exact = False
        row.best_static = min(SCALAR_ENGINES, key=lambda name: row.costs[name])
        best = row.costs[row.best_static]
        row.ratio = row.costs["adaptive"] / best if best > 0 else 1.0
        for name in policies:
            totals[name] += row.costs[name]
        rows.append(row)
    adaptive_total = totals["adaptive"]
    statics_beaten = sum(1 for name in SCALAR_ENGINES
                         if totals[name] > adaptive_total * (1 + 1e-9))
    ok = (all(row.ratio <= tolerance for row in rows)
          and statics_beaten >= 2
          and all(row.exact for row in rows)
          and all(row.certified for row in rows))
    return AdaptiveReport(
        scale=scale, seed=seed, n=n, objects=objects, tolerance=tolerance,
        rows=rows, totals=totals, statics_beaten=statics_beaten, ok=ok,
        seconds=time.perf_counter() - t_start,
        calibration_meta=dict(calibration.meta))


#: per-engine certification verdicts are corpus-independent given the
#: same (n, upper bound) plan shape; memoized per bench run
_cert_cache: dict = {}


def _plan_certified(engine: str, source_list, n: int) -> bool:
    """Verifier-clean + bound-certified verdict for the chosen plan
    (the gate every adaptively chosen plan must pass)."""
    from .chooser import _verify_plan

    upper = synopsis_upper_bound(source_list)
    key = (engine, n, round(upper, 6))
    verdict = _cert_cache.get(key)
    if verdict is None:
        certified, clean, _diagnostics = _verify_plan(engine, n, upper, SUM)
        verdict = bool(certified) and clean
        _cert_cache[key] = verdict
    return verdict


def render_report(report: AdaptiveReport) -> str:
    """Text table for ``repro bench-adaptive``."""
    policies = list(SCALAR_ENGINES) + ["adaptive"]
    header = (f"{'corpus':<12}" + "".join(f"{name:>12}" for name in policies)
              + f"{'best':>8}{'ratio':>8}{'exact':>7}{'cert':>6}")
    lines = [header]
    for row in report.rows:
        cells = "".join(f"{row.costs[name]:>12,.0f}" for name in policies)
        lines.append(f"{row.corpus:<12}{cells}{row.best_static:>8}"
                     f"{row.ratio:>8.3f}{str(row.exact):>7}{str(row.certified):>6}")
    cells = "".join(f"{report.totals[name]:>12,.0f}" for name in policies)
    lines.append(f"{'TOTAL':<12}{cells}")
    picks = {}
    for row in report.rows:
        for engine, count in row.chosen.items():
            picks[engine] = picks.get(engine, 0) + count
    lines.append("adaptive picks: "
                 + ", ".join(f"{engine}={count}" for engine, count
                             in sorted(picks.items()) if count))
    verdict = (f"ok: adaptive within {report.tolerance:g}x of the best static "
               f"per class and beat {report.statics_beaten} static policies "
               f"overall (exact, certified)"
               if report.ok else
               "NOT OK: adaptive missed the tolerance bar, lost to the "
               "statics, or failed an exactness/certification check")
    lines.append(verdict)
    return "\n".join(lines)
