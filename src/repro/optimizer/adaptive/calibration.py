"""Trace-calibrated cost constants and per-engine stopping predictors.

The feedback loop that closes the gap between the static cost model and
observed execution: ``repro profile --export`` (or any
:func:`~repro.obs.tracer.trace_session`) produces span records; a
:class:`CalibrationStore` ingests them, and :meth:`CalibrationStore.fit`
turns the evidence into a :class:`Calibration`:

* **cost-model constants** — ``tuple_read`` / ``tuple_write`` /
  ``comparison`` weights refitted by least squares of span wall time
  against span self-cost counters, plus observed ``select.range``
  selectivities and ``convert.dedup`` ratios (the events the physical
  operators emit);
* **a charged-cost functional** — one scalar
  (:meth:`Calibration.charged_cost`) over the middleware counters, used
  identically by the plan chooser's estimates, ``repro explain``'s
  observed column, and the E20 benchmark, so estimated and measured
  costs live on the same scale;
* **per-engine stopping predictors** — k-nearest-neighbour models over
  query features (``n``, ``m``, corpus size, threshold-decay rate λ,
  cross-source agreement) that predict each Fagin-family engine's
  charged cost and sorted-access stopping depth from what tracing
  observed on similar queries.  λ is read off the ``ta.round``
  threshold sequence; agreement comes from the uncharged source
  synopsis (:meth:`~repro.mm.sources.ScoreSource.synopsis`).

Everything is persisted to a versioned ``calibration.json``
(:meth:`Calibration.save` / :meth:`Calibration.load`); loading a file
with the wrong ``version`` raises
:class:`~repro.errors.CalibrationError` rather than silently mixing
schemas.  Ingest mirrors the ``benchmarks/collect.py`` hardening:
records with a missing or unknown ``schema_version`` are skipped with a
collected warning, never trusted.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from ...errors import CalibrationError
from ...obs.tracer import TRACE_SCHEMA_VERSION
from ..cost import CostModel

__all__ = [
    "CALIBRATION_VERSION",
    "COST_KEYS",
    "DEFAULT_WEIGHTS",
    "Calibration",
    "CalibrationStore",
    "EngineModel",
    "EngineObservation",
    "IngestStats",
    "QueryFeatures",
    "engine_for_span",
]

#: version stamped into every ``calibration.json``; bump on any change
#: to the fitted-payload schema
CALIBRATION_VERSION = 1

#: engine span names -> the chooser's candidate-plan engine labels
ENGINE_SPANS = {
    "topn.fa": "fa",
    "topn.ta": "ta",
    "topn.nra": "nra",
    "topn.ca": "ca",
    "topn.ta_blocked": "blocked_ta",
    "topn.nra_blocked": "blocked_nra",
    "topn.ca_blocked": "blocked_ca",
}

#: the charged counters the scalar cost functional is linear in
COST_KEYS = (
    "sorted_accesses",
    "random_accesses",
    "tuples_read",
    "tuples_written",
    "comparisons",
    "page_reads",
)

#: uncalibrated weights: accesses at parity (Fagin's measure), tuple /
#: comparison weights matching the static CostModel defaults
DEFAULT_WEIGHTS = {
    "sorted_accesses": 1.0,
    "random_accesses": 1.0,
    "tuples_read": 1.0,
    "tuples_written": 0.5,
    "comparisons": 0.25,
    "page_reads": 1.0,
}

_WEIGHT_FLOOR = 0.01


def engine_for_span(name: str) -> str | None:
    """The chooser's engine label for a span name, or ``None``."""
    return ENGINE_SPANS.get(name)


@dataclass
class QueryFeatures:
    """Per-query features the stopping predictors condition on.

    ``decay`` is λ, the per-rank exponential decay rate of the
    aggregate threshold (how fast τ falls as sorted access deepens);
    ``agreement`` is the mean pairwise top-k id overlap across sources
    in ``[0, 1]``.  Either may be ``None`` when the evidence did not
    carry it (e.g. NRA spans have no threshold sequence) — the models
    impute their training mean.
    """

    n: int
    m: int
    objects: int
    decay: float | None = None
    agreement: float | None = None

    def to_dict(self) -> dict:
        return {"n": self.n, "m": self.m, "objects": self.objects,
                "decay": self.decay, "agreement": self.agreement}


@dataclass
class EngineObservation:
    """One traced engine run: features, charged counters, wall time."""

    engine: str
    features: QueryFeatures
    depth: float
    charged: dict
    wall_seconds: float


@dataclass
class IngestStats:
    """What one ingest batch contributed (and what it refused)."""

    ingested: int = 0
    skipped: int = 0
    engine_spans: int = 0
    warnings: list = field(default_factory=list)

    def merge(self, other: "IngestStats") -> "IngestStats":
        self.ingested += other.ingested
        self.skipped += other.skipped
        self.engine_spans += other.engine_spans
        self.warnings.extend(other.warnings)
        return self


def _decay_from_events(events: list) -> float | None:
    """λ from a span's ``ta.round`` threshold sequence.

    Fits ``τ(d) = τ0 · exp(-λ d)`` through the first and last positive
    thresholds; ``None`` when fewer than two rounds carried a positive
    threshold (NRA/CA spans, or degenerate runs)."""
    points = []
    for entry in events:
        if entry.get("name") != "ta.round":
            continue
        attrs = entry.get("attrs", {})
        threshold = attrs.get("threshold")
        depth = attrs.get("depth")
        if threshold is None or depth is None or threshold <= 0:
            continue
        points.append((float(depth), float(threshold)))
    if len(points) < 2:
        return None
    (d0, t0), (d1, t1) = points[0], points[-1]
    if d1 <= d0 or t0 <= 0 or t1 <= 0:
        return None
    return max((math.log(t0) - math.log(t1)) / (d1 - d0), 0.0)


class CalibrationStore:
    """Accumulates trace evidence; :meth:`fit` produces a :class:`Calibration`.

    Three ingest paths feed the same store:

    * :meth:`ingest_jsonl` — a ``repro profile --export`` file
      (``schema_version``-validated, damaged lines skipped with a
      warning);
    * :meth:`ingest_records` — already-parsed record dicts;
    * :meth:`observe_span` — one span record straight from a live
      :class:`~repro.obs.tracer.TraceSession`, optionally with
      caller-computed :class:`QueryFeatures` (the self-calibration
      harness attaches synopsis-derived agreement this way).
    """

    def __init__(self) -> None:
        self.observations: list[EngineObservation] = []
        #: (counter vector, wall seconds) rows from leaf spans, for the
        #: wall-time weight fit
        self._weight_rows: list[tuple[list[float], float]] = []
        self._selectivities: list[float] = []
        self._dedup_ratios: list[float] = []
        self.sources: list[str] = []

    # -- ingest ------------------------------------------------------------

    def ingest_jsonl(self, path) -> IngestStats:
        """Ingest a profile-export JSONL file (one span dict per line)."""
        stats = IngestStats()
        records = []
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    stats.skipped += 1
                    stats.warnings.append(f"{path}:{lineno}: damaged record ({exc.msg})")
                    continue
                records.append(record)
        stats.merge(self.ingest_records(records, source=str(path)))
        return stats

    def ingest_records(self, records, source: str = "<records>") -> IngestStats:
        """Ingest parsed span records, validating ``schema_version``.

        Records missing the field or carrying an unknown version are
        skipped and counted, with one warning per offending version —
        the same skip-and-warn posture ``benchmarks/collect.py`` takes
        toward result files it does not understand."""
        stats = IngestStats()
        bad_versions: dict = {}
        batch = []
        for record in records:
            if not isinstance(record, dict):
                stats.skipped += 1
                bad_versions.setdefault("<not a span object>", 0)
                bad_versions["<not a span object>"] += 1
                continue
            version = record.get("schema_version")
            if version != TRACE_SCHEMA_VERSION:
                stats.skipped += 1
                key = "<missing>" if version is None else repr(version)
                bad_versions[key] = bad_versions.get(key, 0) + 1
                continue
            batch.append(record)
        for key, count in sorted(bad_versions.items()):
            stats.warnings.append(
                f"{source}: skipped {count} record(s) with schema_version {key} "
                f"(expected {TRACE_SCHEMA_VERSION})")
        if batch:
            self.sources.append(source)
        # leaf spans (no record names them as parent) give clean
        # wall-vs-counters rows: their inclusive cost is their own work
        parent_ids = {record.get("parent_id") for record in batch}
        for record in batch:
            is_leaf = record.get("span_id") not in parent_ids
            self._absorb(record, features=None, leaf=is_leaf, stats=stats)
        return stats

    def ingest_report(self, report) -> IngestStats:
        """Ingest a :class:`~repro.obs.profile.ProfileReport` (or any
        object with ``spans()`` yielding span records)."""
        return self.ingest_records(
            [record.to_dict() for record in report.spans()], source="<profile>")

    def observe_span(self, record: dict, features: QueryFeatures | None = None) -> bool:
        """Ingest one live span dict; returns True when it was an
        engine span that became an :class:`EngineObservation`."""
        stats = IngestStats()
        before = len(self.observations)
        self._absorb(record, features=features, leaf=True, stats=stats)
        return len(self.observations) > before

    # -- absorption --------------------------------------------------------

    def _absorb(self, record: dict, features: QueryFeatures | None,
                leaf: bool, stats: IngestStats) -> None:
        stats.ingested += 1
        attrs = record.get("attrs") or {}
        events = record.get("events") or []
        duration = record.get("duration")
        self_cost = record.get("self_cost") or {}
        if leaf and duration and duration > 0 and any(self_cost.get(k) for k in COST_KEYS):
            vector = [float(self_cost.get(key, 0)) for key in COST_KEYS]
            self._weight_rows.append((vector, float(duration)))
        for entry in events:
            name = entry.get("name")
            eattrs = entry.get("attrs", {})
            if name == "select.range":
                rows_in = eattrs.get("rows_in") or 0
                if rows_in:
                    self._selectivities.append(eattrs.get("rows_out", 0) / rows_in)
            elif name == "convert.dedup":
                rows_in = eattrs.get("rows_in") or 0
                if rows_in:
                    self._dedup_ratios.append(eattrs.get("rows_out", 0) / rows_in)
        engine = engine_for_span(record.get("name", ""))
        if engine is None:
            return
        stats.engine_spans += 1
        cost = record.get("cost") or {}
        if features is None:
            features = QueryFeatures(
                n=int(attrs.get("n", 0)),
                m=int(attrs.get("m", 0)),
                objects=int(attrs.get("objects", 0)),
                decay=_decay_from_events(events),
                agreement=None,
            )
        depth = attrs.get("depth")
        if depth is None:
            for entry in reversed(events):
                d = entry.get("attrs", {}).get("depth")
                if d is not None:
                    depth = d
                    break
        self.observations.append(EngineObservation(
            engine=engine,
            features=features,
            depth=float(depth if depth is not None else 0.0),
            charged={key: float(cost.get(key, 0)) for key in COST_KEYS},
            wall_seconds=float(record.get("duration") or 0.0),
        ))

    # -- fitting -----------------------------------------------------------

    def _fit_weights(self) -> tuple[dict, bool]:
        rows = self._weight_rows
        if len(rows) < 2 * len(COST_KEYS):
            return dict(DEFAULT_WEIGHTS), False
        matrix = np.array([vector for vector, _ in rows], dtype=np.float64)
        wall = np.array([seconds for _, seconds in rows], dtype=np.float64)
        # drop all-zero columns from the solve; they keep their default
        active = [j for j in range(len(COST_KEYS)) if matrix[:, j].any()]
        if 0 not in active:  # no sorted accesses -> no normalization anchor
            return dict(DEFAULT_WEIGHTS), False
        try:
            solution, *_ = np.linalg.lstsq(matrix[:, active], wall, rcond=None)
        except np.linalg.LinAlgError:
            return dict(DEFAULT_WEIGHTS), False
        raw = dict(zip((COST_KEYS[j] for j in active), map(float, solution)))
        # normalize so one unit of sorted access (≈ one tuple read at
        # the middleware layer) costs 1.0; a degenerate anchor keeps
        # the defaults.  Columns never observed keep their default
        # weight untouched — they carry no evidence to rescale.
        anchor = raw["sorted_accesses"]
        if not math.isfinite(anchor) or anchor <= 0:
            return dict(DEFAULT_WEIGHTS), False
        weights = dict(DEFAULT_WEIGHTS)
        for key, value in raw.items():
            weights[key] = max(value / anchor, _WEIGHT_FLOOR)
        return weights, True

    def fit(self) -> "Calibration":
        """Fit the store into a :class:`Calibration`.

        Raises :class:`~repro.errors.CalibrationError` when the store
        is empty — an empty calibration would silently behave like the
        uncalibrated defaults while claiming to be fitted."""
        if not self.observations and not self._weight_rows \
                and not self._selectivities and not self._dedup_ratios:
            raise CalibrationError(
                "calibration store is empty: ingest profile exports or "
                "trace sessions before fitting")
        weights, weights_fitted = self._fit_weights()
        constants = {
            "tuple_read": 1.0,
            "tuple_write": weights["tuples_written"],
            "comparison": weights["comparisons"],
            "page_read": weights["page_reads"],
        }
        if self._selectivities:
            constants["select_selectivity"] = float(
                min(max(np.median(self._selectivities), 0.01), 1.0))
        if self._dedup_ratios:
            constants["dedup_ratio"] = float(
                min(max(np.median(self._dedup_ratios), 0.01), 1.0))
        engines: dict[str, EngineModel] = {}
        for obs in self.observations:
            model = engines.get(obs.engine)
            if model is None:
                model = engines[obs.engine] = EngineModel(engine=obs.engine)
            model.add(obs, weights)
        meta = {
            "observations": len(self.observations),
            "weight_rows": len(self._weight_rows),
            "weights_fitted": weights_fitted,
            "selectivity_samples": len(self._selectivities),
            "dedup_samples": len(self._dedup_ratios),
            "sources": list(self.sources),
        }
        return Calibration(version=CALIBRATION_VERSION, constants=constants,
                           weights=weights, engines=engines, meta=meta)


@dataclass
class EngineModel:
    """k-NN predictor of one engine's charged cost and stopping depth.

    Features are ``[ln(1+n), ln(1+m), ln(1+objects), decay, agreement]``
    standardized per dimension over the training set; prediction is
    inverse-distance-weighted over the ``k`` nearest training queries.
    k-NN is deliberately model-free: the E20 workload classes form
    clusters in feature space, and a nearest-neighbour average recovers
    per-class behaviour without assuming any parametric cost curve.
    """

    engine: str
    vectors: list = field(default_factory=list)
    costs: list = field(default_factory=list)
    depths: list = field(default_factory=list)
    decay_mean: float = 0.0
    agreement_mean: float = 0.0
    _decay_sum: float = 0.0
    _decay_count: int = 0
    _agreement_sum: float = 0.0
    _agreement_count: int = 0

    def add(self, obs: EngineObservation, weights: dict) -> None:
        feats = obs.features
        if feats.decay is not None:
            self._decay_sum += feats.decay
            self._decay_count += 1
            self.decay_mean = self._decay_sum / self._decay_count
        if feats.agreement is not None:
            self._agreement_sum += feats.agreement
            self._agreement_count += 1
            self.agreement_mean = self._agreement_sum / self._agreement_count
        self.vectors.append(self._vector(feats))
        self.costs.append(sum(weights[key] * obs.charged.get(key, 0.0)
                              for key in COST_KEYS))
        self.depths.append(obs.depth)

    def _vector(self, feats: QueryFeatures) -> list:
        decay = feats.decay if feats.decay is not None else self.decay_mean
        agreement = (feats.agreement if feats.agreement is not None
                     else self.agreement_mean)
        return [math.log1p(max(feats.n, 0)), math.log1p(max(feats.m, 0)),
                math.log1p(max(feats.objects, 0)), float(decay), float(agreement)]

    def _predict(self, feats: QueryFeatures, targets: list, k: int = 5) -> float | None:
        if not self.vectors:
            return None
        query = np.asarray(self._vector(feats), dtype=np.float64)
        train = np.asarray(self.vectors, dtype=np.float64)
        scale = train.std(axis=0)
        scale[scale == 0] = 1.0
        dists = np.sqrt((((train - query) / scale) ** 2).sum(axis=1))
        order = np.argsort(dists, kind="stable")[: max(1, min(k, len(dists)))]
        values = np.asarray(targets, dtype=np.float64)[order]
        inv = 1.0 / (dists[order] + 1e-9)
        return float((values * inv).sum() / inv.sum())

    def predict_cost(self, feats: QueryFeatures) -> float | None:
        return self._predict(feats, self.costs)

    def predict_depth(self, feats: QueryFeatures) -> float | None:
        return self._predict(feats, self.depths)

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "vectors": [list(map(float, v)) for v in self.vectors],
            "costs": list(map(float, self.costs)),
            "depths": list(map(float, self.depths)),
            "decay_mean": self.decay_mean,
            "agreement_mean": self.agreement_mean,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineModel":
        model = cls(engine=payload["engine"])
        model.vectors = [list(map(float, v)) for v in payload.get("vectors", [])]
        model.costs = list(map(float, payload.get("costs", [])))
        model.depths = list(map(float, payload.get("depths", [])))
        model.decay_mean = float(payload.get("decay_mean", 0.0))
        model.agreement_mean = float(payload.get("agreement_mean", 0.0))
        return model


@dataclass
class Calibration:
    """The fitted artifact: constants, cost functional, engine models."""

    version: int
    constants: dict
    weights: dict
    engines: dict
    meta: dict = field(default_factory=dict)

    @classmethod
    def uncalibrated(cls) -> "Calibration":
        """Defaults-only calibration (no trace evidence): the static
        cost model's constants and analytic engine priors."""
        return cls(version=CALIBRATION_VERSION,
                   constants={"tuple_read": 1.0, "tuple_write": 0.5,
                              "comparison": 0.25, "page_read": 1.0},
                   weights=dict(DEFAULT_WEIGHTS), engines={},
                   meta={"observations": 0, "weights_fitted": False})

    @property
    def calibrated(self) -> bool:
        return bool(self.engines) or bool(self.meta.get("observations"))

    # -- the shared scalar cost functional ---------------------------------

    def charged_cost(self, counters: dict) -> float:
        """Weighted scalar cost of a counter snapshot — the single
        measure chooser estimates, explain's observed column, and the
        E20 bench all use."""
        return float(sum(self.weights.get(key, 0.0) * counters.get(key, 0)
                         for key in COST_KEYS))

    # -- predictions -------------------------------------------------------

    def predict_cost(self, engine: str, feats: QueryFeatures) -> float | None:
        model = self.engines.get(engine)
        return model.predict_cost(feats) if model is not None else None

    def predict_depth(self, engine: str, feats: QueryFeatures) -> float | None:
        model = self.engines.get(engine)
        return model.predict_depth(feats) if model is not None else None

    def cost_model(self, **overrides) -> CostModel:
        """A :class:`~repro.optimizer.cost.CostModel` with the fitted
        constants (keyword overrides win)."""
        kwargs = {
            "tuple_read": self.constants.get("tuple_read", 1.0),
            "tuple_write": self.constants.get("tuple_write", 0.5),
            "comparison": self.constants.get("comparison", 0.25),
        }
        if "select_selectivity" in self.constants:
            kwargs["select_selectivity"] = self.constants["select_selectivity"]
        if "dedup_ratio" in self.constants:
            kwargs["dedup_ratio"] = self.constants["dedup_ratio"]
        kwargs.update(overrides)
        return CostModel(**kwargs)

    # -- persistence -------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "constants": dict(self.constants),
            "weights": dict(self.weights),
            "engines": {name: model.to_dict()
                        for name, model in sorted(self.engines.items())},
            "meta": dict(self.meta),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Calibration":
        version = payload.get("version")
        if version != CALIBRATION_VERSION:
            raise CalibrationError(
                f"calibration version {version!r} not supported "
                f"(expected {CALIBRATION_VERSION}); re-run `repro calibrate`")
        try:
            engines = {name: EngineModel.from_dict(model)
                       for name, model in payload.get("engines", {}).items()}
            return cls(version=CALIBRATION_VERSION,
                       constants=dict(payload["constants"]),
                       weights=dict(payload["weights"]),
                       engines=engines, meta=dict(payload.get("meta", {})))
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(f"damaged calibration payload: {exc}") from exc

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "Calibration":
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CalibrationError(f"damaged calibration file {path}: {exc.msg}") from exc
        if not isinstance(payload, dict):
            raise CalibrationError(f"damaged calibration file {path}: not an object")
        return cls.from_json(payload)
