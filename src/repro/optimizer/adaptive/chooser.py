"""Per-query plan choice over the Fagin-family engine inventory.

Given the sources of one top-N query, :func:`enumerate_candidates`
builds a :class:`PlanCandidate` per applicable strategy — FA / TA /
NRA / CA, their blocked variants, the parallel coordinator, a cached
answer (served via :meth:`~repro.cache.manager.QueryCache.peek`, so
enumeration never distorts hit statistics), and an *unsafe* budgeted-TA
plan that trades predicted overlap@N for a depth cap.  Each candidate
carries

* an **estimated cost** on the calibration's scalar charged-cost
  functional — the k-NN predictor when trace evidence exists, an
  analytic Fagin-style prior otherwise;
* a **predicted quality** (1.0 for safe plans; predicted overlap@N
  for unsafe ones);
* the **MOA verifier verdict** (``analyze_expr`` over the equivalent
  ``topn`` plan) and the **MOA9xx bound certificate**
  (:func:`~repro.analysis.bounds.certify` with the query's synopsis-
  derived score bounds) — the chooser refuses to pick a plan that is
  not verifier-clean and bound-certified.

:func:`pareto_frontier` marks the non-dominated cost/quality set and
:func:`choose` picks the cheapest candidate at or above the caller's
``quality_floor`` (1.0 = exact answers only, the default).  Query
features come from the **uncharged** source synopsis
(:meth:`~repro.mm.sources.ScoreSource.synopsis`): the threshold-decay
rate λ and the cross-source top-k agreement cost no sorted or random
accesses, so planning never eats into the budget it is optimizing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ...topn import (
    SUM,
    blocked_combined_topn,
    blocked_nra_topn,
    blocked_threshold_topn,
    combined_topn,
    fagin_topn,
    naive_topn_sources,
    nra_topn,
    threshold_topn,
)
from .calibration import Calibration, QueryFeatures

__all__ = [
    "ChooserDecision",
    "PlanCandidate",
    "choose",
    "choose_engine",
    "enumerate_candidates",
    "pareto_frontier",
    "query_features",
]

#: how many top ranks the agreement probe reads per source synopsis
_AGREEMENT_TOP = 8

#: engines enumerated for every scalar-source query, in stable order
SCALAR_ENGINES = ("fa", "ta", "nra", "ca")

_ENGINE_FUNCS = {
    "fa": fagin_topn,
    "ta": threshold_topn,
    "nra": nra_topn,
    "ca": combined_topn,
}

_BLOCKED_FUNCS = {
    "blocked_ta": blocked_threshold_topn,
    "blocked_nra": blocked_nra_topn,
    "blocked_ca": blocked_combined_topn,
}

#: threshold-engine label the bound analyzer certifies each plan under
_THRESHOLD_LABEL = {
    "fa": "FA", "ta": "TA", "nra": "NRA", "ca": "CA",
    "blocked_ta": "TA", "blocked_nra": "NRA", "blocked_ca": "CA",
    "parallel": "coordinator", "naive": None, "cached": None,
    "ta_budget": "TA",
}


def query_features(sources, n: int, agg=SUM) -> QueryFeatures:
    """Features of a query from uncharged synopsis probes.

    λ fits an exponential through the aggregate threshold at rank 0 and
    rank ``k ≈ 4n``; agreement is the mean pairwise overlap of the
    sources' top-:data:`_AGREEMENT_TOP` object ids.  Sources without a
    synopsis yield ``None`` features (the predictors impute)."""
    m = len(sources)
    objects = max((source.n_objects for source in sources), default=0)
    feats = QueryFeatures(n=n, m=m, objects=objects)
    if objects <= 0:
        return feats
    deep = min(max(4 * n, _AGREEMENT_TOP), objects - 1)
    ranks = list(range(min(_AGREEMENT_TOP, objects))) + [deep]
    synopses = []
    for source in sources:
        synopsis = source.synopsis(ranks)
        if synopsis is None:
            return feats
        synopses.append(synopsis)
    # threshold decay: aggregate of per-source grades at rank 0 vs rank `deep`
    tau0 = agg.combine([synopsis[0][1] for synopsis in synopses])
    tau_deep = agg.combine([synopsis[-1][1] for synopsis in synopses])
    if deep > 0 and tau0 > 0:
        floor = max(tau_deep, tau0 * 1e-6)
        feats.decay = max((math.log(tau0) - math.log(floor)) / deep, 0.0)
    # agreement: mean pairwise top-k id overlap
    tops = [{obj for obj, _grade in synopsis[:_AGREEMENT_TOP] if obj >= 0}
            for synopsis in synopses]
    if m >= 2:
        pairs, total = 0, 0.0
        for i in range(m):
            for j in range(i + 1, m):
                denom = max(len(tops[i]), len(tops[j]), 1)
                total += len(tops[i] & tops[j]) / denom
                pairs += 1
        feats.agreement = total / pairs if pairs else None
    else:
        feats.agreement = 1.0
    return feats


def synopsis_upper_bound(sources, agg=SUM) -> float:
    """Certified upper bound on any object's aggregate score, from the
    rank-0 synopsis grades (each source's maximum; monotone aggregates
    are bounded by the aggregate of per-source maxima).  Falls back to
    ``len(sources)`` grades of 1.0 when a source keeps no synopsis."""
    grades = []
    for source in sources:
        synopsis = source.synopsis([0])
        if synopsis and synopsis[0][0] >= 0:
            grades.append(synopsis[0][1])
        else:
            grades.append(1.0)
    return float(agg.combine(grades)) if grades else 1.0


@dataclass
class PlanCandidate:
    """One enumerated strategy for one query."""

    name: str
    engine: str
    safe: bool
    est_cost: float
    #: predicted answer quality: 1.0 exact, else predicted overlap@N
    quality: float
    predicted_depth: float | None = None
    #: MOA9xx bound-certification verdict (None = not applicable)
    certified: bool | None = None
    #: no error-severity MOA diagnostics from the plan verifier
    verifier_clean: bool = True
    #: how the estimate was produced ("knn" / "prior" / "peek" ...)
    estimator: str = "prior"
    note: str = ""
    #: verifier + certificate Diagnostic records (not serialized by
    #: :meth:`to_dict`; ``repro explain`` folds them into its report)
    diagnostics: list = field(default_factory=list)
    #: zero-argument runner executing the plan (None for cached misses)
    runner: object = None
    on_frontier: bool = False
    chosen: bool = False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "engine": self.engine,
            "safe": self.safe,
            "est_cost": self.est_cost,
            "quality": self.quality,
            "predicted_depth": self.predicted_depth,
            "certified": self.certified,
            "verifier_clean": self.verifier_clean,
            "estimator": self.estimator,
            "note": self.note,
            "on_frontier": self.on_frontier,
            "chosen": self.chosen,
        }


@dataclass
class ChooserDecision:
    """The outcome of :func:`choose` over one candidate set."""

    candidates: list
    chosen: PlanCandidate | None
    quality_floor: float
    why: str

    def to_dict(self) -> dict:
        return {
            "quality_floor": self.quality_floor,
            "chosen": self.chosen.name if self.chosen else None,
            "why": self.why,
            "candidates": [candidate.to_dict() for candidate in self.candidates],
        }


def _prior_depth(engine: str, n: int, m: int, objects: int) -> float:
    """Analytic stopping-depth prior when no trace evidence exists.

    FA's classic expected depth on independent lists is
    ``objects^((m-1)/m) · n^(1/m)``; TA stops no later than FA (factor
    0.6 observed across the E6 grid), NRA's sorted-only administration
    runs deeper (1.8×), CA sits between (1.3×)."""
    if objects <= 0:
        return 0.0
    m = max(m, 1)
    fa_depth = min(float(objects), objects ** ((m - 1) / m) * max(n, 1) ** (1 / m))
    factor = {"fa": 1.0, "ta": 0.6, "nra": 1.8, "ca": 1.3}.get(engine, 1.0)
    return min(float(objects), factor * fa_depth)


def _prior_cost(engine: str, depth: float, n: int, m: int, objects: int,
                weights: dict) -> float:
    """Charged-cost prior from a depth prior: sorted accesses at the
    engine's depth on every list, plus the engine's random-access
    pattern (TA completes every seen object, FA completes once at the
    end, NRA never, CA every h rounds ≈ one completion per round/h)."""
    sa = weights.get("sorted_accesses", 1.0)
    ra = weights.get("random_accesses", 1.0)
    cmp_w = weights.get("comparisons", 0.25)
    sorted_cost = depth * m * sa
    if engine == "fa":
        random_cost = min(depth * m, float(objects)) * m * ra
    elif engine == "ta":
        random_cost = depth * m * (m - 1) * ra
    elif engine == "nra":
        random_cost = 0.0
    else:  # ca: one object completed every h rounds (h = m by default)
        random_cost = depth * (m - 1) * ra
    return sorted_cost + random_cost + depth * m * cmp_w


def _verify_plan(engine: str, n: int, upper: float, agg) -> tuple[bool | None, bool, list]:
    """Run the MOA verifier + bound certification for the equivalent
    ``topn`` plan under this engine's threshold administration.

    Imports are local: ``repro.analysis`` imports the rule framework,
    so a module-level import would be circular (same posture as
    :mod:`repro.optimizer.pipeline`)."""
    from ...algebra.parser import parse
    from ...algebra.types import FLOAT, BagType
    from ...analysis import AnalysisContext, analyze_expr, certify
    from ...intervals import ScoreInterval

    expr = parse(f"topn(xs, {int(max(n, 1))})")
    context = AnalysisContext(
        env_types={"xs": BagType(FLOAT)},
        score_bounds={"xs": ScoreInterval(0.0, max(upper, 0.0))},
        aggregate=agg,
        threshold_engine=_THRESHOLD_LABEL.get(engine),
    )
    certificate = certify(expr, context)
    verifier = list(analyze_expr(expr, context))
    clean = not any(d.severity == "error" for d in verifier)
    return certificate.certified, clean, verifier + list(certificate.diagnostics)


def enumerate_candidates(sources, n: int, agg=SUM, *,
                         calibration: Calibration | None = None,
                         blocked_sources=None,
                         shards: int | None = None,
                         cache=None, fingerprint=None,
                         include_naive: bool = False,
                         include_unsafe: bool = True,
                         budget_fraction: float = 0.25,
                         features: QueryFeatures | None = None) -> list:
    """Build the candidate table for one query (see module docstring).

    ``blocked_sources`` (block-at-a-time views of the same lists)
    enables the blocked engine variants; ``shards`` enables the
    parallel coordinator; ``cache`` + ``fingerprint`` enable the cached
    candidate.  Every candidate is verifier-checked and bound-certified
    before :func:`choose` will consider it.
    """
    calibration = calibration or Calibration.uncalibrated()
    feats = features if features is not None else query_features(sources, n, agg)
    upper = synopsis_upper_bound(sources, agg)
    weights = calibration.weights
    candidates: list[PlanCandidate] = []

    def estimate(engine: str) -> tuple[float, float, str]:
        cost = calibration.predict_cost(engine, feats)
        depth = calibration.predict_depth(engine, feats)
        if cost is not None:
            return cost, (depth if depth is not None else 0.0), "knn"
        depth = _prior_depth(engine, n, feats.m, feats.objects)
        return (_prior_cost(engine, depth, n, feats.m, feats.objects, weights),
                depth, "prior")

    def add(name, engine, safe, est, quality, depth, estimator, note, runner):
        certified, clean, diagnostics = _verify_plan(name, n, upper, agg)
        candidates.append(PlanCandidate(
            name=name, engine=engine, safe=safe, est_cost=est,
            quality=quality, predicted_depth=depth, certified=certified,
            verifier_clean=clean, estimator=estimator, note=note,
            diagnostics=diagnostics, runner=runner))

    for engine in SCALAR_ENGINES:
        est, depth, estimator = estimate(engine)
        func = _ENGINE_FUNCS[engine]
        add(engine, engine, True, est, 1.0, depth, estimator,
            "exact Fagin-family stop",
            (lambda f=func: f(sources, n, agg)))

    if blocked_sources:
        for name, func in _BLOCKED_FUNCS.items():
            base = name.removeprefix("blocked_")
            est, depth, estimator = estimate(base)
            block = getattr(blocked_sources[0], "block_size", 0)
            # block granularity overshoots the scalar stop by up to one
            # block per list on average
            est = est + 0.5 * block * feats.m * weights.get("sorted_accesses", 1.0)
            add(name, base, True, est, 1.0, depth, estimator,
                f"block-at-a-time (block={block})",
                (lambda f=func: f(blocked_sources, n, agg)))

    if shards:
        # the coordinator's range evaluators scan every shard fully,
        # then merge; certified exact, never cheaper than objects·m
        est = feats.objects * feats.m * weights.get("sorted_accesses", 1.0)
        add("parallel", "parallel", True, est, 1.0, float(feats.objects),
            "prior", f"{shards}-way certified merge", None)

    if include_naive:
        est = feats.objects * feats.m * weights.get("random_accesses", 1.0)
        add("naive", "naive", True, est, 1.0, float(feats.objects), "prior",
            "exhaustive random access",
            (lambda: naive_topn_sources(sources, n, agg)))

    if cache is not None and fingerprint is not None:
        served, _entry = cache.peek(fingerprint, n)
        if served is not None:
            add("cached", "cached", True, 0.0, 1.0, 0.0, "peek",
                "fingerprint hit (peek; lookup charges on serve)",
                (lambda: cache.lookup(fingerprint, n)[0]))

    if include_unsafe:
        est_ta, depth_ta, estimator = estimate("ta")
        full_depth = max(depth_ta, float(n))
        budget_depth = max(n, int(budget_fraction * full_depth))
        fraction = min(budget_depth / full_depth, 1.0) if full_depth > 0 else 1.0
        # overlap decays with the un-scanned threshold mass; sqrt keeps
        # the prediction conservative near small budgets
        quality = 1.0 if fraction >= 1.0 else round(math.sqrt(fraction), 4)
        add("ta_budget", "ta", quality >= 1.0, est_ta * fraction, quality,
            float(budget_depth), estimator,
            f"TA stopped at depth {budget_depth} (unsafe budget)",
            (lambda d=budget_depth: threshold_topn(sources, n, agg, max_depth=d)))

    pareto_frontier(candidates)
    return candidates


def pareto_frontier(candidates: list) -> list:
    """Mark and return the non-dominated (cost ↓, quality ↑) set.

    A candidate is dominated when another one is at least as good on
    both axes and strictly better on one."""
    frontier = []
    for candidate in candidates:
        candidate.on_frontier = not any(
            (other.est_cost <= candidate.est_cost
             and other.quality >= candidate.quality
             and (other.est_cost < candidate.est_cost
                  or other.quality > candidate.quality))
            for other in candidates)
        if candidate.on_frontier:
            frontier.append(candidate)
    return frontier


def choose(candidates: list, quality_floor: float = 1.0) -> ChooserDecision:
    """Pick the cheapest eligible candidate.

    Eligible = predicted quality at or above the floor, verifier-clean,
    and not bound-refused (``certified`` is True or not applicable).
    ``quality_floor=1.0`` (default) admits only exact plans; lowering
    it opens the unsafe side of the Pareto frontier."""
    eligible = [c for c in candidates
                if c.quality >= quality_floor - 1e-9
                and c.verifier_clean and c.certified is not False]
    if not eligible:
        return ChooserDecision(candidates, None, quality_floor,
                               "no candidate meets the floor with a clean "
                               "verifier verdict and bound certificate")
    winner = min(eligible, key=lambda c: c.est_cost)
    winner.chosen = True
    others = [c for c in eligible if c is not winner]
    if others:
        runner_up = min(others, key=lambda c: c.est_cost)
        margin = ((runner_up.est_cost - winner.est_cost)
                  / winner.est_cost * 100.0) if winner.est_cost > 0 else 0.0
        why = (f"{winner.name}: cheapest certified plan at estimated "
               f"{winner.est_cost:.1f} ({winner.estimator}); runner-up "
               f"{runner_up.name} at {runner_up.est_cost:.1f} (+{margin:.0f}%)")
    else:
        why = f"{winner.name}: only candidate meeting quality floor {quality_floor:g}"
    excluded = [c.name for c in candidates if c.quality < quality_floor - 1e-9]
    if excluded:
        why += f"; below floor: {', '.join(excluded)}"
    return ChooserDecision(candidates, winner, quality_floor, why)


def choose_engine(sources, n: int, agg=SUM,
                  calibration: Calibration | None = None) -> tuple[str, dict]:
    """Fast path for the E20 bench loop: predict the four scalar
    engines' charged costs and return ``(best_engine, estimates)``
    without building runners or certificates."""
    calibration = calibration or Calibration.uncalibrated()
    feats = query_features(sources, n, agg)
    estimates = {}
    for engine in SCALAR_ENGINES:
        cost = calibration.predict_cost(engine, feats)
        if cost is None:
            depth = _prior_depth(engine, n, feats.m, feats.objects)
            cost = _prior_cost(engine, depth, n, feats.m, feats.objects,
                               calibration.weights)
        estimates[engine] = cost
    best = min(SCALAR_ENGINES, key=lambda engine: estimates[engine])
    return best, estimates
