"""``repro explain`` — the candidate table behind a plan choice.

Renders, for one query, every plan the adaptive chooser enumerated:
estimated cost (calibrated model) next to *observed* cost (the same
charged-cost functional over a real run's counters), the safety label,
the MOA verifier verdict and MOA9xx bound-certification status, the
Pareto frontier, and why the winner won.  Two scenarios:

* ``example1`` — the paper's Example 1 through the optimizer pipeline:
  the table shows the rewrite candidates the cost model ranked, each
  re-executed for its observed cost;
* ``topn`` — a multi-feature middleware query over graded sources: the
  table shows the Fagin-family engine candidates, each executed for
  observed cost and observed overlap@N against the exact reference.

``--json`` emits the shared CLI diagnostics payload (``command`` /
``reports`` / ``annotations`` / ``max_severity`` / ``exit_code``) plus
an ``explain`` object, so CI consumes ``repro explain --json`` with the
same machinery as ``lint`` / ``bounds`` / ``check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...quality.metrics import overlap_at
from ...storage.stats import CostCounter
from .calibration import Calibration
from .chooser import ChooserDecision, choose, enumerate_candidates
from .workload import corpus_matrix, make_sources

__all__ = ["ExplainReport", "ExplainRow", "explain_example1", "explain_topn"]


@dataclass
class ExplainRow:
    """One line of the candidate table."""

    name: str
    safe: bool
    certified: bool | None
    verifier_clean: bool
    est_cost: float
    observed_cost: float | None
    quality: float
    observed_quality: float | None
    estimator: str
    on_frontier: bool
    chosen: bool
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "safe": self.safe,
            "certified": self.certified,
            "verifier_clean": self.verifier_clean,
            "est_cost": self.est_cost,
            "observed_cost": self.observed_cost,
            "quality": self.quality,
            "observed_quality": self.observed_quality,
            "estimator": self.estimator,
            "on_frontier": self.on_frontier,
            "chosen": self.chosen,
            "note": self.note,
        }


@dataclass
class ExplainReport:
    """Everything ``repro explain`` shows for one query."""

    scenario: str
    n: int
    quality_floor: float
    calibrated: bool
    rows: list = field(default_factory=list)
    winner: str | None = None
    why: str = ""
    ok: bool = True
    calibration_meta: dict = field(default_factory=dict)
    #: the scenario's verifier + certificate findings as one
    #: :class:`~repro.analysis.DiagnosticReport` (the ``reports`` entry
    #: of the shared CLI ``--json`` payload)
    diagnostics: object = None

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "n": self.n,
            "quality_floor": self.quality_floor,
            "calibrated": self.calibrated,
            "winner": self.winner,
            "why": self.why,
            "ok": self.ok,
            "calibration": dict(self.calibration_meta),
            "rows": [row.to_dict() for row in self.rows],
        }

    # -- rendering ---------------------------------------------------------

    def render_text(self) -> str:
        headers = ["PLAN", "SAFE", "CERT", "LINT", "EST COST", "OBS COST",
                   "QUALITY", "FRONT", "PICK"]
        aligns = ["<", "<", "<", "<", ">", ">", ">", "<", "<"]
        body = []
        for row in self.rows:
            quality = (f"{row.observed_quality:.3f}"
                       if row.observed_quality is not None
                       else f"~{row.quality:.3f}")
            body.append([
                row.name,
                "yes" if row.safe else "NO",
                {True: "yes", False: "NO", None: "n/a"}[row.certified],
                "ok" if row.verifier_clean else "ERR",
                f"{row.est_cost:,.1f}",
                f"{row.observed_cost:,.1f}" if row.observed_cost is not None else "-",
                quality,
                "*" if row.on_frontier else "",
                "<==" if row.chosen else "",
            ])
        lines = [_box_table(headers, body, aligns)]
        mode = "calibrated" if self.calibrated else "uncalibrated priors"
        obs = self.calibration_meta.get("observations")
        if obs:
            mode += f" ({obs} observations)"
        lines.append(f"scenario={self.scenario}  n={self.n}  "
                     f"quality_floor={self.quality_floor:g}  model={mode}")
        lines.append(f"why: {self.why}")
        lines.append("ok: chosen plan is verifier-clean, bound-certified and exact"
                     if self.ok else
                     "NOT OK: chosen plan failed certification or exactness")
        return "\n".join(lines)


def _box_table(headers, rows, aligns) -> str:
    """A Unicode box-drawing table (the BENCH block-map style)."""
    widths = [len(header) for header in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def rule(left, mid, right):
        return left + mid.join("─" * (w + 2) for w in widths) + right

    def line(cells):
        padded = [f" {cell:{align}{width}} "
                  for cell, align, width in zip(cells, aligns, widths)]
        return "│" + "│".join(padded) + "│"

    out = [rule("┌", "┬", "┐"), line(headers), rule("├", "┼", "┤")]
    out.extend(line(row) for row in rows)
    out.append(rule("└", "┴", "┘"))
    return "\n".join(out)


def _observe(runner, calibration: Calibration):
    """Run a candidate under a fresh counter; return (result, scalar cost)."""
    with CostCounter.activate() as cost:
        result = runner()
    return result, calibration.charged_cost(cost.snapshot())


def explain_topn(corpus: str = "uniform", n: int = 10, objects: int = 800,
                 sources: int = 3, seed: int = 7, block_size: int | None = None,
                 quality_floor: float = 1.0,
                 calibration: Calibration | None = None) -> ExplainReport:
    """Candidate table for a multi-feature top-N middleware query."""
    from ...mm.sources import BlockedSource
    from ...topn import naive_topn_sources

    calibration = calibration or Calibration.uncalibrated()
    rng = np.random.default_rng(seed)
    matrix = corpus_matrix(corpus, objects, sources, rng)
    source_list = make_sources(matrix, prefix=corpus)
    blocked_sources = None
    if block_size:
        blocked_sources = [BlockedSource.from_array(matrix[:, j], block_size,
                                                    name=f"{corpus}:b{j}")
                           for j in range(sources)]
    candidates = enumerate_candidates(
        source_list, n, calibration=calibration,
        blocked_sources=blocked_sources)
    decision = choose(candidates, quality_floor=quality_floor)

    # exact reference on its own counter (not charged to any candidate)
    with CostCounter.activate():
        reference = naive_topn_sources(source_list, n)
    ref_ids = [item.obj_id for item in reference.items]

    rows = []
    chosen_exact = True
    for candidate in candidates:
        observed_cost = observed_quality = None
        if candidate.runner is not None:
            result, observed_cost = _observe(candidate.runner, calibration)
            ids = [item.obj_id for item in result.items]
            observed_quality = overlap_at(ids, ref_ids, n) if ids or ref_ids else 1.0
            if candidate.chosen and candidate.safe and observed_quality < 1.0:
                chosen_exact = False
        rows.append(ExplainRow(
            name=candidate.name, safe=candidate.safe,
            certified=candidate.certified,
            verifier_clean=candidate.verifier_clean,
            est_cost=candidate.est_cost, observed_cost=observed_cost,
            quality=candidate.quality, observed_quality=observed_quality,
            estimator=candidate.estimator, on_frontier=candidate.on_frontier,
            chosen=candidate.chosen, note=candidate.note))
    ok = (decision.chosen is not None
          and decision.chosen.verifier_clean
          and decision.chosen.certified is not False
          and chosen_exact)
    return ExplainReport(
        scenario=f"topn:{corpus}", n=n, quality_floor=quality_floor,
        calibrated=calibration.calibrated, rows=rows,
        winner=decision.chosen.name if decision.chosen else None,
        why=decision.why, ok=ok,
        calibration_meta=dict(calibration.meta),
        diagnostics=decision_report(decision, f"explain:topn:{corpus}"))


def explain_example1(calibration: Calibration | None = None) -> ExplainReport:
    """Candidate table for the paper's Example 1 rewrite choice.

    The optimizer's candidate expressions are costed with the
    (calibrated) :class:`~repro.optimizer.cost.CostModel`, then each is
    executed for its observed charged cost — estimated-vs-observed on
    the same scale shows whether calibration preserved the ranking the
    pipeline committed to."""
    from ...algebra import evaluate, parse
    from ...analysis import AnalysisContext, DiagnosticReport, analyze_expr, certify
    from ...optimizer import Optimizer

    calibration = calibration or Calibration.uncalibrated()
    expr = parse("select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
    optimizer = Optimizer(cost_model=calibration.cost_model())
    report = optimizer.optimize(expr)

    context = AnalysisContext()
    rows = []
    findings = DiagnosticReport(source="explain:example1")
    seen = set()
    for candidate_expr, estimate in report.candidates:
        with CostCounter.activate() as cost:
            evaluate(candidate_expr, {})
        observed_cost = calibration.charged_cost(cost.snapshot())
        certificate = certify(candidate_expr, context)
        verifier = list(analyze_expr(candidate_expr, context))
        clean = not any(d.severity == "error" for d in verifier)
        chosen = candidate_expr == report.optimized
        rows.append(ExplainRow(
            name=str(candidate_expr), safe=True,
            certified=certificate.certified, verifier_clean=clean,
            est_cost=estimate.cost, observed_cost=observed_cost,
            quality=1.0, observed_quality=1.0,
            estimator="cost-model", on_frontier=False, chosen=chosen))
        for diagnostic in verifier + list(certificate.diagnostics):
            key = (diagnostic.code, diagnostic.path, diagnostic.message)
            if key not in seen:
                seen.add(key)
                findings.add(diagnostic)
    # frontier on (est cost, quality): quality is uniformly 1.0, so the
    # frontier is simply the cheapest estimate
    if rows:
        cheapest = min(rows, key=lambda row: row.est_cost)
        cheapest.on_frontier = True
    winner = next((row for row in rows if row.chosen), None)
    rewrites = sum(1 for entry in report.trace)
    if winner is not None and len(rows) > 1:
        baseline = max(row.est_cost for row in rows)
        ratio = baseline / winner.est_cost if winner.est_cost > 0 else float("inf")
        why = (f"{rewrites} rewrite step(s); chosen plan estimated "
               f"{ratio:.1f}x cheaper than the worst candidate")
    else:
        why = f"{rewrites} rewrite step(s); single candidate"
    ok = winner is not None and winner.verifier_clean \
        and winner.certified is not False
    return ExplainReport(
        scenario="example1", n=len(rows), quality_floor=1.0,
        calibrated=calibration.calibrated, rows=rows,
        winner=winner.name if winner else None, why=why, ok=ok,
        calibration_meta=dict(calibration.meta), diagnostics=findings)


def decision_report(decision: ChooserDecision, source: str):
    """Fold a decision's verifier + certificate diagnostics into one
    :class:`~repro.analysis.DiagnosticReport` for the shared CLI
    payload."""
    from ...analysis import DiagnosticReport

    report = DiagnosticReport(source=source)
    seen = set()
    for candidate in decision.candidates:
        for diagnostic in candidate.diagnostics:
            key = (diagnostic.code, diagnostic.path, diagnostic.message)
            if key not in seen:
                seen.add(key)
                report.add(diagnostic)
    return report
