"""Synthetic multi-feature workload classes for the adaptive optimizer.

The mixed workload E20 trains and evaluates on.  Each class is a
different joint distribution of per-source grades, chosen so the
Fagin-family engines rank differently across classes — the situation
where a per-query, trace-calibrated plan choice can beat any static
always-one-engine policy:

``uniform``
    independent uniform grades: thresholds decay slowly, random
    accesses are spent on objects that rarely pay off;
``skewed``
    independent heavy-tail grades (``u**8``): thresholds collapse
    fast, early stopping is cheap;
``correlated``
    one shared base signal per object: the same objects top every
    list, so sorted access converges almost immediately;
``sparse``
    posting-style lists (2% of objects graded, rest zero): sources
    exhaust quickly and sorted-only strategies shine.

Generators are deterministic given the caller's ``numpy`` RNG.
"""

from __future__ import annotations

import numpy as np

from ...mm.sources import ArraySource

__all__ = ["CORPUS_KINDS", "corpus_matrix", "make_sources"]

#: the workload classes of the mixed suite, in report order
CORPUS_KINDS = ("uniform", "skewed", "correlated", "sparse")


def corpus_matrix(kind: str, objects: int, m: int, rng: np.random.Generator) -> np.ndarray:
    """An ``objects x m`` grade matrix drawn from workload class ``kind``."""
    if kind == "uniform":
        return rng.random((objects, m))
    if kind == "skewed":
        return rng.random((objects, m)) ** 8
    if kind == "correlated":
        base = rng.random(objects)
        noise = rng.random((objects, m))
        return np.clip(0.9 * base[:, None] + 0.1 * noise, 0.0, 1.0)
    if kind == "sparse":
        grades = rng.random((objects, m))
        mask = rng.random((objects, m)) < 0.02
        return np.where(mask, grades, 0.0)
    raise ValueError(f"unknown corpus kind {kind!r} (one of {CORPUS_KINDS})")


def make_sources(matrix: np.ndarray, prefix: str = "src") -> list[ArraySource]:
    """One :class:`~repro.mm.sources.ArraySource` per matrix column."""
    return [ArraySource(matrix[:, j], name=f"{prefix}:{j}")
            for j in range(matrix.shape[1])]
