"""The centralized cost model (Step 3 of the paper).

The paper argues that handling all data types in one algebra "allows
us to keep the cost model much simpler": one model costs every plan,
no delegation to sub-systems.  This module implements that model over
*flattened physical plans*: each physical operator gets an analytic
formula in abstract cost units mirroring the kernel's charging rules
(tuple reads/writes, comparisons, log-probes for order-aware paths),
parameterized by a few constants and selectivity heuristics.

Estimates consume the same property the execution engine does —
sortedness of the inputs — so the model correctly predicts that the
rewritten Example-1 plan (select pushed to the sorted LIST) is cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..algebra import physical
from ..algebra.flatten import flatten
from ..algebra.types import SetType
from ..algebra.values import CollectionValue
from ..errors import CostModelError
from ..obs import tracer


@runtime_checkable
class ColumnStatisticsLike(Protocol):
    """What the cost model needs from column statistics: a range
    selectivity estimate.  Satisfied by
    :class:`repro.storage.statistics.ColumnStatistics` (zone map +
    equi-depth histogram) and by anything else exposing the method."""

    def range_selectivity(self, lo, hi) -> float:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated output cardinality, cumulative cost, ordering and
    (zone-map style) value bounds of the output column."""

    rows: float
    cost: float
    sorted_asc: bool = False
    sorted_desc: bool = False
    min_value: float | None = None
    max_value: float | None = None
    #: column statistics (histogram) for the output column.  Only
    #: order-preserving, distribution-preserving operators propagate
    #: them; anything that filters, truncates, deduplicates or merges
    #: drops them (with a ``cost.statistics_dropped`` trace marker)
    #: rather than letting a stale histogram mis-estimate downstream
    #: selectivities
    statistics: ColumnStatisticsLike | None = None


class CostModel:
    """Analytic cost model over physical operator trees."""

    def __init__(
        self,
        tuple_read: float = 1.0,
        tuple_write: float = 0.5,
        comparison: float = 0.25,
        select_selectivity: float = 0.33,
        dedup_ratio: float = 0.6,
        default_rows: float = 1000.0,
        statistics=None,
    ) -> None:
        self.tuple_read = tuple_read
        self.tuple_write = tuple_write
        self.comparison = comparison
        self.select_selectivity = select_selectivity
        self.dedup_ratio = dedup_ratio
        self.default_rows = default_rows
        #: optional StatisticsRegistry mapping env names to column
        #: statistics (histograms); improves selectivity estimates on
        #: skewed columns
        self.statistics = statistics

    # -- entry points -----------------------------------------------------

    def estimate_plan(self, plan: physical.PhysicalPlan, env=None) -> PlanEstimate:
        """Estimate a flattened plan against an (optional) environment
        providing actual input cardinalities."""
        return self._estimate(plan.root, env or {})

    def estimate_expr(self, expr, env=None, registry=None) -> PlanEstimate:
        """Flatten and estimate a logical expression."""
        env = env or {}
        env_types = {name: value.stype for name, value in env.items()}
        plan = flatten(expr, env_types, registry)
        return self.estimate_plan(plan, env)

    # -- dispatch ------------------------------------------------------------

    def _estimate(self, op: physical.PhysicalOp, env) -> PlanEstimate:
        children = [self._estimate(child, env) for child in op.children]
        if isinstance(op, physical.SourceVar):
            return self._source_estimate(env.get(op.name), name=op.name)
        if isinstance(op, physical.SourceLiteral):
            return self._source_estimate(op.value)
        if isinstance(op, physical.RangeSelect):
            return self._range_select(op, children[0])
        if isinstance(op, physical.Convert):
            return self._convert(op, children[0])
        if isinstance(op, physical.Sort):
            return self._sort(op, children[0])
        if isinstance(op, physical.TopN):
            return self._topn(op, children[0])
        if isinstance(op, physical.Slice):
            return self._slice(op, children[0])
        if isinstance(op, physical.Aggregate):
            child = children[0]
            cost = child.cost if op.which == "count" else child.cost + child.rows * self.tuple_read
            self._drop_statistics(op, child)
            return PlanEstimate(rows=1.0, cost=cost)
        if isinstance(op, physical.ProjectColumn):
            child = children[0]
            self._drop_statistics(op, child)
            return PlanEstimate(
                rows=child.rows,
                cost=child.cost + child.rows * (self.tuple_read + self.tuple_write),
            )
        if isinstance(op, physical.Concat):
            rows = children[0].rows + children[1].rows
            cost = children[0].cost + children[1].cost + rows * (self.tuple_read + self.tuple_write)
            self._drop_statistics(op, children[0])
            self._drop_statistics(op, children[1])
            return PlanEstimate(rows=rows, cost=cost)
        if isinstance(op, physical.SetOp):
            return self._setop(op, children[0], children[1])
        if isinstance(op, physical.GetField):
            return children[0]
        if isinstance(op, physical.Reverse):
            child = children[0]
            return PlanEstimate(
                rows=child.rows,
                cost=child.cost + child.rows * (self.tuple_read + self.tuple_write),
                sorted_asc=child.sorted_desc, sorted_desc=child.sorted_asc,
                min_value=child.min_value, max_value=child.max_value,
                statistics=child.statistics,
            )
        if isinstance(op, physical.Contains):
            child = children[0]
            if child.sorted_asc:
                probe = 2 * self._log2(child.rows) * self.comparison
            else:
                probe = child.rows * (self.tuple_read + self.comparison)
            self._drop_statistics(op, child)
            return PlanEstimate(rows=1.0, cost=child.cost + probe)
        if isinstance(op, physical.GetAt):
            child = children[0]
            self._drop_statistics(op, child)
            return PlanEstimate(rows=1.0, cost=child.cost + self.tuple_read)
        raise CostModelError(f"no cost formula for operator {op.label()!r}")

    def _drop_statistics(self, op: physical.PhysicalOp,
                         child: PlanEstimate) -> None:
        """Record that ``op`` invalidates its input's column statistics.

        Filtering, truncating, deduplicating and merging operators
        reshape the value distribution, so the input histogram no
        longer describes the output — the estimate drops it instead of
        propagating stale statistics, and leaves a trace marker so
        ``repro profile`` shows where estimation fell back to the
        heuristic constants."""
        if child.statistics is not None:
            tracer.event("cost.statistics_dropped", op=op.label())

    # -- formulas ---------------------------------------------------------------

    def _source_estimate(self, value, name: str | None = None) -> PlanEstimate:
        if isinstance(value, CollectionValue):
            rows = float(value.count)
            sorted_asc = sorted_desc = False
            min_value = max_value = None
            if value.is_atomic_elements:
                bat = value.bat
                sorted_asc = bat.tail_sorted
                sorted_desc = bat.tail_sorted_desc
                # zone-map statistics: column min/max, like any DBMS
                # keeps for its base data
                if rows and bat.tail_dtype_kind in ("i", "f"):
                    min_value = float(bat.tail.min())
                    max_value = float(bat.tail.max())
            statistics = None
            if name is not None and self.statistics is not None:
                statistics = self.statistics.get(name)
            return PlanEstimate(rows=rows, cost=0.0,
                                sorted_asc=sorted_asc, sorted_desc=sorted_desc,
                                min_value=min_value, max_value=max_value,
                                statistics=statistics)
        return PlanEstimate(rows=self.default_rows, cost=0.0)

    def _log2(self, n: float) -> float:
        return math.log2(n) if n > 2 else 1.0

    def _selectivity(self, op: physical.RangeSelect, child: PlanEstimate) -> float:
        """Uniform-distribution selectivity from zone-map stats, or the
        configured default when bounds/stats are unavailable."""
        if isinstance(op.lo, str) or isinstance(op.hi, str):
            return self.select_selectivity
        if child.statistics is not None:
            return child.statistics.range_selectivity(op.lo, op.hi)
        if child.min_value is None or child.max_value is None:
            return self.select_selectivity
        span = child.max_value - child.min_value
        if span <= 0:
            inside = (op.lo is None or op.lo <= child.min_value) and (
                op.hi is None or op.hi >= child.max_value
            )
            return 1.0 if inside else 0.0
        lo = child.min_value if op.lo is None else max(float(op.lo), child.min_value)
        hi = child.max_value if op.hi is None else min(float(op.hi), child.max_value)
        return max(hi - lo, 0.0) / span

    def _range_select(self, op: physical.RangeSelect, child: PlanEstimate) -> PlanEstimate:
        selectivity = self._selectivity(op, child)
        out = max(child.rows * selectivity, 1.0) if child.rows else 0.0
        if child.sorted_asc:
            cost = (
                2 * self._log2(child.rows) * self.comparison
                + out * (self.tuple_read + self.tuple_write)
            )
        else:
            cost = (
                child.rows * (self.tuple_read + self.comparison)
                + out * self.tuple_write
            )
        new_min = child.min_value if op.lo is None or child.min_value is None else max(
            child.min_value, float(op.lo) if not isinstance(op.lo, str) else child.min_value
        )
        new_max = child.max_value if op.hi is None or child.max_value is None else min(
            child.max_value, float(op.hi) if not isinstance(op.hi, str) else child.max_value
        )
        # the histogram was consulted for the selectivity above, but it
        # describes the *unfiltered* column: the selected output follows
        # a truncated distribution the histogram would mis-estimate
        self._drop_statistics(op, child)
        return PlanEstimate(rows=out, cost=child.cost + cost,
                            sorted_asc=child.sorted_asc, sorted_desc=child.sorted_desc,
                            min_value=new_min, max_value=new_max)

    def _convert(self, op: physical.Convert, child: PlanEstimate) -> PlanEstimate:
        if isinstance(op.result_type, SetType):
            rows = child.rows * self.dedup_ratio
            cost = child.rows * (self.tuple_read + self.comparison) + rows * self.tuple_write
            # deduplication reshapes the value distribution (heavy
            # values lose their mass): the input histogram is stale
            self._drop_statistics(op, child)
            return PlanEstimate(rows=rows, cost=child.cost + cost, sorted_asc=True)
        # bag conversion is physically the identity, but the ordering
        # knowledge is forgotten (no order exists on a BAG), so later
        # operators cannot plan order-aware fast paths; the value
        # *multiset* is unchanged, so statistics stay valid
        return PlanEstimate(rows=child.rows, cost=child.cost,
                            min_value=child.min_value, max_value=child.max_value,
                            statistics=child.statistics)

    def _sort(self, op: physical.Sort, child: PlanEstimate) -> PlanEstimate:
        already = child.sorted_desc if op.descending else child.sorted_asc
        if already and op.column is None:
            return child
        n = child.rows
        cost = n * self._log2(n) * self.comparison + n * (self.tuple_read + self.tuple_write)
        # sorting permutes, it does not change the value multiset:
        # statistics stay valid
        return PlanEstimate(rows=n, cost=child.cost + cost,
                            sorted_asc=not op.descending, sorted_desc=op.descending,
                            min_value=child.min_value, max_value=child.max_value,
                            statistics=child.statistics)

    def _topn(self, op: physical.TopN, child: PlanEstimate) -> PlanEstimate:
        out = min(float(op.n), child.rows)
        already = child.sorted_desc if op.descending else child.sorted_asc
        if already and op.column is None:
            cost = out * (self.tuple_read + self.tuple_write)
        else:
            cost = (
                child.rows * (self.tuple_read + self.comparison)
                + out * self._log2(max(out, 2)) * self.comparison
                + out * self.tuple_write
            )
        self._drop_statistics(op, child)
        return PlanEstimate(rows=out, cost=child.cost + cost,
                            sorted_asc=not op.descending, sorted_desc=op.descending)

    def _slice(self, op: physical.Slice, child: PlanEstimate) -> PlanEstimate:
        out = max(min(float(op.count), child.rows - op.offset), 0.0)
        cost = out * (self.tuple_read + self.tuple_write)
        self._drop_statistics(op, child)
        return PlanEstimate(rows=out, cost=child.cost + cost,
                            sorted_asc=child.sorted_asc, sorted_desc=child.sorted_desc)

    def _setop(self, op: physical.SetOp, a: PlanEstimate, b: PlanEstimate) -> PlanEstimate:
        if op.which == "union":
            rows = a.rows + b.rows * 0.5
        elif op.which == "intersect":
            rows = min(a.rows, b.rows) * 0.5
        else:
            rows = a.rows * 0.5
        cost = (a.rows + b.rows) * (self.tuple_read + self.comparison) + rows * self.tuple_write
        self._drop_statistics(op, a)
        self._drop_statistics(op, b)
        return PlanEstimate(rows=rows, cost=a.cost + b.cost + cost, sorted_asc=True)
