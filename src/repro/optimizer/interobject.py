"""The inter-object optimizer layer — the paper's novel contribution.

Step 2 of the paper: *"The special kind of optimization that deals
with two distinct extensions/structures, which I call inter-object
optimization, has not been shown in literature before ... The new
inter-object optimizer layer will be responsible for coordinating
optimization between operators on distinct extensions."*

The rules here never look inside an extension; they consume only the
metadata extensions publish into the registry (``kind="conversion"``,
``content_preserving``, ``dedups``, ``filter_commutes``,
``target_extension``).  A third-party extension that registers a
conversion with the same metadata benefits from all of these rules for
free — which is exactly the extensibility argument the paper makes.

The flagship rule, :class:`PushSelectThroughConversion`, performs the
paper's Example 1 rewrite::

    select(projecttobag([1,2,3,4,4,5]), 2, 4)
      =>  projecttobag(select([1,2,3,4,4,5], 2, 4))

after which the LIST extension's order-awareness (binary-search select
on a sorted list) makes the inner select cheap, and the conversion
processes only the selected elements.
"""

from __future__ import annotations

from ..algebra.expr import Apply, Expr, ScalarLiteral
from .logical import make_select, split_select, _split_sort
from .rules import RewriteRule, RuleContext


def _conversion_def(expr: Expr, context: RuleContext):
    """The OperatorDef of ``expr`` if it is a conversion Apply node."""
    if not isinstance(expr, Apply):
        return None
    try:
        opdef = context.opdef_of(expr)
    except Exception:
        return None
    if opdef.kind != "conversion":
        return None
    return opdef


class PushSelectThroughConversion(RewriteRule):
    """``select(convert(x), lo, hi)`` → ``convert(select(x, lo, hi))``
    for conversions whose metadata says filters commute."""

    name = "push-select-through-conversion"
    layer = "inter-object"

    def apply(self, expr: Apply, context: RuleContext):
        decomposed = split_select(expr, context)
        if decomposed is None:
            return None
        child, field, lo, hi = decomposed
        opdef = _conversion_def(child, context)
        if opdef is None or not opdef.properties.get("filter_commutes"):
            return None
        inner_child = child.args[0]
        pushed = make_select(inner_child, field, lo, hi)
        return Apply(child.op, pushed)


class PushTopNThroughConversion(RewriteRule):
    """``topn(convert(x), n)`` → ``topn(x, n)`` for *content preserving*
    conversions (top-N only depends on the element multiset, and both
    sides produce a LIST)."""

    name = "push-topn-through-conversion"
    layer = "inter-object"

    def apply(self, expr: Apply, context: RuleContext):
        if expr.op != "topn":
            return None
        values, scalars = expr.split_args(context.env_types, context.registry)
        if len(values) != 1:
            return None
        opdef = _conversion_def(values[0], context)
        if opdef is None or not opdef.properties.get("content_preserving"):
            return None
        inner_child = values[0].args[0]
        return Apply("topn", inner_child, *scalars)


class PushSortThroughConversion(RewriteRule):
    """``sort(convert(x), ...)`` → ``sort(x, ...)`` for content
    preserving conversions (both sides produce a LIST over the same
    multiset; physical tie-breaking is positional and the conversion is
    physically the identity)."""

    name = "push-sort-through-conversion"
    layer = "inter-object"

    def apply(self, expr: Apply, context: RuleContext):
        if expr.op != "sort":
            return None
        values, scalars = expr.split_args(context.env_types, context.registry)
        if len(values) != 1:
            return None
        opdef = _conversion_def(values[0], context)
        if opdef is None or not opdef.properties.get("content_preserving"):
            return None
        return Apply("sort", values[0].args[0], *scalars)


class AggregateThroughConversion(RewriteRule):
    """Aggregates skip conversions when the conversion's metadata
    guarantees the aggregate is unchanged: all aggregates for content
    preserving conversions; ``max``/``min`` also for deduplicating
    ones (duplicates never change extrema)."""

    name = "aggregate-through-conversion"
    layer = "inter-object"

    _ALL = ("count", "sum", "avg", "max", "min")
    _DEDUP_SAFE = ("max", "min")

    def apply(self, expr: Apply, context: RuleContext):
        if expr.op not in self._ALL:
            return None
        values, scalars = expr.split_args(context.env_types, context.registry)
        if len(values) != 1:
            return None
        opdef = _conversion_def(values[0], context)
        if opdef is None:
            return None
        props = opdef.properties
        allowed = (
            props.get("content_preserving")
            or (props.get("dedups") and expr.op in self._DEDUP_SAFE)
        )
        if not allowed:
            return None
        return Apply(expr.op, values[0].args[0], *scalars)


class SliceOfSortIsTopN(RewriteRule):
    """``slice(sort(x, dir), 0, n)`` → ``topn(x, n, dir)`` — the paper's
    "special top N operators, which can be seen as special select
    operators": a prefix of a full sort is a top-N and should be
    executed as one.  Works across extensions (x may be a BAG whose
    sort produced the LIST being sliced)."""

    name = "slice-of-sort-is-topn"
    layer = "inter-object"

    def apply(self, expr: Apply, context: RuleContext):
        if expr.op != "slice":
            return None
        values, scalars = expr.split_args(context.env_types, context.registry)
        if len(values) != 1 or not isinstance(values[0], Apply):
            return None
        if not all(isinstance(s, ScalarLiteral) for s in scalars):
            return None
        offset, count = [s.value for s in scalars]
        if offset != 0:
            return None
        sort_parts = _split_sort(values[0], context)
        if sort_parts is None:
            return None
        child, field, descending = sort_parts
        args = [child] if field is None else [child, field]
        return Apply("topn", *args, count, 1 if descending else 0)


class MembershipThroughConversion(RewriteRule):
    """``contains(convert(x), v)`` → ``contains(x, v)`` — membership is
    invariant under *any* content-derived conversion (both content
    preserving and deduplicating ones)."""

    name = "membership-through-conversion"
    layer = "inter-object"

    def apply(self, expr: Apply, context: RuleContext):
        if expr.op != "contains":
            return None
        values, scalars = expr.split_args(context.env_types, context.registry)
        if len(values) != 1:
            return None
        opdef = _conversion_def(values[0], context)
        if opdef is None:
            return None
        props = opdef.properties
        if not (props.get("content_preserving") or props.get("dedups")):
            return None
        return Apply("contains", values[0].args[0], *scalars)


DEFAULT_INTER_OBJECT_RULES: list[RewriteRule] = [
    PushSelectThroughConversion(),
    PushTopNThroughConversion(),
    PushSortThroughConversion(),
    AggregateThroughConversion(),
    MembershipThroughConversion(),
    SliceOfSortIsTopN(),
]
