"""Intra-object (E-ADT style) optimizers — per-extension local rules.

The paper plans to implement this layer "like E-ADTs as described in
[SP97]" (PREDATOR): each extension owns an optimizer for expressions
that stay *within* the extension.  Rules register per extension name;
:func:`intra_rules_for` assembles the active set, and third-party
extensions can contribute rules with :func:`register_intra_rule`.
"""

from __future__ import annotations

from ..algebra.expr import Apply, ScalarLiteral
from .logical import _split_sort
from .rules import RewriteRule, RuleContext


class TopNOfSortSameKey(RewriteRule):
    """LIST: ``topn(sort(x, dir), n, dir)`` → ``topn(x, n, dir)`` —
    the sort is redundant work for a top-N on the same key."""

    name = "list-topn-of-sort"
    layer = "intra-object"

    def apply(self, expr: Apply, context: RuleContext):
        if expr.op != "topn":
            return None
        values, scalars = expr.split_args(context.env_types, context.registry)
        if len(values) != 1 or not all(isinstance(s, ScalarLiteral) for s in scalars):
            return None
        sort_parts = _split_sort(values[0], context) if isinstance(values[0], Apply) else None
        if sort_parts is None:
            return None
        child, sort_field, sort_desc = sort_parts
        scalar_values = [s.value for s in scalars]
        topn_field = None
        if scalar_values and isinstance(scalar_values[0], str):
            topn_field, scalar_values = scalar_values[0], scalar_values[1:]
        if topn_field != sort_field:
            return None
        # sorting in any direction is redundant before a topn on the
        # same key: topn re-orders by that key itself
        args = [child] if topn_field is None else [child, topn_field]
        return Apply("topn", *args, *scalar_values)


class SortOfTopN(RewriteRule):
    """LIST: ``sort(topn(x, n, dir), dir)`` → ``topn(x, n, dir)`` —
    a top-N result is already ordered on its key."""

    name = "list-sort-of-topn"
    layer = "intra-object"

    def apply(self, expr: Apply, context: RuleContext):
        sort_parts = _split_sort(expr, context)
        if sort_parts is None or not isinstance(sort_parts[0], Apply):
            return None
        child, sort_field, sort_desc = sort_parts
        if child.op != "topn":
            return None
        child_values, child_scalars = child.split_args(context.env_types, context.registry)
        if not all(isinstance(s, ScalarLiteral) for s in child_scalars):
            return None
        scalar_values = [s.value for s in child_scalars]
        topn_field = None
        if scalar_values and isinstance(scalar_values[0], str):
            topn_field, scalar_values = scalar_values[0], scalar_values[1:]
        topn_desc = bool(scalar_values[1]) if len(scalar_values) > 1 else True
        if sort_field != topn_field or sort_desc != topn_desc:
            return None
        return child


class SelectAfterTopNShrink(RewriteRule):
    """LIST: ``topn(topn(x, k), n)`` with ``n <= k`` and same key and
    direction → ``topn(x, n)``."""

    name = "list-topn-of-topn"
    layer = "intra-object"

    def apply(self, expr: Apply, context: RuleContext):
        if expr.op != "topn":
            return None
        values, scalars = expr.split_args(context.env_types, context.registry)
        if len(values) != 1 or not isinstance(values[0], Apply) or values[0].op != "topn":
            return None
        if not all(isinstance(s, ScalarLiteral) for s in scalars):
            return None
        inner = values[0]
        inner_values, inner_scalars = inner.split_args(context.env_types, context.registry)
        if not all(isinstance(s, ScalarLiteral) for s in inner_scalars):
            return None
        outer_parts = _topn_parts([s.value for s in scalars])
        inner_parts = _topn_parts([s.value for s in inner_scalars])
        if outer_parts is None or inner_parts is None:
            return None
        if outer_parts[0] != inner_parts[0] or outer_parts[2] != inner_parts[2]:
            return None
        if outer_parts[1] > inner_parts[1]:
            return None
        field, n, descending = outer_parts
        args = [inner_values[0]] if field is None else [inner_values[0], field]
        return Apply("topn", *args, n, 1 if descending else 0)


def _topn_parts(scalar_values):
    """(field, n, descending) of topn scalar parameters."""
    field = None
    if scalar_values and isinstance(scalar_values[0], str):
        field, scalar_values = scalar_values[0], scalar_values[1:]
    if not scalar_values:
        return None
    n = scalar_values[0]
    descending = bool(scalar_values[1]) if len(scalar_values) > 1 else True
    return field, n, descending


_INTRA_RULES: dict[str, list[RewriteRule]] = {
    "LIST": [TopNOfSortSameKey(), SortOfTopN(), SelectAfterTopNShrink()],
    "BAG": [TopNOfSortSameKey(), SelectAfterTopNShrink()],
    "SET": [],
}


def register_intra_rule(extension_name: str, rule: RewriteRule) -> None:
    """Contribute an intra-object rule for one extension."""
    _INTRA_RULES.setdefault(extension_name, []).append(rule)


def intra_rules_for(extension_names=None) -> list[RewriteRule]:
    """The active intra-object rule set (all extensions by default)."""
    names = extension_names or sorted(_INTRA_RULES)
    rules: list[RewriteRule] = []
    for name in names:
        rules.extend(_INTRA_RULES.get(name, []))
    # dedupe while preserving order (rules may be shared across extensions)
    seen = set()
    unique = []
    for rule in rules:
        if id(rule) not in seen:
            seen.add(id(rule))
            unique.append(rule)
    return unique
