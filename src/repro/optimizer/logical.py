"""The general (structure-independent) logical optimizer layer.

These rules hold for any collection extension because they only use
algebraic identities of the operators themselves — no knowledge of the
structures involved.  In the paper's architecture this is the
"high level, general algebraic logical optimizer" sitting above the
inter-object layer.
"""

from __future__ import annotations

from ..algebra.expr import Apply, Expr, ScalarLiteral
from .rules import RewriteRule, RuleContext


def split_select(expr: Apply, context: RuleContext):
    """Decompose a ``select`` node into (child, field, lo, hi); returns
    None when the node is not a plain literal-bounded select."""
    if expr.op != "select":
        return None
    values, scalars = expr.split_args(context.env_types, context.registry)
    if len(values) != 1 or not all(isinstance(s, ScalarLiteral) for s in scalars):
        return None
    scalar_values = [s.value for s in scalars]
    if scalar_values and isinstance(scalar_values[0], str):
        field, bounds = scalar_values[0], scalar_values[1:]
    else:
        field, bounds = None, scalar_values
    if len(bounds) != 2:
        return None
    return values[0], field, bounds[0], bounds[1]


def make_select(child: Expr, field, lo, hi) -> Apply:
    """Reassemble a select node from its parts."""
    args = [child] if field is None else [child, field]
    return Apply("select", *args, lo, hi)


class MergeSelects(RewriteRule):
    """``select(select(x, a, b), c, d)`` → ``select(x, max(a,c), min(b,d))``
    when both selects target the same column."""

    name = "merge-selects"
    layer = "logical"

    def apply(self, expr: Apply, context: RuleContext):
        outer = split_select(expr, context)
        if outer is None or not isinstance(outer[0], Apply):
            return None
        inner = split_select(outer[0], context)
        if inner is None:
            return None
        child_outer, field_outer, lo_outer, hi_outer = outer
        child_inner, field_inner, lo_inner, hi_inner = inner
        if field_outer != field_inner:
            return None
        try:
            lo = max(lo_inner, lo_outer)
            hi = min(hi_inner, hi_outer)
        except TypeError:
            return None  # incomparable bound types
        return make_select(child_inner, field_outer, lo, hi)


class SliceOfSlice(RewriteRule):
    """``slice(slice(x, o1, c1), o2, c2)`` →
    ``slice(x, o1+o2, clamp(...))`` (LIST only by typing)."""

    name = "merge-slices"
    layer = "logical"

    def apply(self, expr: Apply, context: RuleContext):
        if expr.op != "slice":
            return None
        values, scalars = expr.split_args(context.env_types, context.registry)
        if len(values) != 1 or not isinstance(values[0], Apply) or values[0].op != "slice":
            return None
        if not all(isinstance(s, ScalarLiteral) for s in scalars):
            return None
        inner_values, inner_scalars = values[0].split_args(context.env_types, context.registry)
        if not all(isinstance(s, ScalarLiteral) for s in inner_scalars):
            return None
        offset_outer, count_outer = [s.value for s in scalars]
        offset_inner, count_inner = [s.value for s in inner_scalars]
        offset = offset_inner + offset_outer
        count = max(min(count_inner - offset_outer, count_outer), 0)
        return Apply("slice", inner_values[0], offset, count)


class SortIdempotent(RewriteRule):
    """``sort(sort(x, key, dir), key, dir)`` → ``sort(x, key, dir)``."""

    name = "sort-idempotent"
    layer = "logical"

    def apply(self, expr: Apply, context: RuleContext):
        decomposed = _split_sort(expr, context)
        if decomposed is None or not isinstance(decomposed[0], Apply):
            return None
        inner = _split_sort(decomposed[0], context)
        if inner is None:
            return None
        if decomposed[1:] != inner[1:]:
            return None
        return decomposed[0]


def _split_sort(expr: Apply, context: RuleContext):
    """(child, field, descending) of a sort node, else None."""
    if expr.op != "sort":
        return None
    values, scalars = expr.split_args(context.env_types, context.registry)
    if len(values) != 1 or not all(isinstance(s, ScalarLiteral) for s in scalars):
        return None
    scalar_values = [s.value for s in scalars]
    field = None
    if scalar_values and isinstance(scalar_values[0], str):
        field, scalar_values = scalar_values[0], scalar_values[1:]
    descending = bool(scalar_values[0]) if scalar_values else False
    return values[0], field, descending


DEFAULT_LOGICAL_RULES: list[RewriteRule] = [
    MergeSelects(),
    SliceOfSlice(),
    SortIdempotent(),
]
