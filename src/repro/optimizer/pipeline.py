"""The three-layer optimizer pipeline.

Mirrors the architecture the paper proposes: a general logical layer,
the inter-object layer "conceptually located between the high level,
general algebraic logical optimizer and the extension specific
optimizer parts", then the intra-object (E-ADT) layer — followed by a
cost-based choice among the candidate plans using the centralized cost
model (Step 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.engine import evaluate as _evaluate
from ..algebra.expr import Expr
from ..algebra.extensions import Registry, default_registry
from ..obs import tracer
from .cost import CostModel, PlanEstimate
from .interobject import DEFAULT_INTER_OBJECT_RULES
from .intraobject import intra_rules_for
from .logical import DEFAULT_LOGICAL_RULES
from .rules import RuleContext, TraceEntry, rewrite_fixpoint


@dataclass
class OptimizationReport:
    """What the optimizer did: candidate plans, estimates, the choice."""

    original: Expr
    optimized: Expr
    trace: list[TraceEntry] = field(default_factory=list)
    candidates: list[tuple[Expr, PlanEstimate]] = field(default_factory=list)
    #: plan-verifier findings (populated in ``verify=True`` mode); a
    #: :class:`repro.analysis.DiagnosticReport` or ``None``
    diagnostics: object = None
    #: the optimizer's `parallel=K` plan property (None = serial)
    parallel: int | None = None
    #: fast-path plan property: every declared cache reuse is sound and
    #: at least one serves the requested depth outright
    cache_hit: bool = False
    #: fast-path plan property: the depth certified resume state
    #: continues from (None = no sound resume declared)
    resume_from: int | None = None
    #: vectorized-execution plan property: the plan may run the
    #: block-at-a-time engines with block-max pruning, because every
    #: declared per-block score upper bound was certified by the bound
    #: interpreter (epoch-fresh, MOA9xx-clean).  ``False`` = blocked
    #: storage was declared but a block bound failed certification
    #: (fall back to the scalar oracles); ``None`` = no blocked storage
    #: declared
    vectorized: bool | None = None
    #: bound-certification plan property: every pruning decision of the
    #: chosen plan is dominated by the derived score intervals.  Gates
    #: TA/CA-style threshold use and coordinator bound seeding; ``None``
    #: means certification was not run
    bound_certified: bool | None = None
    #: machine-checkable worst-case error of an uncertified plan (a
    #: :class:`repro.analysis.WorstCaseError` or ``None``)
    worst_case_error: object = None
    #: the full :class:`repro.analysis.BoundCertificate` (or ``None``)
    bound_certificate: object = None

    @property
    def original_estimate(self) -> PlanEstimate:
        return self.candidates[0][1]

    @property
    def chosen_estimate(self) -> PlanEstimate:
        for expr, estimate in self.candidates:
            if expr == self.optimized:
                return estimate
        return self.candidates[-1][1]

    @property
    def estimated_speedup(self) -> float:
        """Estimated cost ratio original / chosen (>= 1 when the
        optimizer found an improvement)."""
        chosen = self.chosen_estimate.cost
        if chosen <= 0:
            return 1.0
        return self.original_estimate.cost / chosen

    def rules_fired(self) -> list[str]:
        return [entry.rule for entry in self.trace]

    def describe(self) -> str:
        """Multi-line human-readable account (for examples/CLIs)."""
        lines = [f"original : {self.original}"]
        for entry in self.trace:
            lines.append(f"  [{entry.layer}] {entry.rule}")
            lines.append(f"    {entry.before}")
            lines.append(f"    => {entry.after}")
        lines.append(f"optimized: {self.optimized}")
        lines.append(
            f"estimated cost {self.original_estimate.cost:.1f} -> "
            f"{self.chosen_estimate.cost:.1f} "
            f"(x{self.estimated_speedup:.1f})"
        )
        if self.cache_hit:
            lines.append("fast path: cache_hit")
        elif self.resume_from is not None:
            lines.append(f"fast path: resume_from={self.resume_from}")
        if self.vectorized is not None:
            lines.append(f"vectorized: {self.vectorized}")
        if self.bound_certified is not None:
            lines.append(f"bound_certified: {self.bound_certified}")
            if not self.bound_certified and self.worst_case_error is not None:
                lines.append(f"  {self.worst_case_error.describe()}")
        if self.diagnostics is not None:
            lines.append(self.diagnostics.render_text())
        return "\n".join(lines)


class Optimizer:
    """The full pipeline: logical → inter-object → intra-object →
    cost-based choice."""

    def __init__(
        self,
        registry: Registry | None = None,
        cost_model: CostModel | None = None,
        logical_rules=None,
        inter_object_rules=None,
        intra_object_rules=None,
        cost_based: bool = True,
        verify: bool = False,
        parallel: int | None = None,
        shards=None,
        merge_probe: bool = True,
        cache_reuse=None,
        score_bounds=None,
        aggregate=None,
        threshold_engine=None,
        pruning=None,
        bound_seeds=None,
        block_bounds=None,
        resume_sources=None,
    ) -> None:
        self.registry = registry or default_registry()
        self.cost_model = cost_model or CostModel()
        self.logical_rules = list(DEFAULT_LOGICAL_RULES if logical_rules is None else logical_rules)
        self.inter_object_rules = list(
            DEFAULT_INTER_OBJECT_RULES if inter_object_rules is None else inter_object_rules
        )
        self.intra_object_rules = list(
            intra_rules_for() if intra_object_rules is None else intra_object_rules
        )
        self.cost_based = cost_based
        #: opt-in plan verification: lint the chosen plan and every
        #: trace step, and consult the rule-soundness verdicts
        self.verify = verify
        #: the plan's `parallel=K` property: plans are verified as
        #: running under the K-way distributed coordinator; the shard
        #: declarations (var name -> ShardDeclaration) describe the
        #: layout, and ``merge_probe`` whether the coordinator's
        #: round-2 probe is enabled (shard-local cut-offs below the
        #: global top-N are unsound without it — MOA601/602/603)
        self.parallel = parallel
        self.shards = dict(shards or {})
        self.merge_probe = merge_probe
        #: CacheReuseDeclaration records the plan depends on; sound
        #: reuses grant the report's `cache_hit`/`resume_from` plan
        #: properties, unsound ones become MOA8xx diagnostics in
        #: verify mode
        self.cache_reuse = tuple(cache_reuse or ())
        #: bound-certification inputs (see repro.analysis.bounds): the
        #: declared per-source score intervals, the threshold engine +
        #: aggregate the plan runs under, and the pruning / seeded-bound
        #: / resume-frontier declarations to certify.  Every optimize()
        #: call derives the interval flow and stamps the report with the
        #: ``bound_certified`` plan property
        self.score_bounds = dict(score_bounds or {})
        self.aggregate = aggregate
        self.threshold_engine = threshold_engine
        self.pruning = tuple(pruning or ())
        self.bound_seeds = tuple(bound_seeds or ())
        #: per-block score upper bounds of blocked storage the plan
        #: wants to prune by (see repro.analysis.block_bound_declarations):
        #: certified through the same MOA9xx seeded-bound machinery as
        #: ``bound_seeds``, and granting the ``vectorized`` plan property
        self.block_bounds = tuple(block_bounds or ())
        self.resume_sources = tuple(resume_sources or ())

    def optimize(self, expr: Expr, env=None, verify: bool | None = None) -> OptimizationReport:
        """Rewrite ``expr`` through the three layers and pick the
        cheapest candidate by estimated cost.

        With ``verify=True`` (per call, or set on the optimizer) the
        plan verifier lints the chosen plan and re-checks every trace
        step; findings land in ``report.diagnostics``.
        """
        env = env or {}
        do_verify = self.verify if verify is None else verify
        # in verify mode budget exhaustion becomes an MOA501 diagnostic
        # instead of an exception, so the report can still be inspected
        exhaustion = "mark" if do_verify else "raise"
        env_types = {name: value.stype for name, value in env.items()}
        context = RuleContext(env_types=env_types, registry=self.registry)

        trace: list[TraceEntry] = []
        stages: list[Expr] = [expr]
        current = expr
        with tracer.span("optimizer.optimize", verify=do_verify):
            phases = (
                ("optimizer.logical", self.logical_rules),
                ("optimizer.inter_object", self.inter_object_rules),
                ("optimizer.intra_object", self.intra_object_rules),
                # one more logical pass: inter/intra rewrites can expose new
                # general opportunities (e.g. merged selects after a pushdown)
                ("optimizer.logical_post", self.logical_rules),
            )
            for phase_name, rules in phases:
                with tracer.span(phase_name, rules=len(rules)):
                    current, stage_trace = rewrite_fixpoint(
                        current, rules, context, on_budget_exhausted=exhaustion
                    )
                    tracer.annotate(applications=len(stage_trace))
                trace.extend(stage_trace)
                stages.append(current)

            # unique candidates in stage order
            candidates: list[Expr] = []
            for stage in stages:
                if stage not in candidates:
                    candidates.append(stage)
            with tracer.span("optimizer.cost_choice", candidates=len(candidates)):
                estimates = [
                    (candidate, self.cost_model.estimate_expr(candidate, env, self.registry))
                    for candidate in candidates
                ]
                if self.cost_based:
                    # ties go to the most-rewritten candidate (simpler plans)
                    chosen = min(reversed(estimates), key=lambda pair: pair[1].cost)[0]
                else:
                    chosen = candidates[-1]
            report = OptimizationReport(expr, chosen, trace, estimates,
                                        parallel=self.parallel)
            self._grant_cache_properties(report)
            with tracer.span("optimizer.certify_bounds"):
                self._grant_bound_properties(report, env_types)
            if do_verify:
                with tracer.span("optimizer.verify"):
                    report.diagnostics = self._verify_report(report, env_types)
            tracer.annotate(rules_fired=len(trace))
        return report

    def all_rules(self):
        """Every rule of the three layers, in application order."""
        return self.logical_rules + self.inter_object_rules + self.intra_object_rules

    def _grant_cache_properties(self, report: OptimizationReport) -> None:
        """Grant the ``cache_hit`` / ``resume_from`` fast-path plan
        properties when every declared reuse is sound (MOA8xx-clean).
        One unsound declaration withholds both — a plan must not mix a
        verified fast path with an unverifiable one."""
        if not self.cache_reuse:
            return
        if any(declaration.violations() for declaration in self.cache_reuse):
            return
        for declaration in self.cache_reuse:
            n, m = declaration.requested_n, declaration.cached_n
            serves = (m is not None and n is not None
                      and (declaration.complete
                           or (n <= m and declaration.prefix_safe)
                           or n == m))
            if serves:
                report.cache_hit = True
            elif declaration.has_resume and m is not None:
                if report.resume_from is None or m > report.resume_from:
                    report.resume_from = m

    def _analysis_context(self, env_types):
        # imported lazily: repro.analysis itself imports the rule
        # framework, so a module-level import would be circular
        from ..analysis import AnalysisContext

        return AnalysisContext(env_types=env_types, registry=self.registry,
                               shards=self.shards, parallel=self.parallel,
                               merge_probe=self.merge_probe,
                               cache_reuse=self.cache_reuse,
                               score_bounds=self.score_bounds,
                               aggregate=self.aggregate,
                               threshold_engine=self.threshold_engine,
                               pruning=self.pruning,
                               bound_seeds=self.bound_seeds + self.block_bounds,
                               resume_sources=self.resume_sources)

    def _grant_bound_properties(self, report: OptimizationReport, env_types) -> None:
        """Stamp the ``bound_certified`` plan property.

        Certification gates the threshold fast paths: only a certified
        plan may use TA/CA-style pruning thresholds or seed the
        coordinator's bound cache.  An uncertified plan keeps running —
        but carries its machine-checkable worst-case error (when one is
        computable) so the quality trade-off is explicit."""
        from ..analysis import certify

        certificate = certify(report.optimized, self._analysis_context(env_types))
        report.bound_certificate = certificate
        report.bound_certified = certificate.certified
        report.worst_case_error = certificate.worst_case
        if self.block_bounds:
            # block-max pruning is only as sound as its block bounds:
            # one stale/uncertified bound and the plan must fall back to
            # the scalar oracles
            report.vectorized = bool(certificate.certified)

    def _verify_report(self, report: OptimizationReport, env_types):
        """Run the plan verifier over a finished optimization."""
        from ..analysis import (
            DiagnosticReport,
            analyze_expr,
            check_rewrite_step,
            ensure_verified,
            make_diagnostic,
        )

        context = self._analysis_context(env_types)
        diagnostics = DiagnosticReport(source=str(report.original))
        diagnostics.extend(analyze_expr(report.optimized, context))

        rules_by_name = {rule.name: rule for rule in self.all_rules()}
        verdicts = ensure_verified(self.all_rules())
        flagged_rules = set()
        for entry in report.trace:
            if entry.is_budget_marker:
                diagnostics.add(make_diagnostic(
                    "MOA501",
                    f"rewrite stopped at {entry.after} without reaching a "
                    f"fixpoint: non-confluent or cyclic rule set",
                ))
                continue
            rule = rules_by_name.get(entry.rule)
            if entry.before_expr is not None and entry.after_expr is not None:
                diagnostics.extend(check_rewrite_step(
                    entry.before_expr, entry.after_expr, context, rule=rule,
                ))
            verdict = verdicts.get(entry.rule)
            if verdict is not None and not verdict.passed and entry.rule not in flagged_rules:
                flagged_rules.add(entry.rule)
                why = verdict.failures[0] if verdict.failures else "never exercised"
                diagnostics.add(make_diagnostic(
                    "MOA202",
                    f"rule failed soundness verification: {why}",
                    rule=entry.rule, severity="error",
                ))
        return diagnostics

    def execute(self, expr: Expr, env=None):
        """Optimize, evaluate the chosen plan, return (value, report)."""
        report = self.optimize(expr, env)
        value = _evaluate(report.optimized, env, self.registry)
        return value, report
