"""The rewrite-rule framework shared by all three optimizer layers.

A rule inspects one :class:`~repro.algebra.expr.Apply` node (with its
context) and either returns a replacement expression or ``None``.
:func:`rewrite_fixpoint` applies a rule set bottom-up until no rule
fires, recording a trace of every application — the trace is surfaced
by the pipeline's reports and asserted on in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..algebra.expr import Apply, Expr, rebuild
from ..algebra.extensions import Registry, default_registry
from ..algebra.types import StructureType
from ..errors import RewriteError
from ..obs import metrics as _metrics
from ..obs import tracer as _tracer

#: the three optimizer layers of the paper's architecture
LAYERS = ("logical", "inter-object", "intra-object")


@dataclass
class RuleContext:
    """Static context a rule may consult."""

    env_types: Mapping[str, StructureType] = field(default_factory=dict)
    registry: Registry = field(default_factory=default_registry)

    def type_of(self, expr: Expr) -> StructureType:
        return expr.infer_type(self.env_types, self.registry)

    def opdef_of(self, expr: Apply):
        return expr.dispatch(self.env_types, self.registry)


class RewriteRule:
    """Base class for rewrite rules."""

    #: unique rule name (shows up in traces)
    name = "abstract"
    #: which optimizer layer the rule belongs to
    layer = "logical"
    #: declared safety label: ``"safe"`` rules preserve results exactly,
    #: ``"unsafe"`` rules (the paper's cut-off family) may approximate.
    #: The label is *verified* differentially by
    #: :mod:`repro.analysis.soundness`; the verifier's step checks
    #: surface unsafe or unverified rules as MOA202 diagnostics.
    safety = "safe"

    def apply(self, expr: Apply, context: RuleContext) -> Expr | None:
        """Return a replacement for ``expr`` or None if not applicable."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.layer} rule {self.name}>"


@dataclass(frozen=True)
class TraceEntry:
    """One recorded rule application.

    ``before_expr`` / ``after_expr`` carry the actual expression trees
    (when available) so the plan verifier can re-analyze every step;
    the string fields remain the stable rendering used by reports.
    """

    rule: str
    layer: str
    before: str
    after: str
    before_expr: Expr | None = None
    after_expr: Expr | None = None

    @property
    def is_budget_marker(self) -> bool:
        return self.rule == BUDGET_EXHAUSTED_RULE


#: pseudo-rule name of the trace marker recorded when
#: :func:`rewrite_fixpoint` exhausts its application budget
BUDGET_EXHAUSTED_RULE = "<budget-exhausted>"


def _rewrite_node(expr: Expr, rules, context, trace, budget) -> Expr:
    """Bottom-up single pass: rewrite children first, then this node."""
    if isinstance(expr, Apply):
        new_children = tuple(
            _rewrite_node(child, rules, context, trace, budget) for child in expr.children()
        )
        if new_children != expr.children():
            expr = rebuild(expr, new_children)
        changed = True
        while changed and budget[0] > 0:
            changed = False
            for rule in rules:
                if not isinstance(expr, Apply):
                    break
                replacement = rule.apply(expr, context)
                if replacement is None:
                    continue
                _check_type_preserved(expr, replacement, context, rule)
                trace.append(TraceEntry(rule.name, rule.layer, str(expr), str(replacement),
                                        before_expr=expr, after_expr=replacement))
                if _tracer.enabled():
                    _tracer.event("optimizer.rule", rule=rule.name, layer=rule.layer)
                _metrics.inc(f"optimizer.rule_hits.{rule.name}")
                budget[0] -= 1
                expr = replacement
                # the replacement may expose new opportunities below it
                if isinstance(expr, Apply):
                    new_children = tuple(
                        _rewrite_node(child, rules, context, trace, budget)
                        for child in expr.children()
                    )
                    if new_children != expr.children():
                        expr = rebuild(expr, new_children)
                changed = True
                break
    return expr


def _check_type_preserved(before: Expr, after: Expr, context: RuleContext, rule) -> None:
    before_type = context.type_of(before)
    after_type = context.type_of(after)
    if before_type != after_type:
        raise RewriteError(
            f"rule {rule.name!r} changed the expression type "
            f"{before_type} -> {after_type} ({before} => {after})"
        )


def rewrite_fixpoint(
    expr: Expr,
    rules: list[RewriteRule],
    context: RuleContext | None = None,
    max_applications: int = 100,
    on_budget_exhausted: str = "raise",
) -> tuple[Expr, list[TraceEntry]]:
    """Apply ``rules`` bottom-up to a fixpoint (bounded by
    ``max_applications`` to guard against non-terminating rule sets).

    Every application is type-checked: a rule that changes the result
    type raises :class:`~repro.errors.RewriteError`.

    Budget exhaustion is never silent: a :data:`BUDGET_EXHAUSTED_RULE`
    marker entry is recorded in the trace so non-confluent rule sets
    stay visible, then either a :class:`~repro.errors.RewriteError` is
    raised (``on_budget_exhausted="raise"``, the default) or the
    current state is returned with the marker in place
    (``on_budget_exhausted="mark"`` — the plan verifier turns the
    marker into an MOA501 diagnostic).
    """
    if on_budget_exhausted not in ("raise", "mark"):
        raise ValueError(
            f"on_budget_exhausted must be 'raise' or 'mark', got {on_budget_exhausted!r}"
        )
    context = context or RuleContext()
    trace: list[TraceEntry] = []
    budget = [max_applications]
    result = _rewrite_node(expr, rules, context, trace, budget)
    if budget[0] <= 0:
        trace.append(TraceEntry(
            BUDGET_EXHAUSTED_RULE, "framework", str(result), str(result),
            before_expr=result, after_expr=result,
        ))
        if on_budget_exhausted == "raise":
            raise RewriteError(
                f"rewrite did not reach a fixpoint within {max_applications} applications "
                f"(cyclic rules?): last state {result}"
            )
    return result, trace
