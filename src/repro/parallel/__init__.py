"""Sharded parallel execution engine with bounded distributed top-N merge.

The subsystem has three layers plus integration glue:

* :mod:`~repro.parallel.sharder` — partition one inverted index into K
  document-range shards, each with its own BAT storage, local df
  statistics and per-shard score upper bounds;
* :mod:`~repro.parallel.executor` — a bounded executor pool (threads by
  default, processes opt-in, serial for determinism) with per-query
  admission control, explicit rejection, and cooperative cancellation;
* :mod:`~repro.parallel.coordinator` — the TPUT/TA-style two-round
  threshold merge producing results that are tie-aware-identical to
  serial :func:`~repro.topn.naive.naive_topn`, with a
  ``certified`` correctness flag on the :class:`~repro.topn.result.TopNResult`;
* :mod:`~repro.parallel.bench` — the ``repro bench-parallel`` harness
  comparing shard counts against the serial engines.

``REPRO_PARALLEL_DEFAULT_SHARDS`` sets the default shard count for
callers that do not pass one (:func:`default_shard_count`).
"""

from __future__ import annotations

import os

from .bench import bench_parallel
from .coordinator import (
    IndexShardEvaluator,
    ShardAnswer,
    SourceRangeEvaluator,
    coordinated_topn,
    default_round1_fetch,
    parallel_topn,
    parallel_topn_sources,
)
from .executor import (
    CancelToken,
    ExecutorPool,
    TaskOutcome,
    counter_from_snapshot,
    replay_cost,
)
from .sharder import IndexShard, ShardedIndex, shard_index

#: environment variable naming the default shard count
DEFAULT_SHARDS_ENV = "REPRO_PARALLEL_DEFAULT_SHARDS"


def default_shard_count(fallback: int = 1) -> int:
    """The shard count used when a caller does not choose one:
    ``$REPRO_PARALLEL_DEFAULT_SHARDS`` when set to a positive integer,
    else ``fallback``."""
    raw = os.environ.get(DEFAULT_SHARDS_ENV, "").strip()
    if raw.isdigit() and int(raw) >= 1:
        return int(raw)
    return fallback


__all__ = [
    "CancelToken",
    "DEFAULT_SHARDS_ENV",
    "ExecutorPool",
    "IndexShard",
    "IndexShardEvaluator",
    "ShardAnswer",
    "ShardedIndex",
    "SourceRangeEvaluator",
    "TaskOutcome",
    "bench_parallel",
    "coordinated_topn",
    "counter_from_snapshot",
    "default_round1_fetch",
    "default_shard_count",
    "parallel_topn",
    "parallel_topn_sources",
    "replay_cost",
    "shard_index",
]
