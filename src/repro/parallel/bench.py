"""The ``repro bench-parallel`` harness.

Builds one synthetic database, runs a query batch through serial
:func:`~repro.topn.naive.naive_topn`, then through the sharded
coordinator at each requested shard count, and reports latency, access
counts (the simulated :class:`~repro.storage.stats.CostCounter`), round
structure, and — most importantly — whether every parallel answer is
tie-aware-identical to the serial one and ``certified``.  The harness
*always* verifies; a mismatch is a defect, never a statistic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..storage.stats import CostCounter
from ..topn.naive import naive_topn
from .coordinator import parallel_topn
from .executor import ExecutorPool
from .sharder import shard_index


@dataclass
class BenchRow:
    """Aggregate measurements for one configuration over the batch."""

    label: str
    shards: int
    queries: int
    seconds: float
    tuples_read: int
    page_reads: int
    probes: int = 0
    probes_saved: int = 0
    rounds_2: int = 0
    items_shipped: int = 0
    mismatches: int = 0
    uncertified: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class BenchParallelReport:
    """Everything ``repro bench-parallel`` prints."""

    n: int
    rows: list[BenchRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every parallel run matched serial and certified."""
        return all(row.mismatches == 0 and row.uncertified == 0
                   for row in self.rows)

    def to_dict(self) -> dict:
        return {"n": self.n, "ok": self.ok,
                "rows": [row.to_dict() for row in self.rows]}


def _ranking_equal(serial, parallel) -> bool:
    """Tie-aware identity: same ids in the same order, same scores."""
    return (serial.doc_ids == parallel.doc_ids
            and serial.scores == parallel.scores)


def bench_parallel(
    scale: float = 0.05,
    seed: int = 7,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    queries: int = 10,
    n: int = 10,
    kind: str = "thread",
    workers: int = 4,
) -> BenchParallelReport:
    """Run the comparison; see the module docstring."""
    from ..core import MMDatabase
    from ..workloads import SyntheticCollection, generate_queries, trec

    collection = SyntheticCollection.generate(trec.ft_like(scale=scale, seed=seed))
    db = MMDatabase.from_collection(collection)
    batch = generate_queries(collection, n_queries=queries,
                             terms_range=(2, 6), rare_bias=2.0, seed=seed + 1)
    tid_lists = [list(query.term_ids) for query in batch]

    report = BenchParallelReport(n=n)

    # serial baseline
    serial_results = []
    with CostCounter.activate() as cost:
        started = time.perf_counter()
        for tids in tid_lists:
            serial_results.append(naive_topn(db.index, tids, db.model, n))
        elapsed = time.perf_counter() - started
    report.rows.append(BenchRow(
        label="serial", shards=1, queries=len(tid_lists), seconds=elapsed,
        tuples_read=cost.tuples_read, page_reads=cost.page_reads,
    ))

    for k in shard_counts:
        sharded = shard_index(db.index, shards=k)
        row = BenchRow(label=f"parallel-{k}", shards=k,
                       queries=len(tid_lists), seconds=0.0,
                       tuples_read=0, page_reads=0)
        with ExecutorPool(workers=workers, kind=kind,
                          max_queries=max(4, queries)) as pool:
            with CostCounter.activate() as cost:
                started = time.perf_counter()
                for tids, serial in zip(tid_lists, serial_results):
                    with pool.admit():
                        result = parallel_topn(sharded, tids, db.model, n,
                                               pool=pool)
                    row.probes += result.stats["probes"]
                    row.probes_saved += result.stats["probes_saved"]
                    row.rounds_2 += int(result.stats["rounds"] == 2)
                    row.items_shipped += result.stats["items_shipped"]
                    if not _ranking_equal(serial, result):
                        row.mismatches += 1
                    if result.certified is not True:
                        row.uncertified += 1
                row.seconds = time.perf_counter() - started
        row.tuples_read = cost.tuples_read
        row.page_reads = cost.page_reads
        report.rows.append(row)
    return report
