"""Distributed top-N coordinator: a bounded two-round threshold merge.

The naive way to parallelize top-N over K document-range shards is a
*full gather*: every shard ships its complete local top-N and the
coordinator merges K·N items.  Following the TPUT/TA family (Fagin's
threshold administration applied across nodes instead of across
sources), this coordinator does better:

**Round 1** fetches only each shard's local top-``R`` with
``R = min(n, ceil(n/K))`` — if load were perfectly balanced, the global
top-N would draw ~``n/K`` items per shard.  The merged round-1 pool
yields a *uniform threshold* ``τ``: the sort key of the n-th best item
seen so far.

**Round 2** probes a shard for its deeper items only when they could
still matter.  Shards are doc-disjoint and every fetched list is
locally sorted, so every unfetched item of shard *s* ranks strictly
below ``L_s``, the last item shard *s* shipped.  If ``key(L_s) ≥ τ``
the shard is *pruned* — none of its unfetched items can displace the
current top-N — otherwise it is probed for its full local top-N.
Probes that are still queued are re-checked against the live threshold
just before running and skipped when earlier probes have already pushed
``τ`` past them.

Sort keys are the pairs ``(-score, obj_id)`` (ascending = better).
Keys are unique, so the tie-aware boundary rule — smallest ids win on a
tied boundary — is enforced by construction and the merged result is
byte-identical to serial :func:`~repro.topn.naive.naive_topn`.

The returned :class:`TopNResult` carries ``certified=True`` when every
shard was exhausted, pruned by the threshold bound, or fully probed —
i.e. the coordinator *proved* the answer equals the serial one.  With
``probe=False`` (round 1 only) certification can fail; the result then
says ``certified=False`` and ``safe=False``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ParallelError, QueryCancelledError
from ..ir.ranking import ScoringModel, score_all
from ..obs import metrics, tracer
from ..storage import stats as _stats
from ..sync import declares_shared_state, make_lock
from ..topn.aggregates import SUM, AggregateFunction
from ..topn.result import RankedItem, TopNResult
from .executor import CancelToken, ExecutorPool, replay_cost
from .sharder import ShardedIndex


def _key(item: RankedItem) -> tuple[float, int]:
    """Total-order sort key, ascending = better.  Unique per object."""
    return (-item.score, item.obj_id)


# -- shard evaluators -------------------------------------------------------


@dataclass
class ShardAnswer:
    """One shard's reply to a fetch: its best ``depth`` items."""

    shard_id: int
    #: local items, best first (key-ascending)
    items: list[RankedItem]
    #: True when ``items`` is the shard's *complete* candidate ranking
    exhausted: bool
    #: the shard's total candidate count
    candidates: int


@declares_shared_state
class IndexShardEvaluator:
    """Evaluates one query against one index shard.

    The full local ranking is computed once and cached, so a round-2
    probe reuses round 1's work (thread/serial pools share memory; a
    process pool recomputes on the worker — the documented cost of
    opting into processes).
    """

    #: written by a round-1 worker, read by round 2 — safe because the
    #: executor resolves every round-1 future before round 2 submits
    SHARED_STATE = {"_ranked": "<barrier>"}

    def __init__(self, shard, tids: list[int], model: ScoringModel) -> None:
        self.shard_id = shard.shard_id
        self.shard = shard
        self.tids = list(tids)
        self.model = model
        self._ranked: list[RankedItem] | None = None

    def _ranking(self) -> list[RankedItem]:
        if self._ranked is None:
            bat = score_all(self.shard.index, self.tids, self.model)
            docs = bat.head_array().astype(np.int64)
            scores = np.asarray(bat.tail, dtype=np.float64)
            order = np.lexsort((docs, -scores))
            self._ranked = [RankedItem(int(docs[i]), float(scores[i]))
                            for i in order]
        return self._ranked

    def top(self, depth: int) -> ShardAnswer:
        ranked = self._ranking()
        return ShardAnswer(self.shard_id, ranked[:depth],
                           exhausted=depth >= len(ranked),
                           candidates=len(ranked))


@declares_shared_state
class SourceRangeEvaluator:
    """Evaluates one object-range shard of Fagin-style graded sources
    by exhaustive random access (the ``naive_topn_sources`` discipline,
    restricted to ``[obj_lo, obj_hi)``)."""

    SHARED_STATE = {"_ranked": "<barrier>"}

    def __init__(self, shard_id: int, sources: list, obj_lo: int, obj_hi: int,
                 agg: AggregateFunction = SUM) -> None:
        agg.validate_arity(len(sources))
        self.shard_id = shard_id
        self.sources = sources
        self.obj_lo = obj_lo
        self.obj_hi = obj_hi
        self.agg = agg
        self._ranked: list[RankedItem] | None = None

    def _ranking(self) -> list[RankedItem]:
        if self._ranked is None:
            scored = []
            for obj in range(self.obj_lo, self.obj_hi):
                grades = [source.random_access(obj) for source in self.sources]
                scored.append(RankedItem(obj, self.agg.combine(grades)))
            scored.sort(key=_key)
            self._ranked = scored
        return self._ranked

    def top(self, depth: int) -> ShardAnswer:
        ranked = self._ranking()
        return ShardAnswer(self.shard_id, ranked[:depth],
                           exhausted=depth >= len(ranked),
                           candidates=len(ranked))


# -- sealed merge state -----------------------------------------------------


@declares_shared_state
@dataclass
class _MergeState:
    """The coordinator's candidate pool.  ``seal()`` makes it
    permanently read-only: a cancelled or late shard task whose outcome
    arrives after the result was resolved can never write into it."""

    SHARED_STATE = {
        "_items": "_lock",
        "sealed": "_lock",
        "rejected_writes": "_lock",
    }
    SEALED_BY = {"_items": "sealed"}

    n: int
    _items: dict[int, RankedItem] = field(default_factory=dict)
    _lock: object = field(default_factory=lambda: make_lock("parallel.merge"))
    sealed: bool = False
    rejected_writes: int = 0

    def offer(self, items: list[RankedItem]) -> bool:
        """Merge items in; returns False (and changes nothing) when
        sealed.  Shards are object-disjoint but a probe re-ships its
        shard's round-1 items, so merging dedupes by object id."""
        with self._lock:
            if self.sealed:
                self.rejected_writes += 1
                return False
            for item in items:
                self._items[item.obj_id] = item
            return True

    def tau(self) -> tuple[float, int] | None:
        """The uniform threshold: key of the n-th best pooled item, or
        ``None`` while fewer than n candidates are pooled."""
        with self._lock:
            if len(self._items) < self.n:
                return None
            return heapq.nsmallest(self.n, map(_key, self._items.values()))[-1]

    def prunable(self, last_key: tuple[float, int] | None) -> bool:
        """Whether a shard whose deepest shipped item has ``last_key``
        can be pruned under the current threshold."""
        if last_key is None:
            return False
        threshold = self.tau()
        return threshold is not None and last_key >= threshold

    def seal(self) -> list[RankedItem]:
        """Freeze the pool and return the final top-n, best first."""
        with self._lock:
            self.sealed = True
            return sorted(self._items.values(), key=_key)[: self.n]

    def size(self) -> int:
        with self._lock:
            return len(self._items)


# -- the coordinator --------------------------------------------------------


def default_round1_fetch(n: int, k: int) -> int:
    """Round-1 fetch depth: the balanced-load share ``ceil(n/k)``,
    never more than ``n``."""
    return min(n, max(1, math.ceil(n / k)))


#: complete shard rankings larger than this are not retained in the
#: bound cache (memory guard; the threshold/top-key facts are kept)
_MAX_CACHED_RANKING = 1024


def coordinated_topn(
    evaluators: list,
    n: int,
    pool: ExecutorPool | None = None,
    round1_fetch: int | None = None,
    probe: bool = True,
    token: CancelToken | None = None,
    strategy: str = "parallel",
    bounds=None,
    epoch: int = 0,
) -> TopNResult:
    """Run the two-round bounded merge over shard evaluators.

    Each evaluator answers ``top(depth) -> ShardAnswer``.  See the
    module docstring for the protocol; ``probe=False`` stops after
    round 1 and reports honest (possibly ``certified=False``) results.

    ``bounds`` is an optional
    :class:`~repro.cache.bounds.CoordinatorBounds` recorded by a
    previous certified run of the *same fingerprint* (same corpus
    epoch, shard layout, terms).  Shards whose cached best key is
    provably below a cached final threshold are excluded from round 1
    outright (``bound_pruned``); shards with a cached complete local
    ranking are served from the cache without scheduling their
    evaluator (``bound_served``).  Certified outcomes are recorded back
    so consecutive runs keep tightening the bounds.

    ``epoch`` is the corpus epoch this run executes at.  Cached bounds
    stamped with a *different* epoch seed nothing — the runtime twin of
    the static MOA905 check (:meth:`CoordinatorBounds.seedable_at`) —
    and recording this run's outcome purges the stale facts.
    """
    if n < 1:
        raise ParallelError(f"need n >= 1, got {n}")
    if not evaluators:
        raise ParallelError("need at least one shard evaluator")
    own_pool = pool is None
    pool = pool or ExecutorPool(kind="serial", max_queries=1)
    token = token or CancelToken()
    k = len(evaluators)
    fetch = round1_fetch if round1_fetch is not None else default_round1_fetch(n, k)
    fetch = min(max(1, fetch), n)
    state = _MergeState(n)
    last_key: list[tuple[float, int] | None] = [None] * k
    first_key: list[tuple[float, int] | None] = [None] * k
    exhausted = [False] * k
    shard_candidates = [0] * k
    full_ranking: list[list[RankedItem] | None] = [None] * k
    precluded = [False] * k
    served = [False] * k
    shipped = 0
    candidates = 0

    # a cached final threshold from an n at least this deep bounds this
    # run's final τ from above (in key order), so exceeding it proves a
    # shard's unfetched tail irrelevant before the live pool can; an
    # epoch-mismatched cache seeds nothing (MOA905's runtime twin)
    seedable = bounds is not None and bounds.seedable_at(epoch)
    cached_bound = bounds.threshold_bound(n, epoch=epoch) if seedable else None

    def _tail_prunable(i: int) -> bool:
        if state.prunable(last_key[i]):
            return True
        return (cached_bound is not None and last_key[i] is not None
                and last_key[i] >= cached_bound)

    if seedable:
        prunable_ids = bounds.prunable_shards(n, epoch=epoch)
        for i, evaluator in enumerate(evaluators):
            ranking = bounds.complete_ranking(evaluator.shard_id)
            if ranking is not None:
                # cached complete local ranking: the shard never runs
                items = [RankedItem(obj, score) for obj, score in ranking]
                state.offer(items)
                served[i] = True
                exhausted[i] = True
                shard_candidates[i] = len(items)
                candidates += len(items)
                if items:
                    first_key[i] = _key(items[0])
                    last_key[i] = _key(items[-1])
            elif evaluator.shard_id in prunable_ids:
                # cached top key below a cached final threshold: the
                # shard provably contributes nothing to this top-n
                precluded[i] = True

    def _absorb(outcomes, idxs, round_no) -> None:
        """Merge shard outcomes (``idxs`` maps outcome position to
        evaluator index); per-shard spans carry the replayed cost."""
        nonlocal shipped, candidates
        for pos, outcome in enumerate(outcomes):
            i = idxs[pos]
            with tracer.span("parallel.shard", shard=evaluators[i].shard_id,
                             round=round_no, status=outcome.status):
                if outcome.status == "error":
                    raise outcome.error
                if outcome.status == "cancelled":
                    raise QueryCancelledError(
                        f"shard task {evaluators[i].shard_id} cancelled in "
                        f"round {round_no}")
                if outcome.status == "skipped":
                    continue
                if not outcome.already_charged:
                    replay_cost(outcome.cost)
                answer: ShardAnswer = outcome.payload
                state.offer(answer.items)
                # the coordinator touches every shipped item once to
                # merge it — model that transfer as tuple reads
                _stats.charge_tuples_read(len(answer.items))
                shipped += len(answer.items)
                if round_no == 1:
                    candidates += answer.candidates
                if answer.items:
                    last_key[i] = _key(answer.items[-1])
                    if first_key[i] is None:
                        first_key[i] = _key(answer.items[0])
                if answer.exhausted:
                    exhausted[i] = True
                    full_ranking[i] = answer.items
                shard_candidates[i] = answer.candidates
                tracer.annotate(items=len(answer.items),
                                exhausted=answer.exhausted)

    try:
        with tracer.span(f"topn.{strategy}", n=n, shards=k, fetch=fetch):
            # -- round 1: bounded fetch from every non-excluded shard -----
            run1 = [i for i in range(k) if not served[i] and not precluded[i]]
            with tracer.span("parallel.round", round=1, fetch=fetch,
                             bound_served=k - len(run1)):
                if run1:
                    outcomes = pool.run_tasks(
                        [lambda e=evaluators[i]: e.top(fetch) for i in run1],
                        token=token)
                    _absorb(outcomes, idxs=run1, round_no=1)

            # -- threshold: which shards could still matter? --------------
            need = [i for i in range(k)
                    if not exhausted[i] and not precluded[i]
                    and not _tail_prunable(i)]
            rounds = 1
            live_skipped = 0
            probed = 0
            if need and probe:
                rounds = 2

                def probe_shard(evaluator) -> ShardAnswer:
                    # merge into the pool as soon as the probe finishes
                    # (offer is locked and dedupes), so the threshold
                    # advances while later probes are still queued
                    answer = evaluator.top(n)
                    state.offer(answer.items)
                    return answer

                with tracer.span("parallel.round", round=2, probes=len(need)):
                    # a queued probe is re-checked against the *live*
                    # threshold just before it runs: earlier probes may
                    # have pushed tau past it — this is how a query whose
                    # top-N is already resolved stops its remaining tasks
                    probes = pool.run_tasks(
                        [lambda e=evaluators[i]: probe_shard(e) for i in need],
                        token=token,
                        skip_when=lambda j: _tail_prunable(need[j]),
                    )
                    live_skipped = sum(1 for o in probes if o.status == "skipped")
                    probed = sum(1 for o in probes if o.status == "done")
                    _absorb(probes, idxs=need, round_no=2)

            items = state.seal()
            # precluded shards are certifiably below a previous run's
            # final threshold for an n at least this large: same-epoch
            # data makes that proof carry over to this run
            certified = probe or all(
                exhausted[i] or precluded[i] or _tail_prunable(i)
                for i in range(k))
            bound_served = sum(served)
            bound_pruned = sum(precluded)
            if bounds is not None and certified:
                _record_bounds(bounds, n, items, evaluators, served, precluded,
                               first_key, exhausted, shard_candidates,
                               full_ranking, epoch=epoch)
            metrics.counter("parallel.rounds").inc(rounds)
            metrics.counter("parallel.probes").inc(probed)
            metrics.counter("parallel.probes_saved").inc(k - probed)
            if bound_served:
                metrics.counter("cache.bound_served").inc(bound_served)
            if bound_pruned:
                metrics.counter("cache.bound_pruned").inc(bound_pruned)
            tracer.annotate(rounds=rounds, probes=probed,
                            probes_saved=k - probed, certified=certified,
                            bound_served=bound_served, bound_pruned=bound_pruned)
            return TopNResult(
                items, n, strategy=strategy, safe=certified,
                stats={
                    "shards": k,
                    "rounds": rounds,
                    "round1_fetch": fetch,
                    "probes": probed,
                    "probes_saved": k - probed,
                    "live_skipped": live_skipped,
                    "full_gather_probes": k,
                    "items_shipped": shipped,
                    "candidates": candidates,
                    "bound_served": bound_served,
                    "bound_pruned": bound_pruned,
                },
                certified=certified,
            )
    finally:
        token.cancel()  # resolved (or failed): stop any straggler tasks
        if own_pool:
            pool.close()


def _record_bounds(bounds, n, items, evaluators, served, precluded, first_key,
                   exhausted, shard_candidates, full_ranking,
                   epoch: int = 0) -> None:
    """Feed a certified run's observations back into the bound cache."""
    from ..cache.bounds import ShardBoundInfo

    tau_key = _key(items[n - 1]) if len(items) == n else None
    infos = []
    for i, evaluator in enumerate(evaluators):
        if served[i] or precluded[i]:
            continue  # served: already recorded; precluded: never ran
        ranking = None
        if exhausted[i] and full_ranking[i] is not None \
                and len(full_ranking[i]) <= _MAX_CACHED_RANKING:
            ranking = tuple((item.obj_id, item.score)
                            for item in full_ranking[i])
        infos.append(ShardBoundInfo(
            shard_id=evaluator.shard_id,
            top_key=first_key[i],
            candidates=shard_candidates[i],
            exhausted=exhausted[i],
            ranking=ranking,
        ))
    bounds.record(n, tau_key, infos, epoch=epoch)


# -- public entry points ----------------------------------------------------


def parallel_topn(
    sharded: ShardedIndex,
    tids: list[int],
    model: ScoringModel,
    n: int,
    pool: ExecutorPool | None = None,
    round1_fetch: int | None = None,
    probe: bool = True,
    token: CancelToken | None = None,
    bounds=None,
    epoch: int = 0,
) -> TopNResult:
    """Sharded parallel top-N over an inverted index.

    Tie-aware-identical to serial :func:`~repro.topn.naive.naive_topn`
    on the same index: shards share the full index's global statistics,
    so per-document scores are bitwise equal, and the coordinator's
    unique sort keys reproduce the serial boundary rule.
    """
    metrics.set_gauge("parallel.shard_skew", sharded.skew())
    evaluators = [IndexShardEvaluator(shard, tids, model)
                  for shard in sharded.shards]
    result = coordinated_topn(evaluators, n, pool=pool,
                              round1_fetch=round1_fetch, probe=probe,
                              token=token, strategy="parallel", bounds=bounds,
                              epoch=epoch)
    result.stats["shard_skew"] = sharded.skew()
    return result


def parallel_topn_sources(
    sources: list,
    n: int,
    shards: int = 2,
    boundaries: list[int] | None = None,
    agg: AggregateFunction = SUM,
    pool: ExecutorPool | None = None,
    round1_fetch: int | None = None,
    probe: bool = True,
    token: CancelToken | None = None,
    bounds=None,
    epoch: int = 0,
) -> TopNResult:
    """Sharded parallel top-N over Fagin-style graded sources: the
    object id space is split into contiguous ranges, one exhaustive
    range evaluator per shard."""
    n_objects = max((source.n_objects for source in sources), default=0)
    if boundaries is None:
        if shards < 1:
            raise ParallelError(f"need a positive shard count, got {shards}")
        boundaries = [round(i * n_objects / shards) for i in range(shards + 1)]
    if boundaries[0] != 0 or boundaries[-1] != n_objects:
        raise ParallelError(
            f"boundaries must run from 0 to n_objects={n_objects}, got {boundaries}")
    evaluators = [
        SourceRangeEvaluator(i, sources, lo, hi, agg=agg)
        for i, (lo, hi) in enumerate(zip(boundaries, boundaries[1:]))
    ]
    return coordinated_topn(evaluators, n, pool=pool,
                            round1_fetch=round1_fetch, probe=probe,
                            token=token, strategy="parallel-sources",
                            bounds=bounds, epoch=epoch)
