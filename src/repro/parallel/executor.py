"""Executor pool: scheduling, admission control and cancellation.

Shard tasks are CPU work against shared read-only BATs, so the default
pool uses threads (numpy releases the GIL for the heavy kernels); a
``ProcessPoolExecutor`` is available opt-in for genuinely parallel
Python, and a ``serial`` pool runs tasks inline, which keeps the
coordinator's control flow identical across all three.

Two bookkeeping problems dominate the design:

**Admission control.**  A pool admits at most ``max_queries``
concurrent queries (:meth:`ExecutorPool.admit`) and at most
``max_pending`` queued shard tasks.  Exceeding either bound raises
:class:`~repro.errors.AdmissionRejectedError` *instead of* queueing —
under heavy traffic an explicit rejection the client can retry beats an
unbounded queue that melts latency for everyone (the ROADMAP's
"heavy traffic" north star).

**Cost attribution across threads.**  :class:`~repro.storage.stats.CostCounter`
stacks are thread-local, so a shard task run on a worker thread would
charge nobody.  Worker tasks therefore run under a fresh counter and
ship its snapshot back in the :class:`TaskOutcome`; the coordinator
*replays* the snapshot (:func:`replay_cost`) on the caller thread
inside the per-shard span, so both the query's ``CostCounter`` totals
and the tracer's span self-costs reconcile exactly as they do for
serial engines.  The serial pool charges the caller's counters
naturally; its outcomes say ``already_charged=True`` so nothing is
counted twice.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Callable

from ..errors import AdmissionRejectedError, ShardingError
from ..obs import metrics
from ..storage.stats import CostCounter, active_counters
from ..sync import acquires, declares_shared_state, make_lock


class CancelToken:
    """Cooperative cancellation flag shared by one query's shard tasks.

    Tasks observe the token *before* they start; a task already running
    finishes, but its outcome is discarded by the coordinator's sealed
    merge state, so cancellation never corrupts a completed result.

    A token may carry an absolute ``deadline`` (``time.monotonic``
    seconds): once the clock passes it, :meth:`cancelled` flips to True
    permanently.  Deadline expiry and explicit :meth:`cancel` are
    indistinguishable to observers — both mean "stop at the next safe
    point" — which is exactly what the serve layer's per-request
    deadline propagation needs.
    """

    def __init__(self, deadline: float | None = None) -> None:
        self._event = threading.Event()
        #: absolute ``time.monotonic`` deadline, or None for no deadline
        self.deadline = deadline

    @classmethod
    def with_timeout(cls, seconds: float) -> "CancelToken":
        """A token that cancels itself ``seconds`` from now."""
        return cls(deadline=time.monotonic() + seconds)

    def cancel(self) -> None:
        self._event.set()

    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        if self.deadline is not None and time.monotonic() >= self.deadline:
            self._event.set()
            return True
        return False

    def remaining(self) -> float | None:
        """Seconds left until the deadline (never negative), or None
        when the token carries no deadline."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())


@dataclass
class TaskOutcome:
    """What happened to one shard task.

    ``status`` is ``done`` / ``skipped`` (pruned just before running,
    e.g. by a live threshold) / ``cancelled`` (token set before start) /
    ``error``.  ``cost`` is the task's :class:`CostCounter` snapshot;
    ``already_charged`` tells the coordinator whether that cost already
    reached the caller's counters (serial pool) or still needs a
    :func:`replay_cost` (thread/process pools).
    """

    status: str
    payload: object = None
    cost: dict | None = None
    already_charged: bool = False
    error: BaseException | None = None


def counter_from_snapshot(snapshot: dict) -> CostCounter:
    """Rebuild a :class:`CostCounter` from a :meth:`snapshot` dict
    (unknown keys land in ``extra``)."""
    counter = CostCounter()
    known = {f.name for f in fields(CostCounter)} - {"extra"}
    for key, value in snapshot.items():
        if key in known:
            setattr(counter, key, value)
        else:
            counter.extra[key] = value
    return counter


def replay_cost(snapshot: dict | None) -> None:
    """Charge a worker task's cost snapshot to every counter active on
    the *calling* thread — the bridge between thread-local cost stacks
    and cross-thread execution."""
    if not snapshot:
        return
    replayed = counter_from_snapshot(snapshot)
    for counter in active_counters():
        counter.add(replayed)


def _run_counted(fn: Callable[[], object]) -> tuple[object, dict]:
    """Run ``fn`` under a fresh cost counter; return (payload, snapshot).
    Module-level so the process pool can pickle it."""
    with CostCounter.activate() as counter:
        payload = fn()
    return payload, counter.snapshot()


@declares_shared_state
class ExecutorPool:
    """A bounded pool executing shard tasks for admitted queries.

    ``kind`` is ``"thread"`` (default), ``"process"`` (opt-in; task
    callables and payloads must pickle, and live-skip predicates are
    only evaluated at submit time since workers share no memory), or
    ``"serial"`` (inline execution on the caller thread).
    """

    KINDS = ("serial", "thread", "process")

    SHARED_STATE = {
        "_in_flight": "_lock",
        "_pending": "_lock",
        "_executor": "<config>",
    }

    def __init__(
        self,
        workers: int = 4,
        kind: str = "thread",
        max_queries: int = 8,
        max_pending: int = 256,
    ) -> None:
        if kind not in self.KINDS:
            raise ShardingError(f"unknown executor kind {kind!r}; have {self.KINDS}")
        if workers < 1:
            raise ShardingError(f"need a positive worker count, got {workers}")
        if max_queries < 1 or max_pending < 1:
            raise ShardingError("admission bounds must be positive")
        self.kind = kind
        self.workers = workers
        self.max_queries = max_queries
        self.max_pending = max_pending
        self._lock = make_lock("parallel.executor")
        self._in_flight = 0
        self._pending = 0
        self._executor = None
        if kind == "thread":
            self._executor = ThreadPoolExecutor(max_workers=workers,
                                                thread_name_prefix="repro-shard")
        elif kind == "process":
            self._executor = ProcessPoolExecutor(max_workers=workers)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def executor(self):
        """The underlying ``concurrent.futures`` executor (None for the
        serial pool) — lets the serve layer schedule admitted work on
        the same bounded worker threads the coordinator uses."""
        return self._executor

    # -- admission control -------------------------------------------------

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @acquires("slot")
    @contextmanager
    def admit(self):
        """Admit one query for its whole lifetime, or reject it.

        Raises :class:`AdmissionRejectedError` when ``max_queries``
        queries are already in flight — explicitly, before any shard
        task is queued.
        """
        with self._lock:
            if self._in_flight >= self.max_queries:
                metrics.inc("parallel.rejected")
                raise AdmissionRejectedError(
                    f"executor pool at max_queries={self.max_queries} "
                    f"in-flight queries; retry later")
            self._in_flight += 1
        try:
            yield self
        finally:
            with self._lock:
                self._in_flight -= 1

    def _reserve(self, n: int) -> None:
        with self._lock:
            if self._pending + n > self.max_pending:
                metrics.inc("parallel.rejected")
                raise AdmissionRejectedError(
                    f"shard-task queue bound exceeded: {self._pending} pending "
                    f"+ {n} new > max_pending={self.max_pending}")
            self._pending += n
            metrics.set_gauge("parallel.queue_depth", self._pending)

    def _release(self, n: int = 1) -> None:
        with self._lock:
            self._pending -= n
            metrics.set_gauge("parallel.queue_depth", self._pending)

    # -- execution ---------------------------------------------------------

    def run_tasks(
        self,
        fns: list[Callable[[], object]],
        token: CancelToken | None = None,
        skip_when: Callable[[int], bool] | None = None,
    ) -> list[TaskOutcome]:
        """Run the tasks; return one :class:`TaskOutcome` per task, in
        input order.

        ``token`` cancels tasks that have not started yet.
        ``skip_when(i)`` is evaluated immediately before task ``i``
        runs (on the worker, for serial/thread pools): returning True
        skips the task — this is how the coordinator prunes queued
        round-2 probes once a live threshold proves them useless.
        """
        if not fns:
            return []
        self._reserve(len(fns))
        try:
            if self.kind == "serial":
                return self._run_serial(fns, token, skip_when)
            if self.kind == "thread":
                return self._run_threaded(fns, token, skip_when)
            return self._run_processes(fns, token, skip_when)
        finally:
            metrics.counter("parallel.tasks").inc(len(fns))

    def _run_serial(self, fns, token, skip_when) -> list[TaskOutcome]:
        outcomes = []
        for i, fn in enumerate(fns):
            try:
                outcome = self._guarded(i, fn, token, skip_when)
                if outcome is None:
                    # inline: caller's counters are on this thread's stack,
                    # so the task charges them directly
                    payload, snapshot = _run_counted(fn)
                    outcome = TaskOutcome("done", payload, snapshot,
                                          already_charged=True)
            except Exception as exc:  # noqa: BLE001 - uniform outcome surface
                outcome = TaskOutcome("error", error=exc)
            finally:
                self._release()
            outcomes.append(outcome)
        return outcomes

    def _guarded(self, i, fn, token, skip_when) -> TaskOutcome | None:
        if token is not None and token.cancelled():
            metrics.inc("parallel.cancelled")
            return TaskOutcome("cancelled")
        if skip_when is not None and skip_when(i):
            return TaskOutcome("skipped")
        return None

    def _worker(self, i, fn, token, skip_when) -> TaskOutcome:
        outcome = self._guarded(i, fn, token, skip_when)
        if outcome is not None:
            return outcome
        try:
            payload, snapshot = _run_counted(fn)
        except Exception as exc:  # noqa: BLE001 - uniform outcome surface
            return TaskOutcome("error", error=exc)
        return TaskOutcome("done", payload, snapshot)

    def _run_threaded(self, fns, token, skip_when) -> list[TaskOutcome]:
        futures = [
            self._executor.submit(self._worker, i, fn, token, skip_when)
            for i, fn in enumerate(fns)
        ]
        outcomes = []
        for future in futures:
            outcomes.append(future.result())
            self._release()
        return outcomes

    def _run_processes(self, fns, token, skip_when) -> list[TaskOutcome]:
        # no shared memory: token/skip decisions happen at submit time
        outcomes: list[TaskOutcome | None] = [None] * len(fns)
        futures = {}
        for i, fn in enumerate(fns):
            guarded = self._guarded(i, fn, token, skip_when)
            if guarded is not None:
                outcomes[i] = guarded
                self._release()
                continue
            futures[self._executor.submit(_run_counted, fn)] = i
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                i = futures[future]
                exc = future.exception()
                if exc is not None:
                    outcomes[i] = TaskOutcome("error", error=exc)
                else:
                    payload, snapshot = future.result()
                    outcomes[i] = TaskOutcome("done", payload, snapshot)
                self._release()
        return outcomes
