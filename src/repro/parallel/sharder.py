"""Document-range sharding of the inverted file.

The Step-1 programme fragments the inverted index *vertically in the
vocabulary* (interesting terms vs the rest); this module partitions it
*horizontally over documents* so that K workers can evaluate one query
concurrently.  Each shard is a fully self-contained
:class:`~repro.ir.invindex.InvertedIndex` over a contiguous document
range ``[doc_lo, doc_hi)``:

* its own BAT storage (posting triples restricted to the range, built
  through :meth:`InvertedIndex.from_postings`, so every shard charges
  its own scans on the simulated buffer manager);
* its own *local* df statistics (``local_df``: how many of the shard's
  documents contain a term) next to the shared global vocabulary
  statistics — ranking models keep using the **global** df/cf through
  the shared vocabulary and ``stats_from``, so a document's score is
  bitwise identical no matter which shard evaluates it;
* per-shard score upper bounds (:meth:`IndexShard.score_upper_bound`):
  the shard index recomputes ``max_tf`` / ``max_tf/dl`` over its own
  postings, so the bound administration of the distributed coordinator
  can reason about "the best score any document of shard *s* could
  still achieve" — tighter than the global bound on skewed shards.

Because shards partition *documents* (not terms or sources), a
document's complete score is computable inside exactly one shard; the
coordinator's job is a bounded top-N merge, not score assembly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShardingError
from ..ir.invindex import InvertedIndex, TermStats
from ..ir.ranking import ScoringModel


@dataclass
class IndexShard:
    """One document-range shard: a self-contained inverted index over
    ``[doc_lo, doc_hi)`` plus its local statistics."""

    shard_id: int
    doc_lo: int
    doc_hi: int
    index: InvertedIndex
    #: shard-local document frequency per term (postings in this shard)
    local_df: np.ndarray

    @property
    def n_docs(self) -> int:
        """Documents assigned to this shard (range width)."""
        return self.doc_hi - self.doc_lo

    @property
    def n_postings(self) -> int:
        return self.index.total_postings()

    def local_term_stats(self, tid: int) -> TermStats:
        """Term statistics with shard-local maxima and shard-local df
        (global df/cf stay available through ``index.term_stats``)."""
        base = self.index.term_stats(tid)
        return TermStats(
            term_id=tid,
            df=int(self.local_df[tid]),
            cf=base.cf,
            max_tf=base.max_tf,
            max_tf_over_dl=base.max_tf_over_dl,
        )

    def score_upper_bound(self, model: ScoringModel, tids: list[int]) -> float:
        """Upper bound on the aggregate score any document *of this
        shard* can reach for the query — per-term model bounds over the
        shard-local maxima (zero for terms absent from the shard)."""
        total = 0.0
        for tid in tids:
            if self.local_df[tid] == 0:
                continue
            total += model.upper_bound(self.index, self.index.term_stats(tid))
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"IndexShard({self.shard_id}: docs [{self.doc_lo}, {self.doc_hi}), "
                f"{self.n_postings} postings)")


@dataclass
class ShardedIndex:
    """A document-range sharding of one inverted index."""

    full: InvertedIndex
    shards: list[IndexShard]
    #: shard boundaries: ``k + 1`` ascending document ids
    boundaries: list[int]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, doc_id: int) -> IndexShard:
        """The shard holding ``doc_id``."""
        if not 0 <= doc_id < self.full.n_docs:
            raise ShardingError(f"doc id {doc_id} outside collection "
                                f"(n={self.full.n_docs})")
        position = int(np.searchsorted(self.boundaries, doc_id, side="right")) - 1
        return self.shards[min(position, self.n_shards - 1)]

    def postings_per_shard(self) -> list[int]:
        return [shard.n_postings for shard in self.shards]

    def skew(self) -> float:
        """Largest shard's postings share relative to the even split
        (1.0 = perfectly balanced, K = everything on one shard)."""
        per_shard = self.postings_per_shard()
        total = sum(per_shard)
        if total == 0:
            return 1.0
        return max(per_shard) / (total / len(per_shard))


def _resolve_boundaries(n_docs: int, shards: int | None,
                        boundaries: list[int] | None) -> list[int]:
    if boundaries is not None:
        bounds = [int(b) for b in boundaries]
        if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != n_docs:
            raise ShardingError(
                f"boundaries must run from 0 to n_docs={n_docs}, got {bounds}")
        if any(a > b for a, b in zip(bounds, bounds[1:])):
            raise ShardingError(f"boundaries must be ascending, got {bounds}")
        return bounds
    if shards is None or shards < 1:
        raise ShardingError(f"need a positive shard count, got {shards}")
    if n_docs == 0:
        return [0] * (shards + 1)
    return [round(i * n_docs / shards) for i in range(shards + 1)]


def _balanced_boundaries(index: InvertedIndex, shards: int) -> list[int]:
    """Boundaries equalizing *postings volume* rather than document
    count: split the cumulative postings-per-document curve evenly."""
    if shards < 1:
        raise ShardingError(f"need a positive shard count, got {shards}")
    n_docs = index.n_docs
    if n_docs == 0:
        return [0] * (shards + 1)
    per_doc = np.bincount(index.postings_docs.tail, minlength=n_docs)
    cumulative = np.cumsum(per_doc)
    total = int(cumulative[-1])
    bounds = [0]
    for i in range(1, shards):
        target = i * total / shards
        bounds.append(int(np.searchsorted(cumulative, target, side="left")) + 1)
    bounds.append(n_docs)
    # enforce monotonicity (degenerate distributions can collapse cuts)
    for i in range(1, len(bounds)):
        bounds[i] = min(max(bounds[i], bounds[i - 1]), n_docs)
    return bounds


def shard_index(
    index,
    shards: int | None = None,
    boundaries: list[int] | None = None,
    balance: str = "docs",
) -> ShardedIndex:
    """Partition an inverted index (or a
    :class:`~repro.fragmentation.fragmenter.FragmentedIndex`, whose
    full index is used) into contiguous document-range shards.

    ``balance="docs"`` (default) splits the document id space evenly;
    ``balance="postings"`` equalizes postings volume instead, which
    matters for collections whose long documents cluster.  Explicit
    ``boundaries`` (``k + 1`` ascending doc ids from 0 to ``n_docs``)
    override both — that is how tests build deliberately skewed or
    empty shards.
    """
    full = getattr(index, "full", index)
    if not isinstance(full, InvertedIndex):
        raise ShardingError(f"cannot shard {type(index).__name__}")
    if balance not in ("docs", "postings"):
        raise ShardingError(f"unknown balance mode {balance!r}; have docs/postings")
    if boundaries is None and balance == "postings":
        bounds = _balanced_boundaries(full, shards or 1)
    else:
        bounds = _resolve_boundaries(full.n_docs, shards, boundaries)

    terms = full.postings_terms.tail
    docs = full.postings_docs.tail
    tfs = full.postings_tf.tail
    out: list[IndexShard] = []
    for shard_id, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        mask = (docs >= lo) & (docs < hi)
        shard_idx = InvertedIndex.from_postings(
            terms[mask],
            docs[mask],
            tfs[mask],
            full.n_terms,
            full.doc_lengths,
            full.vocabulary,
            stats_from=full,
            name=f"shard{shard_id}",
        )
        local_df = np.diff(shard_idx.offsets).astype(np.int64)
        out.append(IndexShard(shard_id, lo, hi, shard_idx, local_df))
    return ShardedIndex(full, out, bounds)
