"""Retrieval-quality metrics: precision/recall/AP against qrels and
ranking-agreement metrics (overlap, Kendall tau) against exact rankings."""

from .metrics import (
    average_precision,
    kendall_tau,
    mean_over_queries,
    overlap_at,
    precision_at,
    r_precision,
    recall_at,
)

__all__ = [
    "average_precision",
    "kendall_tau",
    "mean_over_queries",
    "overlap_at",
    "precision_at",
    "r_precision",
    "recall_at",
]
