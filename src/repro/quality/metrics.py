"""Retrieval-quality metrics.

The paper evaluates unsafe optimizations by their effect on "answer
quality (e.g. precision and/or recall)".  This module provides the
standard ranked-retrieval metrics against qrels, plus *ranking
agreement* metrics (overlap, Kendall's tau) used to compare an
optimized ranking against the exact (naive) ranking independent of
relevance judgments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import QualityError


def _check_ranking(ranking: Sequence[int]) -> list[int]:
    ranking = list(ranking)
    if len(set(ranking)) != len(ranking):
        raise QualityError("ranking contains duplicate document ids")
    return ranking


def precision_at(ranking: Sequence[int], relevant: Iterable[int], n: int) -> float:
    """Fraction of the top-``n`` results that are relevant."""
    if n <= 0:
        raise QualityError(f"n must be positive, got {n}")
    ranking = _check_ranking(ranking)[:n]
    relevant = set(relevant)
    if not ranking:
        return 0.0
    hits = sum(1 for doc in ranking if doc in relevant)
    return hits / n


def recall_at(ranking: Sequence[int], relevant: Iterable[int], n: int) -> float:
    """Fraction of the relevant documents found in the top ``n``."""
    if n <= 0:
        raise QualityError(f"n must be positive, got {n}")
    relevant = set(relevant)
    if not relevant:
        return 0.0
    ranking = _check_ranking(ranking)[:n]
    hits = sum(1 for doc in ranking if doc in relevant)
    return hits / len(relevant)


def average_precision(ranking: Sequence[int], relevant: Iterable[int],
                      cutoff: int | None = None) -> float:
    """Non-interpolated average precision (AP) at an optional cutoff.

    AP averages precision at each relevant rank over the total number
    of relevant documents — the TREC headline metric of the paper's
    era (mean over queries = MAP).
    """
    relevant = set(relevant)
    if not relevant:
        return 0.0
    ranking = _check_ranking(ranking)
    if cutoff is not None:
        ranking = ranking[:cutoff]
    hits = 0
    precision_sum = 0.0
    for rank, doc in enumerate(ranking, start=1):
        if doc in relevant:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / len(relevant)


def r_precision(ranking: Sequence[int], relevant: Iterable[int]) -> float:
    """Precision at rank R, where R is the number of relevant docs."""
    relevant = set(relevant)
    if not relevant:
        return 0.0
    return precision_at(ranking, relevant, len(relevant))


def overlap_at(ranking: Sequence[int], reference: Sequence[int], n: int) -> float:
    """Set overlap of two top-``n`` prefixes (1.0 = identical sets).

    The standard way to quantify how much an *unsafe* technique's top-N
    deviates from the exact top-N."""
    if n <= 0:
        raise QualityError(f"n must be positive, got {n}")
    top = set(_check_ranking(ranking)[:n])
    ref = set(_check_ranking(reference)[:n])
    if not ref:
        return 1.0 if not top else 0.0
    return len(top & ref) / max(len(ref), 1)


def kendall_tau(ranking: Sequence[int], reference: Sequence[int]) -> float:
    """Kendall's tau between two rankings of the same item set.

    +1 = identical order, -1 = reversed.  Items must coincide."""
    ranking = _check_ranking(ranking)
    reference = _check_ranking(reference)
    if set(ranking) != set(reference):
        raise QualityError("kendall_tau requires rankings over the same items")
    n = len(ranking)
    if n < 2:
        return 1.0
    position = {doc: i for i, doc in enumerate(reference)}
    mapped = [position[doc] for doc in ranking]
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if mapped[i] < mapped[j]:
                concordant += 1
            else:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


def mean_over_queries(per_query_values: Iterable[float]) -> float:
    """Mean of a per-query metric (0.0 for an empty iterable)."""
    values = list(per_query_values)
    if not values:
        return 0.0
    return sum(values) / len(values)
