"""repro.serve — the asynchronous query service layer.

Puts a network front on :class:`~repro.core.MMDatabase`: an asyncio
server speaking a length-prefixed JSON frame protocol (plus a minimal
HTTP/NDJSON shim on the same port), with

* **streaming anytime answers** — every top-N query streams chunks,
  each carrying the current certified top-k prefix, an epoch-stamped
  :class:`~repro.intervals.ThresholdBound` on all unseen objects, and
  a resume token; the final chunk is bit-identical to the direct
  library call (:mod:`repro.serve.session`);
* **tenant-aware admission** — a per-tenant token bucket and
  concurrency cap in front of the pool-wide
  :meth:`~repro.parallel.executor.ExecutorPool.admit` bound
  (:mod:`repro.serve.tenants`);
* **deadline propagation** — request deadlines become
  :class:`~repro.parallel.executor.CancelToken` deadlines, checked
  between streamed steps;
* **resumable disconnects** — a dropped connection leaves the stream
  at an exact chunk boundary; the token re-attaches, and cross-epoch
  resumes are refused with the MOA1002 diagnostic
  (:mod:`repro.analysis.serve`).

``repro serve`` runs a server; ``repro bench-serve`` is the closed-
loop load generator behind experiment E19.
"""

from .bench import ServeBenchReport, TenantRow, bench_serve, render_report
from .client import ServeClient, StreamResult, collect
from .protocol import (
    MAX_FRAME_BYTES,
    decode_body,
    encode_frame,
    error_frame,
    read_frame,
    read_frame_sync,
    write_frame_sync,
)
from .server import QueryServer, ServerConfig, ServerHandle, ServerThread
from .session import (
    ALGORITHMS,
    AnytimeRunner,
    Chunk,
    ServeSession,
    SessionRegistry,
    make_token,
    parse_token,
)
from .tenants import QuotaManager, TenantConfig, TenantState, TokenBucket

__all__ = [
    "ALGORITHMS",
    "AnytimeRunner",
    "Chunk",
    "MAX_FRAME_BYTES",
    "QueryServer",
    "QuotaManager",
    "ServeBenchReport",
    "ServeClient",
    "ServeSession",
    "ServerConfig",
    "ServerHandle",
    "ServerThread",
    "SessionRegistry",
    "StreamResult",
    "TenantConfig",
    "TenantRow",
    "TenantState",
    "TokenBucket",
    "bench_serve",
    "collect",
    "decode_body",
    "encode_frame",
    "error_frame",
    "make_token",
    "parse_token",
    "read_frame",
    "read_frame_sync",
    "render_report",
    "write_frame_sync",
]
