"""Closed-loop load generator for the query service (experiment E19).

Two phases over one server:

* **solo** — a steady tenant (generous quota) drives closed-loop
  clients alone; its p50/p99 are the baseline.
* **mixed** — a noisy tenant (tiny token bucket, concurrency 1) hammers
  the same server alongside the steady tenant.  The bucket rejects
  most of the noisy load at the first admission gate — cheaply, before
  any engine work — so the steady tenant's latency should survive.

The **isolation ratio** is the steady tenant's mixed-phase p99 over
its solo-phase p99 (with a small noise floor on the denominator:
sub-millisecond baselines are below timer resolution).  The report is
``ok`` when every streamed final matched the direct library call, the
noisy tenant actually got throttled, at least one pre-final (anytime)
chunk was streamed, and the ratio stays within the 2x isolation bar.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import QuotaExceededError, ReproError
from .client import ServeClient, collect
from .server import ServerConfig, ServerThread
from .tenants import TenantConfig, percentile

#: denominator floor (ms) for the isolation ratio — p99s below timer
#: resolution would make the ratio pure noise
_P99_FLOOR_MS = 2.0


@dataclass
class TenantRow:
    """One tenant's aggregate over one phase."""

    tenant: str
    phase: str
    requests: int = 0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    mismatches: int = 0
    chunks: int = 0
    prefinal_chunks: int = 0
    seconds: float = 0.0
    latencies_ms: list = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.completed / self.seconds if self.seconds > 0 else 0.0

    @property
    def p50_ms(self) -> float | None:
        return percentile(sorted(self.latencies_ms), 0.50)

    @property
    def p99_ms(self) -> float | None:
        return percentile(sorted(self.latencies_ms), 0.99)

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "phase": self.phase,
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "mismatches": self.mismatches,
            "chunks": self.chunks,
            "prefinal_chunks": self.prefinal_chunks,
            "qps": round(self.qps, 2),
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


@dataclass
class ServeBenchReport:
    duration: float
    n: int
    algorithm: str
    rows: list = field(default_factory=list)

    def row(self, phase: str, tenant: str) -> TenantRow | None:
        for row in self.rows:
            if row.phase == phase and row.tenant == tenant:
                return row
        return None

    @property
    def isolation_ratio(self) -> float | None:
        solo = self.row("solo", "steady")
        mixed = self.row("mixed", "steady")
        if solo is None or mixed is None:
            return None
        if solo.p99_ms is None or mixed.p99_ms is None:
            return None
        return mixed.p99_ms / max(solo.p99_ms, _P99_FLOOR_MS)

    @property
    def ok(self) -> bool:
        if any(row.mismatches or row.errors for row in self.rows):
            return False
        steady_solo = self.row("solo", "steady")
        noisy = self.row("mixed", "noisy")
        if steady_solo is None or steady_solo.completed == 0:
            return False
        if steady_solo.prefinal_chunks < 1:
            return False  # never actually streamed an anytime prefix
        if noisy is None or noisy.rejected < 1:
            return False  # quota never engaged
        ratio = self.isolation_ratio
        return ratio is not None and ratio <= 2.0

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration,
            "n": self.n,
            "algorithm": self.algorithm,
            "isolation_ratio": self.isolation_ratio,
            "ok": self.ok,
            "tenants": [row.to_dict() for row in self.rows],
        }


def _worker(host: str, port: int, tenant: str, queries: list, expected: list,
            n: int, algorithm: str, chunk_depth: int, stop_at: float,
            row: TenantRow) -> None:
    """One closed-loop client: request, drain, repeat until the clock.

    Accumulates into its own :class:`TenantRow`; rows are merged after
    join, so no locking here."""
    client = ServeClient(host, port)
    index = 0
    try:
        while time.monotonic() < stop_at:
            fq = queries[index % len(queries)]
            want = expected[index % len(expected)]
            index += 1
            row.requests += 1
            started = time.perf_counter()
            try:
                result = collect(client.query(
                    tenant=tenant, kind="feature", n=n, algorithm=algorithm,
                    queries=fq, chunk_depth=chunk_depth))
            except QuotaExceededError as exc:
                # honor the server's retry_after hint (capped): a
                # throttled closed-loop client backs off instead of
                # burning the event loop with doomed requests
                row.rejected += 1
                delay = exc.retry_after if exc.retry_after else 0.02
                time.sleep(min(delay, 0.1))
                continue
            except (ReproError, OSError):
                row.errors += 1
                client.close()
                try:
                    client = ServeClient(host, port)
                except OSError:
                    return
                continue
            row.latencies_ms.append((time.perf_counter() - started) * 1000.0)
            row.completed += 1
            row.chunks += len(result.chunks)
            row.prefinal_chunks += sum(
                1 for chunk in result.chunks if not chunk["final"])
            if not result.complete or result.items != want:
                row.mismatches += 1
    finally:
        client.close()


def _run_phase(handle, phase: str, tenants: dict, queries, expected,
               n: int, algorithm: str, chunk_depth: int,
               duration: float) -> list:
    """``tenants`` maps tenant name -> worker count."""
    rows = []
    threads = []
    stop_at = time.monotonic() + duration
    for tenant, workers in tenants.items():
        for _ in range(workers):
            row = TenantRow(tenant=tenant, phase=phase)
            rows.append(row)
            threads.append(threading.Thread(
                target=_worker,
                args=(handle.host, handle.port, tenant, queries, expected,
                      n, algorithm, chunk_depth, stop_at, row),
                name=f"bench-{phase}-{tenant}", daemon=True))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    merged: dict[str, TenantRow] = {}
    for row in rows:
        into = merged.setdefault(row.tenant, TenantRow(row.tenant, phase))
        into.requests += row.requests
        into.completed += row.completed
        into.rejected += row.rejected
        into.errors += row.errors
        into.mismatches += row.mismatches
        into.chunks += row.chunks
        into.prefinal_chunks += row.prefinal_chunks
        into.latencies_ms.extend(row.latencies_ms)
        into.seconds = duration
    return list(merged.values())


def bench_serve(
    scale: float = 0.05,
    seed: int = 7,
    duration: float = 2.0,
    n: int = 10,
    algorithm: str = "ta",
    steady_clients: int = 3,
    noisy_clients: int = 3,
    dims: int = 8,
    query_pool: int = 8,
    chunk_depth: int = 8,
) -> ServeBenchReport:
    """Run the two-phase load test; see the module docstring."""
    from ..core import MMDatabase
    from ..mm.features import FeatureSpace
    from ..workloads import SyntheticCollection, trec

    collection = SyntheticCollection.generate(trec.ft_like(scale=scale, seed=seed))
    rng = np.random.default_rng(seed + 2)
    db = MMDatabase.from_collection(collection)
    for name in ("bench_a", "bench_b"):
        db.add_feature_space(FeatureSpace(name, rng.random((collection.n_docs, dims))))

    queries = [{"bench_a": rng.random(dims), "bench_b": rng.random(dims)}
               for _ in range(query_pool)]
    # ground truth straight from the library call the server wraps
    expected = []
    for fq in queries:
        result = db.feature_search(fq, n=n, algorithm=algorithm).result
        expected.append([[int(item.obj_id), float(item.score)]
                         for item in result.items])

    config = ServerConfig(
        tenants=(
            TenantConfig("steady", rate=20_000.0, burst=5_000.0,
                         max_concurrent=max(steady_clients, 1)),
            TenantConfig("noisy", rate=5.0, burst=2.0, max_concurrent=1),
        ),
        workers=4,
        max_concurrent=2 * (steady_clients + noisy_clients) + 2,
        chunk_depth=chunk_depth,
    )
    report = ServeBenchReport(duration=duration, n=n, algorithm=algorithm)
    server = ServerThread(db, config)
    handle = server.start()
    try:
        report.rows.extend(_run_phase(
            handle, "solo", {"steady": steady_clients}, queries, expected,
            n, algorithm, chunk_depth, duration))
        report.rows.extend(_run_phase(
            handle, "mixed", {"steady": steady_clients, "noisy": noisy_clients},
            queries, expected, n, algorithm, chunk_depth, duration))
    finally:
        server.stop()
        db.close()
    return report


def render_report(report: ServeBenchReport) -> str:
    lines = [f"{'phase':<7} {'tenant':<8} {'req':>6} {'done':>6} {'rej':>6} "
             f"{'qps':>8} {'p50 ms':>8} {'p99 ms':>8} {'chunks':>7} "
             f"{'stream':>6} {'bad':>4}"]
    for row in report.rows:
        p50 = "-" if row.p50_ms is None else f"{row.p50_ms:.1f}"
        p99 = "-" if row.p99_ms is None else f"{row.p99_ms:.1f}"
        lines.append(
            f"{row.phase:<7} {row.tenant:<8} {row.requests:>6} "
            f"{row.completed:>6} {row.rejected:>6} {row.qps:>8.1f} "
            f"{p50:>8} {p99:>8} {row.chunks:>7} {row.prefinal_chunks:>6} "
            f"{row.mismatches + row.errors:>4}")
    ratio = report.isolation_ratio
    ratio_text = "-" if ratio is None else f"x{ratio:.2f}"
    verdict = ("ok" if report.ok else "FAIL")
    lines.append(f"isolation ratio (steady p99 mixed/solo): {ratio_text} "
                 f"[bar: x2.00] -> {verdict}")
    return "\n".join(lines)
