"""Blocking client for the query service.

A thin synchronous counterpart to the asyncio server — enough for
tests, the load generator and interactive use without pulling an async
runtime into the caller.  One :class:`ServeClient` owns one socket;
:meth:`query` / :meth:`resume` return generators of response frames
(``chunk`` then ``done``, or a single ``error``), and
:func:`collect` drains a stream into a :class:`StreamResult`.

The client deliberately keeps **no hidden state**: resuming after a
disconnect is explicit — take ``StreamResult.resume_token`` (or the
last chunk's token before the connection died) and hand it to
:meth:`resume` on a *new* client.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field

from ..errors import ProtocolError, QuotaExceededError, ResumeTokenError, ServeError
from .protocol import read_frame_sync, write_frame_sync


@dataclass
class StreamResult:
    """A fully drained query stream."""

    chunks: list = field(default_factory=list)
    done: dict | None = None

    @property
    def final(self) -> dict | None:
        """The last (certified) chunk, if the stream reached one."""
        for chunk in reversed(self.chunks):
            if chunk.get("final"):
                return chunk
        return None

    @property
    def items(self) -> list:
        """``[obj_id, score]`` pairs of the best answer received."""
        if not self.chunks:
            return []
        return self.chunks[-1]["items"]

    @property
    def resume_token(self) -> str | None:
        if self.done is not None and "resume_token" in self.done:
            return self.done["resume_token"]
        if self.chunks:
            return self.chunks[-1].get("resume_token")
        return None

    @property
    def complete(self) -> bool:
        return self.done is not None and self.done.get("status") == "complete"


class ServeClient:
    """One connection to a :class:`~repro.serve.server.QueryServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- requests -----------------------------------------------------------

    def ping(self) -> dict:
        write_frame_sync(self._sock, {"op": "ping"})
        return self._expect_one("pong")

    def stats(self) -> dict:
        write_frame_sync(self._sock, {"op": "stats"})
        return self._expect_one("stats")

    def query(self, *, tenant: str = "default", kind: str = "feature",
              n: int = 10, algorithm: str = "ta", agg: str = "sum",
              queries: dict | None = None, measure: str | None = None,
              query=None, strategy: str | None = None,
              chunk_depth: int | None = None,
              deadline_ms: float | None = None):
        """Send one query; yields response frames as they arrive."""
        request = {"op": "query", "tenant": tenant, "kind": kind, "n": n,
                   "algorithm": algorithm, "agg": agg}
        if queries is not None:
            request["queries"] = {name: [float(x) for x in vec]
                                  for name, vec in queries.items()}
        if measure is not None:
            request["measure"] = measure
        if query is not None:
            request["query"] = query
        if strategy is not None:
            request["strategy"] = strategy
        if chunk_depth is not None:
            request["chunk_depth"] = chunk_depth
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        write_frame_sync(self._sock, request)
        return self._stream()

    def resume(self, token: str, *, deadline_ms: float | None = None):
        """Continue a disconnected stream from its resume token."""
        request: dict = {"op": "resume", "token": token}
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        write_frame_sync(self._sock, request)
        return self._stream()

    # -- response handling --------------------------------------------------

    def _stream(self):
        while True:
            frame = read_frame_sync(self._sock)
            if frame is None:
                raise ProtocolError("connection closed mid-stream")
            yield frame
            if frame.get("type") in ("done", "error"):
                return

    def _expect_one(self, expected: str) -> dict:
        frame = read_frame_sync(self._sock)
        if frame is None:
            raise ProtocolError("connection closed before response")
        if frame.get("type") == "error":
            raise_error(frame)
        if frame.get("type") != expected:
            raise ProtocolError(
                f"expected {expected!r} frame, got {frame.get('type')!r}")
        return frame


def collect(frames) -> StreamResult:
    """Drain a frame stream; raises the typed error on ``error``."""
    result = StreamResult()
    for frame in frames:
        kind = frame.get("type")
        if kind == "chunk":
            result.chunks.append(frame)
        elif kind == "done":
            result.done = frame
        elif kind == "error":
            raise_error(frame)
        else:
            raise ProtocolError(f"unexpected frame type {kind!r}")
    return result


def raise_error(frame: dict):
    """Map an ``error`` frame back to the typed exception."""
    code = frame.get("code", "internal")
    message = frame.get("message", "server error")
    if code in ("quota", "admission"):
        retry_after = frame.get("retry_after_ms")
        raise QuotaExceededError(
            message,
            retry_after=None if retry_after is None else retry_after / 1000.0)
    if code.startswith("resume_"):
        raise ResumeTokenError(message, code=code)
    raise ServeError(f"{code}: {message}")
