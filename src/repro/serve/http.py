"""Minimal HTTP/1.1 shim over the query service.

For environments where a length-prefixed binary protocol is awkward
(curl, load balancer health checks), the server can also speak just
enough HTTP:

* ``GET /healthz`` — liveness, ``200 ok``;
* ``GET /stats`` — the stats snapshot as a JSON document;
* ``POST /query`` — body is the same JSON object as a ``query`` frame
  (without ``op``); the response streams **NDJSON**, one response
  frame per line (``chunk``* then ``done``, or one ``error``), with
  ``Connection: close`` delimiting the stream.

This is deliberately not a web framework: no routing tables, no
keep-alive, no chunked encoding — the shim exists so the anytime
streaming semantics can be watched with ``curl -N``.  The native frame
protocol remains the primary interface (resume in particular is only
exposed there and via ``token`` in a ``POST /query`` body).
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ProtocolError

#: request line + headers above this are rejected outright
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1 * 1024 * 1024


async def try_serve_http(server, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         first_bytes: bytes) -> bool:
    """Serve one HTTP exchange if ``first_bytes`` look like HTTP.

    The native protocol's length prefix for any sane frame starts with
    a NUL byte (frames are far below 16 MiB), while an HTTP request
    line starts with an ASCII method — so one 4-byte peek
    disambiguates the two protocols on a shared port."""
    method = first_bytes.decode("latin-1", errors="replace")
    if method not in ("GET ", "POST", "HEAD"):
        return False
    await _serve_one(server, reader, writer, first_bytes)
    return True


async def _serve_one(server, reader, writer, prefix: bytes) -> None:
    try:
        head = prefix + await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        writer.close()
        return
    if len(head) > MAX_HEADER_BYTES:
        await _respond(writer, 431, {"error": "headers too large"})
        return
    request_line, _, header_block = head.partition(b"\r\n")
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        await _respond(writer, 400, {"error": "malformed request line"})
        return
    method, path, _version = parts
    headers = _parse_headers(header_block)

    if method in ("GET", "HEAD") and path == "/healthz":
        await _respond(writer, 200, {"status": "ok"}, body=method == "GET")
        return
    if method in ("GET", "HEAD") and path == "/stats":
        payload = {"server": server.snapshot(),
                   "tenants": server.quotas.snapshot(),
                   "sessions": server.sessions.snapshot()}
        await _respond(writer, 200, payload, body=method == "GET")
        return
    if method == "POST" and path == "/query":
        await _serve_query(server, reader, writer, headers)
        return
    await _respond(writer, 404, {"error": f"no route {method} {path}"})


async def _serve_query(server, reader, writer, headers: dict) -> None:
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        await _respond(writer, 400, {"error": "bad Content-Length"})
        return
    if not 0 < length <= MAX_BODY_BYTES:
        await _respond(writer, 400, {
            "error": f"Content-Length must be in (0, {MAX_BODY_BYTES}]"})
        return
    try:
        body = await reader.readexactly(length)
        request = json.loads(body.decode("utf-8"))
        if not isinstance(request, dict):
            raise ProtocolError("body must be a JSON object")
    except (asyncio.IncompleteReadError, UnicodeDecodeError,
            json.JSONDecodeError, ProtocolError) as exc:
        await _respond(writer, 400, {"error": f"bad body: {exc}"})
        return

    writer.write(b"HTTP/1.1 200 OK\r\n"
                 b"Content-Type: application/x-ndjson\r\n"
                 b"Cache-Control: no-store\r\n"
                 b"Connection: close\r\n\r\n")
    ndjson = _NdjsonWriter(writer)
    token = request.get("token")
    if token:
        frame = {"op": "resume", "token": token}
        if "deadline_ms" in request:
            frame["deadline_ms"] = request["deadline_ms"]
    else:
        frame = dict(request, op="query")
    try:
        await server._respond(frame, ndjson)
    except (ConnectionResetError, BrokenPipeError):
        pass
    writer.close()


class _NdjsonWriter:
    """Adapter with the StreamWriter surface the server's send path
    uses (``write`` + ``drain``), emitting one JSON line per frame."""

    def __init__(self, writer) -> None:
        self._writer = writer

    def write(self, frame_bytes: bytes) -> None:
        # frame_bytes is a length-prefixed frame; re-emit the JSON body
        # as one NDJSON line
        self._writer.write(frame_bytes[4:] + b"\n")

    async def drain(self) -> None:
        await self._writer.drain()

    def close(self) -> None:
        self._writer.close()


def _parse_headers(block: bytes) -> dict:
    headers = {}
    for line in block.split(b"\r\n"):
        name, sep, value = line.partition(b":")
        if sep:
            headers[name.decode("latin-1").strip().lower()] = (
                value.decode("latin-1").strip())
    return headers


async def _respond(writer, status: int, payload: dict, body: bool = True) -> None:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               431: "Request Header Fields Too Large"}
    doc = json.dumps(payload).encode("utf-8")
    head = (f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(doc)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")
    writer.write(head + (doc if body else b""))
    await writer.drain()
    writer.close()
