"""Wire protocol of the query service: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  The same frame layout is
used in both directions; requests carry an ``op`` field, responses a
``type`` field.  JSON keeps the protocol inspectable and
dependency-free; the length prefix keeps it stream-safe (no sniffing
for document boundaries) and lets the server reject oversized frames
before parsing them.

Requests
--------
``{"op": "ping"}``
    liveness probe; answered with a ``pong`` frame.
``{"op": "stats"}``
    server/tenant statistics snapshot.
``{"op": "query", "tenant": ..., "kind": "feature"|"text", ...}``
    run one top-N query; the response is a stream of ``chunk`` frames
    (anytime answers) terminated by a ``done`` frame.
``{"op": "resume", "tenant": ..., "token": ...}``
    continue a disconnected query stream from its resume token.

Responses
---------
``chunk``
    one anytime answer: ``seq``, cumulative ``items`` (``[id, score]``
    pairs in canonical order), sorted-access ``depth``, ``final`` /
    ``certified`` flags, the epoch-stamped certified score ``bound``
    (serialized :class:`~repro.intervals.ThresholdBound`, an upper
    bound on any unseen object), and the ``resume_token``.
``done``
    end of a stream: ``status`` is ``complete`` or ``deadline``; a
    deadline stop repeats the ``resume_token`` so the client can
    continue later.
``error``
    explicit failure: stable ``code``, human ``message``, ``retryable``
    flag, optional ``retry_after_ms`` (quota rejections) and ``moa``
    (diagnostic code, e.g. MOA1002 for a resume-epoch mismatch).
``pong`` / ``stats``
    answers to the matching requests.
"""

from __future__ import annotations

import json
import struct

from ..errors import ProtocolError

#: frames above this parse-free bound are rejected outright — a length
#: prefix must never be able to make the server allocate unbounded memory
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LEN = struct.Struct(">I")


def encode_frame(payload: dict) -> bytes:
    """Serialize one frame: 4-byte big-endian length + UTF-8 JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES={MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse a frame body; malformed JSON or a non-object is a
    :class:`ProtocolError` (the connection handler answers it with an
    ``error`` frame instead of dying)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


async def read_frame(reader, header: bytes | None = None) -> dict | None:
    """Read one frame from an ``asyncio.StreamReader``; None on clean
    EOF at a frame boundary.  ``header`` supplies an already-read
    4-byte length prefix (the server peeks it to tell native frames
    from HTTP requests on a shared port)."""
    import asyncio

    if header is None:
        try:
            header = await reader.readexactly(_LEN.size)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES={MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    return decode_body(body)


def read_frame_sync(sock) -> dict | None:
    """Blocking-socket counterpart of :func:`read_frame` (client side)."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES={MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    return decode_body(body)


def write_frame_sync(sock, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


def _recv_exact(sock, n: int) -> bytes | None:
    chunks = []
    remaining = n
    while remaining:
        piece = sock.recv(remaining)
        if not piece:
            return None
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def error_frame(code: str, message: str, *, retryable: bool = False,
                retry_after_ms: float | None = None,
                moa: str | None = None) -> dict:
    frame = {"type": "error", "code": code, "message": message,
             "retryable": retryable}
    if retry_after_ms is not None:
        frame["retry_after_ms"] = round(float(retry_after_ms), 3)
    if moa is not None:
        frame["moa"] = moa
    return frame
