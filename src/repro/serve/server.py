"""The asyncio query server: tenant-aware streaming anytime top-N.

One :class:`QueryServer` wraps one :class:`~repro.core.MMDatabase`.
Connections are handled on an asyncio event loop; engine work runs on
the server's :class:`~repro.parallel.executor.ExecutorPool` threads via
``run_in_executor``.  Streaming is **lock-step**: the handler awaits
one engine step, writes one ``chunk`` frame, drains the socket, and
only then runs the next step — a slow client therefore backpressures
its own query instead of growing an unbounded buffer, and a disconnect
leaves the runner at an exact chunk boundary for resume.

Admission is two gates in order (see :mod:`repro.serve.tenants`): the
tenant's token bucket / concurrency cap, then the pool-wide
:meth:`~repro.parallel.executor.ExecutorPool.admit` bound.  Both map
to retryable ``error`` frames.  Deadlines propagate as a
:class:`~repro.parallel.executor.CancelToken` with an absolute
deadline, checked between steps; a deadline stop answers ``done`` with
``status="deadline"`` and the resume token, so the client keeps the
certified prefix and can continue later.

The MOA10xx rules in :mod:`repro.analysis.serve` check this module's
discipline statically: every ``run_in_executor`` call site must sit in
a function that references the admission it runs under (MOA1003) and
its cancel token (MOA1004).
"""

from __future__ import annotations

import asyncio
import math
import threading
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    AdmissionRejectedError,
    ProtocolError,
    QuotaExceededError,
    ReproError,
    ResumeTokenError,
)
from ..obs import metrics
from ..parallel.executor import CancelToken, ExecutorPool
from ..sync import declares_shared_state, make_lock
from ..topn.aggregates import BUILTIN_AGGREGATES, SUM
from .protocol import MAX_FRAME_BYTES, encode_frame, error_frame, read_frame
from .session import ALGORITHMS, AnytimeRunner, SessionRegistry
from .tenants import QuotaManager, TenantConfig

#: top-N sizes above this are a client error, not a workload
MAX_RESULT_SIZE = 10_000


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of one query server."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``QueryServer.port``)
    port: int = 0
    tenants: tuple[TenantConfig, ...] = ()
    default_quota: TenantConfig | None = None
    allow_unknown: bool = True
    max_sessions: int = 256
    #: sorted-access depth of the first chunk (doubles per chunk)
    chunk_depth: int = 32
    workers: int = 4
    #: pool-wide concurrent query bound (the second admission gate)
    max_concurrent: int = 8
    measure: str = "l2"


@declares_shared_state
class QueryServer:
    """Serve anytime top-N queries over a database.

    The asyncio machinery (``_server``, per-connection tasks) is
    confined to the loop thread; cross-thread state is the pool, the
    quota manager and the session registry, each locked internally.
    """

    SHARED_STATE = {
        "_server": "<thread-confined>",
        "port": "<thread-confined>",
        "db": "<config>",
        "pool": "<config>",
        "quotas": "<config>",
        "sessions": "<config>",
        "requests": "_lock",
        "errors": "_lock",
    }

    def __init__(self, db, config: ServerConfig | None = None,
                 pool: ExecutorPool | None = None) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.pool = pool or ExecutorPool(
            workers=self.config.workers,
            max_queries=self.config.max_concurrent,
        )
        self._owns_pool = pool is None
        self.quotas = QuotaManager(
            configs=list(self.config.tenants),
            default=self.config.default_quota,
            allow_unknown=self.config.allow_unknown,
        )
        self.sessions = SessionRegistry(max_sessions=self.config.max_sessions)
        self._lock = make_lock("serve.server")
        self.requests = 0
        self.errors = 0
        self._server: asyncio.base_events.Server | None = None
        self.port: int | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port,
            limit=MAX_FRAME_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        metrics.inc("serve.started")

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._owns_pool:
            self.pool.close()

    # -- connection handling ------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        from .http import try_serve_http

        try:
            # one 4-byte peek tells a native length prefix (leading NUL
            # for any sane frame size) from an HTTP method
            try:
                first: bytes | None = await reader.readexactly(4)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return
            if await try_serve_http(self, reader, writer, first):
                return
            while True:
                try:
                    request = await read_frame(reader, header=first)
                except ProtocolError as exc:
                    try:
                        await self._send(writer,
                                         error_frame("bad_request", str(exc)))
                    except (ConnectionResetError, BrokenPipeError):
                        pass  # peer sent garbage then reset: nothing to tell
                    break
                first = None
                if request is None:
                    break
                with self._lock:
                    self.requests += 1
                metrics.inc("serve.requests")
                try:
                    keep_going = await self._respond(request, writer)
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not keep_going:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # CancelledError: server shutdown cancelled this
                # connection task while it drained its own close
                pass

    async def _respond(self, request: dict, writer) -> bool:
        """Dispatch one request frame; False ends the connection."""
        op = request.get("op")
        if op == "ping":
            await self._send(writer, {"type": "pong"})
            return True
        if op == "stats":
            await self._send(writer, {
                "type": "stats",
                "server": self.snapshot(),
                "tenants": self.quotas.snapshot(),
                "sessions": self.sessions.snapshot(),
            })
            return True
        if op == "query":
            return await self._respond_query(request, writer)
        if op == "resume":
            return await self._respond_resume(request, writer)
        await self._error(writer, error_frame(
            "bad_request", f"unknown op {op!r}; have ping/stats/query/resume"))
        return True

    # -- query path ---------------------------------------------------------

    async def _respond_query(self, request: dict, writer) -> bool:
        """Admit and stream one query.

        The two admission gates and the deadline token are all
        constructed here, in one place, so the MOA1003/MOA1004 checks
        (and human readers) can see the whole discipline at once:
        CancelToken -> tenant quota -> pool bound -> lock-step stream.
        The deadline is validated *before* admission (a malformed one
        must not consume a concurrency slot), and the runner — request
        parsing, vector conversion, source construction — is built
        *inside* the admitted region, so an over-quota tenant cannot
        bill that work to the event loop.
        """
        tenant = str(request.get("tenant", "default"))
        try:
            cancel = self._deadline_token(request)
        except ProtocolError as exc:
            await self._error(writer, error_frame("bad_request", str(exc)))
            return True
        try:
            admission = self.quotas.admit(tenant)  # gate 1: tenant quota
        except QuotaExceededError as exc:
            await self._error(writer, error_frame(
                "quota", str(exc), retryable=True,
                retry_after_ms=None if exc.retry_after is None
                else exc.retry_after * 1000.0))
            return True
        with admission as tenant_state:
            try:
                runner, kind = self._build_runner(request)
            except (ReproError, ValueError, TypeError) as exc:
                await self._error(writer, error_frame("bad_request", str(exc)))
                return True
            try:
                with self.pool.admit():  # gate 2: pool-wide bound
                    session = self.sessions.issue(runner, tenant, runner.epoch)
                    return await self._stream(session, tenant_state, writer,
                                              cancel, admission)
            except AdmissionRejectedError as exc:
                await self._error(writer, error_frame(
                    "admission", str(exc), retryable=True))
                return True

    async def _respond_resume(self, request: dict, writer) -> bool:
        token = request.get("token")
        if not token:
            await self._error(writer, error_frame(
                "bad_request", "resume requires a token"))
            return True
        try:
            # validated before redeem/admit: a malformed deadline must
            # leak neither the session busy flag nor a quota slot
            cancel = self._deadline_token(request)
        except ProtocolError as exc:
            await self._error(writer, error_frame("bad_request", str(exc)))
            return True
        try:
            session = self.sessions.redeem(str(token), self.db.epoch)
        except ResumeTokenError as exc:
            moa = "MOA1002" if exc.code == "resume_epoch_mismatch" else None
            await self._error(writer, error_frame(
                exc.code, str(exc), retryable=exc.code == "resume_busy",
                moa=moa))
            return True
        # a resume is a fresh request: it passes both admission gates
        # again under the *original* tenant (anything else would let a
        # throttled tenant smuggle work through saved tokens — MOA1003)
        try:
            admission = self.quotas.admit(session.tenant)
        except QuotaExceededError as exc:
            session.release()
            await self._error(writer, error_frame(
                "quota", str(exc), retryable=True,
                retry_after_ms=None if exc.retry_after is None
                else exc.retry_after * 1000.0))
            return True
        with admission as tenant_state:
            try:
                with self.pool.admit():
                    return await self._stream(session, tenant_state, writer,
                                              cancel, admission)
            except AdmissionRejectedError as exc:
                session.release()
                await self._error(writer, error_frame(
                    "admission", str(exc), retryable=True))
                return True

    async def _stream(self, session, tenant_state, writer, cancel: CancelToken,
                      admission) -> bool:
        """Lock-step chunk pump for an admitted (``admission``) stream.

        One engine step on a pool thread, one ``chunk`` frame, one
        drain — repeat until final, deadline (``cancel``) or
        disconnect.  On disconnect the session stays registered, busy
        flag released, for resume."""
        assert admission is not None  # streams only run admitted
        try:
            loop = asyncio.get_running_loop()
            runner = session.runner
            while True:
                if cancel.cancelled():
                    session.release()
                    await self._send(writer, {
                        "type": "done", "status": "deadline",
                        "resume_token": session.token,
                        "remaining_ms": 0.0,
                    })
                    metrics.inc("serve.deadline_stops")
                    return True
                try:
                    chunk = await loop.run_in_executor(self.pool.executor,
                                                       runner.step)
                except Exception as exc:
                    # engine failure (bad dimensionality surfacing at
                    # access time, any ReproError): the runner's state
                    # is suspect, so the session is dropped — a resume
                    # of its token restarts cold — and the client gets
                    # an error frame instead of a silent close
                    self.sessions.drop(session.token)
                    metrics.inc("serve.step_errors")
                    await self._error(writer, error_frame(
                        "engine", f"query failed mid-stream: {exc}"))
                    return True
                await self._send(writer, chunk.to_frame(session.token))
                session.note_delivered()
                tenant_state.note_chunk()
                if chunk.final:
                    self.sessions.drop(session.token)
                    await self._send(writer, {
                        "type": "done", "status": "complete",
                        "chunks": chunk.seq + 1,
                    })
                    return True
        except (ConnectionResetError, BrokenPipeError):
            # client went away mid-stream: keep the session resumable
            session.release()
            metrics.inc("serve.disconnects")
            raise

    # -- request parsing ----------------------------------------------------

    def _build_runner(self, request: dict) -> tuple[AnytimeRunner, str]:
        kind = request.get("kind", "feature")
        n = int(request.get("n", 10))
        if not 1 <= n <= MAX_RESULT_SIZE:
            raise ProtocolError(f"n must be in [1, {MAX_RESULT_SIZE}], got {n}")
        algorithm = str(request.get("algorithm", "ta"))
        if algorithm not in ALGORITHMS:
            raise ProtocolError(
                f"unknown algorithm {algorithm!r}; have {sorted(ALGORITHMS)}")
        agg_name = str(request.get("agg", "sum"))
        agg = BUILTIN_AGGREGATES.get(agg_name)
        if agg is None:
            raise ProtocolError(
                f"unknown aggregate {agg_name!r}; "
                f"have {sorted(BUILTIN_AGGREGATES)}")
        chunk_depth = int(request.get("chunk_depth", self.config.chunk_depth))
        if kind == "feature":
            queries = request.get("queries")
            if not isinstance(queries, dict) or not queries:
                raise ProtocolError(
                    "feature query needs 'queries': {space: vector, ...}")
            vectors = {name: np.asarray(vec, dtype=np.float64)
                       for name, vec in queries.items()}
            measure = str(request.get("measure", self.config.measure))
            sources = self.db.feature_sources(vectors, measure=measure)
        elif kind == "text":
            text = request.get("query")
            if not isinstance(text, (str, list)):
                raise ProtocolError("text query needs 'query': str | [terms]")
            strategy = request.get("strategy")
            sources = None
            runner = _TextRunner(self.db, text, n, strategy,
                                 epoch=self.db.epoch)
            return runner, kind
        else:
            raise ProtocolError(f"unknown query kind {kind!r}; have feature/text")
        runner = AnytimeRunner(sources, n, algorithm, agg,
                               epoch=self.db.epoch, chunk_depth=chunk_depth)
        return runner, kind

    def _deadline_token(self, request: dict) -> CancelToken:
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is None:
            return CancelToken()
        if (isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or not math.isfinite(deadline_ms)):
            raise ProtocolError(
                f"deadline_ms must be a finite number, got {deadline_ms!r}")
        return CancelToken.with_timeout(float(deadline_ms) / 1000.0)

    # -- plumbing -----------------------------------------------------------

    async def _send(self, writer, frame: dict) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()

    async def _error(self, writer, frame: dict) -> None:
        with self._lock:
            self.errors += 1
        metrics.inc("serve.errors")
        await self._send(writer, frame)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "errors": self.errors,
                "pool_in_flight": self.pool.in_flight,
                "epoch": self.db.epoch,
            }


@declares_shared_state
class _TextRunner:
    """Single-chunk runner adapter for text queries: the paper-era text
    strategies (incl. parallel shards) are not incremental, so they
    answer in one final chunk through the same streaming plumbing.
    Serialized by the owning session's busy flag, like
    :class:`~repro.serve.session.AnytimeRunner`."""

    SHARED_STATE = {"_last": "<barrier>"}

    def __init__(self, db, query, n: int, strategy, *, epoch: int) -> None:
        self.db = db
        self.query = query
        self.n = n
        self.strategy = strategy
        self.epoch = epoch
        self._last = None

    @property
    def finished(self) -> bool:
        return self._last is not None

    def step(self):
        from ..intervals import ThresholdBound
        from .session import Chunk

        if self._last is not None:
            return self._last
        search = self.db.search(self.query, self.n, strategy=self.strategy)
        result = search.result
        bound = None
        if result.items:
            tail = result.items[-1]
            bound = ThresholdBound(n=len(result.items),
                                   key=(-tail.score, tail.obj_id),
                                   epoch=self.epoch)
        self._last = Chunk(
            seq=0,
            items=[(item.obj_id, item.score) for item in result.items],
            depth=int(result.stats.get("depth", 0) or 0),
            final=True,
            certified=bool(result.safe),
            bound=bound,
            epoch=self.epoch,
            algorithm=f"text:{result.strategy}",
            stats=dict(result.stats),
        )
        metrics.inc("serve.chunks")
        return self._last


@dataclass
class ServerHandle:
    """What :class:`ServerThread` exposes once running."""

    host: str
    port: int


@declares_shared_state
class ServerThread:
    """Run a :class:`QueryServer` on a background thread's event loop.

    The test-and-bench harness: ``start()`` blocks until the socket is
    bound and returns the address; ``stop()`` tears the loop down.
    ``_loop`` / ``_stopping`` / ``_startup_error`` are written on the
    server thread before ``_ready`` is set and read by the caller only
    after ``_ready.wait()`` — the event is the barrier."""

    SHARED_STATE = {
        "_thread": "<thread-confined>",
        "_loop": "<barrier>",
        "_stopping": "<barrier>",
        "_startup_error": "<barrier>",
    }

    def __init__(self, db, config: ServerConfig | None = None,
                 pool: ExecutorPool | None = None) -> None:
        self.server = QueryServer(db, config, pool)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stopping: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None

    def start(self, timeout: float = 10.0) -> ServerHandle:
        self._thread = threading.Thread(target=self._run, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("query server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"query server failed to start: {self._startup_error}")
        return ServerHandle(self.server.config.host, self.server.port)

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stopping is not None:
            self._loop.call_soon_threadsafe(self._stopping.set)
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> ServerHandle:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # surface bind failures to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stopping.wait()
        finally:
            await self.server.stop()
