"""Anytime execution state: incremental runners and resume tokens.

The Fagin-family engines are natural **anytime** algorithms — run one
with a sorted-access budget and you get the best certified answer so
far plus enough state to continue.  :class:`AnytimeRunner` packages
that into a ``step()`` iterator the server streams from, one chunk per
step, with a doubling depth schedule (total work stays within a small
constant of a single uncapped run):

* **TA** chains frontier snapshots: every step passes the previous
  step's :class:`~repro.cache.resume.TAResumeState` back with a larger
  ``max_depth``, so the chain visits exactly the states one uncapped
  run does and the final chunk is bit-identical to the cold library
  call (same argument — and same tests — as the cache's TA resume).
* **NRA / CA** re-run the cold algorithm per step over
  :class:`~repro.cache.resume.ReplayLog`-memoized sources with a
  growing depth cap: memoized prefixes make re-runs cheap, and because
  a replayed source returns the exact floats the cold source did, the
  first run whose stop reason is not ``max_depth`` *is* the cold
  result, bit for bit.
* **FA** has no mid-run frontier to certify, so it answers in a single
  final chunk (over replay-logged sources, making a post-disconnect
  re-send cheap).

A disconnected client resumes through :class:`SessionRegistry`: the
token ``sv1.<id>.<epoch>`` embeds the corpus epoch the stream started
at, and redeeming it at a different epoch is refused with the MOA1002
diagnostic — a frontier captured before a corpus mutation must never
continue as if nothing changed (the serve-side twin of the cache's
fingerprint epoch and MOA905).
"""

from __future__ import annotations

import itertools
import secrets
from collections import OrderedDict
from dataclasses import dataclass, field

from ..cache.resume import ReplayLog, wrap_sources
from ..errors import ResumeTokenError, TopNError
from ..intervals import ThresholdBound
from ..obs import metrics
from ..sync import acquires, declares_shared_state, make_lock, releases
from ..topn import SUM, combined_topn, fagin_topn, nra_topn, threshold_topn

ALGORITHMS = ("fa", "ta", "nra", "ca")

_TOKEN_PREFIX = "sv1"
_ids = itertools.count()


@dataclass
class Chunk:
    """One streamed anytime answer."""

    seq: int
    #: cumulative ``(obj_id, score)`` prefix in canonical tie order
    items: list
    #: sorted-access depth the answer certifies up to
    depth: int
    final: bool
    certified: bool
    #: epoch-stamped upper bound on any *unseen* object's score
    bound: ThresholdBound | None
    epoch: int
    algorithm: str
    stats: dict = field(default_factory=dict)

    def to_frame(self, resume_token: str | None) -> dict:
        frame = {
            "type": "chunk",
            "seq": self.seq,
            "items": [[int(obj), float(score)] for obj, score in self.items],
            "depth": int(self.depth),
            "final": self.final,
            "certified": self.certified,
            "bound": self.bound.to_dict() if self.bound is not None else None,
            "epoch": self.epoch,
            "algorithm": self.algorithm,
        }
        if resume_token is not None:
            frame["resume_token"] = resume_token
        if self.final:
            frame["stats"] = _jsonable_stats(self.stats)
        return frame


def _jsonable_stats(stats: dict) -> dict:
    out = {}
    for key, value in stats.items():
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[key] = value
    return out


@declares_shared_state
class AnytimeRunner:
    """Incremental execution of one multi-source top-N query.

    Not itself locked: the owning :class:`ServeSession`'s busy flag
    serializes ``step()`` calls, so successive steps — even on
    different pool threads — are separated by the session lock's
    happens-before edge (hence the ``<barrier>`` declarations), and
    the replay logs underneath carry their own locks.
    """

    SHARED_STATE = {
        "_depth": "<barrier>",
        "_seq": "<barrier>",
        "_ta_state": "<barrier>",
        "_last": "<barrier>",
    }

    def __init__(self, sources: list, n: int, algorithm: str, agg=SUM,
                 *, epoch: int = 0, chunk_depth: int = 32) -> None:
        if algorithm not in ALGORITHMS:
            raise TopNError(
                f"unknown algorithm {algorithm!r}; have {sorted(ALGORITHMS)}")
        if chunk_depth < 1:
            raise TopNError(f"chunk_depth must be >= 1, got {chunk_depth}")
        self.n = n
        self.algorithm = algorithm
        self.agg = agg
        self.epoch = epoch
        if algorithm == "ta":
            # TA chains exact frontier snapshots; no replay needed
            self.sources = sources
        else:
            logs = [ReplayLog(("serve", i)) for i in range(len(sources))]
            self.sources = wrap_sources(sources, logs)
        self._depth = chunk_depth
        self._seq = 0
        self._ta_state = None
        self._last: Chunk | None = None

    @property
    def finished(self) -> bool:
        return self._last is not None and self._last.final

    def step(self) -> Chunk:
        """Run the next budget slice; returns the next chunk (the final
        chunk again once finished — re-sends after a failed delivery
        must not re-advance the frontier)."""
        if self.finished:
            return self._last
        if self.algorithm == "fa":
            result = fagin_topn(self.sources, self.n, self.agg)
        elif self.algorithm == "ta":
            result = threshold_topn(self.sources, self.n, self.agg,
                                    resume_from=self._ta_state,
                                    capture_state=True,
                                    max_depth=self._depth)
            self._ta_state = result.stats.pop("resume_state", None)
        elif self.algorithm == "nra":
            result = nra_topn(self.sources, self.n, self.agg,
                              max_depth=self._depth)
        else:
            result = combined_topn(self.sources, self.n, self.agg,
                                   max_depth=self._depth)
        stop_reason = result.stats.get("stop_reason", "")
        final = self.algorithm == "fa" or stop_reason != "max_depth"
        chunk = Chunk(
            seq=self._seq,
            items=[(item.obj_id, item.score) for item in result.items],
            depth=int(result.stats.get("depth", self._depth)),
            final=final,
            certified=final,
            bound=self._bound(result, final),
            epoch=self.epoch,
            algorithm=self.algorithm,
            stats=result.stats,
        )
        self._seq += 1
        self._last = chunk
        if not final:
            self._depth *= 2
        metrics.inc("serve.chunks")
        return chunk

    def _bound(self, result, final: bool) -> ThresholdBound | None:
        """The chunk's certified score bound, epoch-stamped.

        Partial chunks bound the *unseen*: TA's τ and NRA/CA's
        bottom aggregate both dominate any object never seen under
        sorted access (monotonicity).  The final chunk's bound is the
        answer's own n-th sort key — the same shape the coordinator
        records into :class:`~repro.cache.bounds.CoordinatorBounds`.
        """
        if final and result.items:
            tail = result.items[-1]
            return ThresholdBound(n=len(result.items),
                                  key=(-tail.score, tail.obj_id),
                                  epoch=self.epoch)
        ceiling = result.stats.get("final_threshold",
                                   result.stats.get("bottom_aggregate"))
        if ceiling is None:
            return None
        return ThresholdBound(n=len(result.items), key=(-float(ceiling), -1),
                              epoch=self.epoch)


@declares_shared_state
class ServeSession:
    """One streamed query's server-side state: the runner plus a busy
    flag that serializes pumping (a resume while the original
    connection still streams is refused, not interleaved)."""

    SHARED_STATE = {
        "busy": "_lock",
        "delivered": "_lock",
    }

    #: every critical section under "serve.session" is pure field
    #: flips — the lifecycle analyzer (MOA1105) verifies no lock is
    #: ever acquired while this one is held
    LOCK_LEAF = True

    def __init__(self, token: str, runner: AnytimeRunner, tenant: str,
                 epoch: int) -> None:
        self.token = token
        self.runner = runner
        self.tenant = tenant
        self.epoch = epoch
        self._lock = make_lock("serve.session")
        self.busy = False
        #: chunks successfully drained to a client (resume diagnostics)
        self.delivered = 0

    def acquire(self) -> bool:
        with self._lock:
            if self.busy:
                return False
            self.busy = True
            return True

    @releases("session")
    def release(self) -> None:
        with self._lock:
            self.busy = False

    def note_delivered(self) -> None:
        with self._lock:
            self.delivered += 1


def make_token(epoch: int) -> str:
    return f"{_TOKEN_PREFIX}.{next(_ids):x}{secrets.token_hex(6)}.{epoch}"


def parse_token(token: str) -> tuple[str, int]:
    """Split a resume token into (session id, issuing epoch)."""
    parts = str(token).split(".")
    if len(parts) != 3 or parts[0] != _TOKEN_PREFIX:
        raise ResumeTokenError(f"malformed resume token {token!r}")
    try:
        epoch = int(parts[2])
    except ValueError:
        raise ResumeTokenError(f"malformed resume token {token!r}") from None
    return parts[1], epoch


@declares_shared_state
class SessionRegistry:
    """Resumable streams by token, LRU-bounded.

    Dropping the least recently pumped session under memory pressure is
    safe — a dropped token redeems as ``resume_unknown`` and the client
    restarts cold, which is correct, just slower.
    """

    SHARED_STATE = {
        "_sessions": "_lock",
        "issued": "_lock",
        "resumed": "_lock",
        "epoch_mismatches": "_lock",
    }

    def __init__(self, max_sessions: int = 256) -> None:
        self.max_sessions = max_sessions
        self._lock = make_lock("serve.sessions")
        self._sessions: OrderedDict[str, ServeSession] = OrderedDict()
        self.issued = 0
        self.resumed = 0
        self.epoch_mismatches = 0

    @acquires("session")
    def issue(self, runner: AnytimeRunner, tenant: str, epoch: int) -> ServeSession:
        token = make_token(epoch)
        session = ServeSession(token, runner, tenant, epoch)
        session.acquire()  # born attached to the issuing connection
        with self._lock:
            self._sessions[token] = session
            self.issued += 1
            if len(self._sessions) > self.max_sessions:
                # evict idle sessions in LRU order, skipping past live
                # streams (never evicted) rather than stopping at a
                # busy head — otherwise one long stream at the LRU end
                # would pin every session behind it
                evictable = [t for t, s in self._sessions.items()
                             if not s.busy]
                for evicted_token in evictable:
                    if len(self._sessions) <= self.max_sessions:
                        break
                    del self._sessions[evicted_token]
        metrics.set_gauge("serve.sessions", self.size())
        return session

    @acquires("session")
    def redeem(self, token: str, current_epoch: int) -> ServeSession:
        """Re-attach to a disconnected stream.

        Epoch is checked *before* the lookup so even an evicted token
        reports the more actionable failure: resuming across a corpus
        mutation is the MOA1002 condition and can never be satisfied,
        while an evicted same-epoch token just means "start over".
        """
        _session_id, token_epoch = parse_token(token)
        if token_epoch != current_epoch:
            from ..analysis.serve import epoch_mismatch_diagnostic

            with self._lock:
                self.epoch_mismatches += 1
            metrics.inc("serve.resume.epoch_mismatch")
            diagnostic = epoch_mismatch_diagnostic(token_epoch, current_epoch)
            raise ResumeTokenError(diagnostic.message,
                                   code="resume_epoch_mismatch",
                                   diagnostic=diagnostic)
        with self._lock:
            session = self._sessions.get(token)
            if session is not None:
                self._sessions.move_to_end(token)
                self.resumed += 1
        if session is None:
            raise ResumeTokenError(
                f"unknown or expired resume token {token!r}; run the query "
                "again from the start", code="resume_unknown")
        if not session.acquire():
            raise ResumeTokenError(
                f"resume token {token!r} is already being served",
                code="resume_busy")
        metrics.inc("serve.resumed")
        return session

    @releases("session")
    def drop(self, token: str) -> None:
        with self._lock:
            self._sessions.pop(token, None)
        metrics.set_gauge("serve.sessions", self.size())

    def size(self) -> int:
        with self._lock:
            return len(self._sessions)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "active": len(self._sessions),
                "issued": self.issued,
                "resumed": self.resumed,
                "epoch_mismatches": self.epoch_mismatches,
            }
