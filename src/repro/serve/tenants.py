"""Per-tenant quotas: token-bucket rate limiting + concurrency caps.

The serve layer admits a request through two gates, in order:

1. the tenant's **token bucket** (requests/second with a burst
   allowance) and **concurrency cap** — this module; rejection raises
   :class:`~repro.errors.QuotaExceededError` with a ``retry_after``
   hint, mapped to a retryable ``error`` frame;
2. the global :meth:`~repro.parallel.executor.ExecutorPool.admit`
   bound the paper-era engines already enforce — so a tenant inside
   its quota can still be rejected when the whole pool is saturated
   (:class:`~repro.errors.AdmissionRejectedError`, equally retryable).

The split matters for isolation: a noisy tenant burns its own bucket
long before it can reach the shared pool bound, so a steady tenant's
latency survives the abuse (the E19 bench measures exactly this).

All state here is touched from the asyncio event loop *and* worker
threads, so every mutable attribute is declared under the
:mod:`repro.sync` protocol and guarded by its lock.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass

from ..errors import QuotaExceededError
from ..obs import metrics
from ..sync import acquires, declares_shared_state, make_lock

#: ring-buffer size for per-tenant latency percentiles (stats op)
_LATENCY_WINDOW = 512


@dataclass(frozen=True)
class TenantConfig:
    """Quota knobs of one tenant.

    ``rate`` is sustained requests/second refilled into the bucket,
    ``burst`` the bucket capacity (how many requests can arrive
    back-to-back), ``max_concurrent`` the number of simultaneously
    streaming requests.
    """

    name: str
    rate: float = 50.0
    burst: float = 20.0
    max_concurrent: int = 4

    def validate(self) -> None:
        if self.rate <= 0 or self.burst < 1 or self.max_concurrent < 1:
            raise QuotaExceededError(
                f"invalid tenant config {self!r}: rate must be positive, "
                "burst and max_concurrent at least 1")


@declares_shared_state
class TokenBucket:
    """Classic token bucket over a monotonic clock.

    ``clock`` is injectable so tests and the bench can drive virtual
    time; production uses ``time.monotonic``.
    """

    SHARED_STATE = {
        "_tokens": "_lock",
        "_stamp": "_lock",
    }

    #: refill arithmetic only under "serve.bucket": never acquires
    #: another lock while held (checked statically by MOA1105)
    LOCK_LEAF = True

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = make_lock("serve.bucket")
        self._tokens = float(burst)
        self._stamp = clock()

    def try_acquire(self, amount: float = 1.0) -> bool:
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will have accrued."""
        with self._lock:
            deficit = max(0.0, amount - self._tokens)
        if deficit == 0.0:
            return 0.0
        return deficit / self.rate if self.rate > 0 else math.inf


@declares_shared_state
class TenantState:
    """Live accounting of one tenant: bucket, in-flight count, request
    counters and a latency ring buffer for p50/p99."""

    SHARED_STATE = {
        "in_flight": "_lock",
        "admitted": "_lock",
        "completed": "_lock",
        "rejected_quota": "_lock",
        "rejected_concurrency": "_lock",
        "chunks_streamed": "_lock",
        "_latencies_ms": "_lock",
    }

    #: counter bumps and ring-buffer appends only under "serve.tenant"
    LOCK_LEAF = True

    def __init__(self, config: TenantConfig, clock=time.monotonic) -> None:
        config.validate()
        self.config = config
        self.bucket = TokenBucket(config.rate, config.burst, clock)
        self._lock = make_lock("serve.tenant")
        self.in_flight = 0
        self.admitted = 0
        self.completed = 0
        self.rejected_quota = 0
        self.rejected_concurrency = 0
        self.chunks_streamed = 0
        self._latencies_ms: deque = deque(maxlen=_LATENCY_WINDOW)

    def begin(self) -> bool:
        """Claim one concurrency slot; False when the cap is reached."""
        with self._lock:
            if self.in_flight >= self.config.max_concurrent:
                return False
            self.in_flight += 1
            self.admitted += 1
            return True

    def end(self, latency_ms: float | None = None) -> None:
        with self._lock:
            self.in_flight -= 1
            self.completed += 1
            if latency_ms is not None:
                self._latencies_ms.append(float(latency_ms))

    def note_rejected(self, kind: str) -> None:
        with self._lock:
            if kind == "quota":
                self.rejected_quota += 1
            else:
                self.rejected_concurrency += 1

    def note_chunk(self) -> None:
        with self._lock:
            self.chunks_streamed += 1

    def snapshot(self) -> dict:
        with self._lock:
            latencies = sorted(self._latencies_ms)
            return {
                "in_flight": self.in_flight,
                "admitted": self.admitted,
                "completed": self.completed,
                "rejected_quota": self.rejected_quota,
                "rejected_concurrency": self.rejected_concurrency,
                "chunks_streamed": self.chunks_streamed,
                "p50_ms": percentile(latencies, 0.50),
                "p99_ms": percentile(latencies, 0.99),
            }


def percentile(sorted_values: list[float], q: float) -> float | None:
    """Nearest-rank percentile over an already-sorted sample; None when
    the sample is empty."""
    if not sorted_values:
        return None
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(rank, len(sorted_values) - 1)]


@declares_shared_state
class QuotaManager:
    """The tenant registry + the first admission gate.

    Unknown tenants are admitted under ``default`` quotas (so a fresh
    client can talk to a dev server) unless ``allow_unknown=False``, in
    which case they are rejected as a quota violation.
    """

    SHARED_STATE = {
        "_tenants": "_lock",
    }

    def __init__(self, configs: list[TenantConfig] | None = None,
                 default: TenantConfig | None = None,
                 allow_unknown: bool = True,
                 clock=time.monotonic) -> None:
        self.default = default or TenantConfig("default")
        self.allow_unknown = allow_unknown
        self._clock = clock
        self._lock = make_lock("serve.quotas")
        self._tenants: dict[str, TenantState] = {}
        for config in configs or ():
            self.register(config)

    def register(self, config: TenantConfig) -> TenantState:
        state = TenantState(config, self._clock)
        with self._lock:
            self._tenants[config.name] = state
        return state

    def tenant(self, name: str) -> TenantState:
        # get-or-create under one lock hold: two concurrent admits for
        # the same unknown tenant must share one TenantState, or the
        # in_flight accounting splits across objects and the
        # concurrency cap is quietly exceeded
        with self._lock:
            state = self._tenants.get(name)
            if state is not None:
                return state
            if not self.allow_unknown:
                raise QuotaExceededError(f"unknown tenant {name!r}")
            config = TenantConfig(name, rate=self.default.rate,
                                  burst=self.default.burst,
                                  max_concurrent=self.default.max_concurrent)
            state = TenantState(config, self._clock)
            self._tenants[name] = state
            return state

    @acquires("slot")
    def admit(self, name: str):
        """Admit one request for its whole (streaming) lifetime.

        Returns a context manager holding the tenant's concurrency slot;
        raises :class:`QuotaExceededError` — with a ``retry_after``
        hint — when the bucket is empty or the cap is reached.
        """
        state = self.tenant(name)
        if not state.bucket.try_acquire():
            state.note_rejected("quota")
            metrics.inc("serve.rejected.quota")
            raise QuotaExceededError(
                f"tenant {name!r} exceeded its request rate "
                f"({state.config.rate}/s, burst {state.config.burst})",
                retry_after=state.bucket.retry_after())
        if not state.begin():
            state.note_rejected("concurrency")
            metrics.inc("serve.rejected.concurrency")
            raise QuotaExceededError(
                f"tenant {name!r} already streams "
                f"{state.config.max_concurrent} concurrent requests",
                retry_after=0.0)
        return _Admission(state, self._clock)

    def snapshot(self) -> dict:
        with self._lock:
            tenants = dict(self._tenants)
        return {name: state.snapshot() for name, state in sorted(tenants.items())}


class _Admission:
    """Holds one admitted request's concurrency slot; records the
    request latency into the tenant's percentile window on exit."""

    def __init__(self, state: TenantState, clock) -> None:
        self.state = state
        self._clock = clock
        self._started = clock()

    def __enter__(self) -> TenantState:
        return self.state

    def __exit__(self, exc_type, exc, tb) -> None:
        self.state.end(latency_ms=(self._clock() - self._started) * 1000.0)
