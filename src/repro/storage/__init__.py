"""Binary-table storage kernel (the MonetDB stand-in Moa flattens onto).

Public surface:

* :class:`~repro.storage.bat.BAT` — binary association tables;
* :mod:`~repro.storage.kernel` — the BAT algebra (selections, joins,
  sorts, top-N, aggregates) with simulated cost accounting;
* :class:`~repro.storage.buffer.BufferManager` — page-granular LRU
  buffer simulation;
* :class:`~repro.storage.stats.CostCounter` — scoped cost counters
  (runtime cost accounting);
* :mod:`~repro.storage.statistics` — offline *column* statistics (zone
  maps, equi-depth histograms) for the cost model — not to be confused
  with ``stats``; both modules carry deprecation shims that forward
  (and warn on) lookups that land in the wrong one;
* :class:`~repro.storage.index.SparseIndex` /
  :class:`~repro.storage.index.HashIndex` — the paper's non-dense index
  and its dense counterpart;
* :class:`~repro.storage.catalog.Catalog` — named-BAT registry with
  persistence.
"""

from .bat import BAT
from .blocks import DocBlocks, ScoredBlocks
from .buffer import BufferManager, get_buffer_manager, set_buffer_manager
from .catalog import Catalog
from .index import HashIndex, SparseIndex
from .statistics import (
    ColumnStatistics,
    EquiDepthHistogram,
    StatisticsRegistry,
    ZoneMap,
    analyze_column,
)
from .stats import CostCounter
from . import kernel, statistics, stats

__all__ = [
    "BAT",
    "BufferManager",
    "Catalog",
    "ColumnStatistics",
    "CostCounter",
    "DocBlocks",
    "ScoredBlocks",
    "EquiDepthHistogram",
    "HashIndex",
    "SparseIndex",
    "StatisticsRegistry",
    "ZoneMap",
    "analyze_column",
    "get_buffer_manager",
    "set_buffer_manager",
    "kernel",
    "statistics",
    "stats",
]
