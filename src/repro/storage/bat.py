"""Binary Association Tables (BATs) — the flat storage model.

Moa ("Flattening an Object Algebra to Provide Performance", Boncz,
Wilschut & Kersten 1998) evaluates structured object-algebra
expressions by flattening them onto *binary* relations processed by the
MonetDB kernel.  This module provides that substrate: a :class:`BAT`
is a two-column table of ``(head, tail)`` pairs.

Representation choices mirror MonetDB:

* the **head** column is usually a *dense* (void) sequence of object
  identifiers ``hseqbase, hseqbase+1, ...`` which is never materialized
  unless needed (``head=None``);
* the **tail** column is a numpy array of integers, floats, or strings;
* BATs carry *properties* (``tail_sorted``, ``tail_sorted_desc``,
  ``head_key``, ``tail_key``) that the kernel and the optimizer exploit
  — e.g. a range-select on a tail-sorted BAT uses binary search and
  touches only the qualifying pages.

Every BAT owns a ``segment_id`` naming its logical disk segment for the
simulated buffer manager (:mod:`repro.storage.buffer`).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

from ..errors import BATShapeError, BATTypeError

_segment_ids = itertools.count(1)

#: numpy kinds accepted for BAT columns: signed ints, floats, unicode
_ALLOWED_KINDS = frozenset("ifU")


def _as_column(values, what: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D numpy array of an allowed kind."""
    arr = np.asarray(values)
    if arr.dtype.kind == "O":
        # try to homogenise object arrays (e.g. lists of python strs)
        arr = np.asarray([str(v) for v in values])
    if arr.dtype.kind == "b":
        arr = arr.astype(np.int64)
    if arr.dtype.kind == "u":
        arr = arr.astype(np.int64)
    if arr.dtype.kind not in _ALLOWED_KINDS:
        raise BATTypeError(
            f"{what} column must be int, float or str; got dtype {arr.dtype}"
        )
    if arr.ndim != 1:
        raise BATShapeError(f"{what} column must be one-dimensional, got shape {arr.shape}")
    return arr


class BAT:
    """A binary association table ``[(head, tail)]``.

    Parameters
    ----------
    tail:
        Tail column values (any sequence; coerced to numpy).
    head:
        Head column values, or ``None`` for a dense (void) head
        ``hseqbase .. hseqbase + len(tail) - 1``.
    hseqbase:
        First head oid when the head is dense.
    name:
        Optional name, used by the catalog and in plan displays.
    tail_sorted / tail_sorted_desc:
        Declared ordering properties of the tail column.  Trusted by
        the kernel; use :meth:`verify_properties` in tests.
    head_key / tail_key:
        Declared uniqueness of each column.  Dense heads are always
        keys.
    persistent:
        Whether the BAT notionally lives on disk.  Persistent BATs are
        scanned through the buffer manager; transient intermediates
        charge only tuple touches.
    """

    __slots__ = (
        "_head",
        "tail",
        "hseqbase",
        "name",
        "tail_sorted",
        "tail_sorted_desc",
        "head_key",
        "tail_key",
        "persistent",
        "segment_id",
    )

    def __init__(
        self,
        tail,
        head=None,
        hseqbase: int = 0,
        name: str | None = None,
        tail_sorted: bool = False,
        tail_sorted_desc: bool = False,
        head_key: bool | None = None,
        tail_key: bool = False,
        persistent: bool = False,
    ) -> None:
        self.tail = _as_column(tail, "tail")
        if head is None:
            self._head = None
            if hseqbase < 0:
                raise BATShapeError(f"hseqbase must be >= 0, got {hseqbase}")
            self.hseqbase = int(hseqbase)
            self.head_key = True
        else:
            head_arr = _as_column(head, "head")
            if head_arr.dtype.kind != "i":
                raise BATTypeError(
                    f"materialized head column must be integer oids, got {head_arr.dtype}"
                )
            if len(head_arr) != len(self.tail):
                raise BATShapeError(
                    f"head/tail length mismatch: {len(head_arr)} vs {len(self.tail)}"
                )
            self._head = head_arr
            self.hseqbase = 0
            self.head_key = bool(head_key) if head_key is not None else False
        self.name = name
        self.tail_sorted = bool(tail_sorted)
        self.tail_sorted_desc = bool(tail_sorted_desc)
        self.tail_key = bool(tail_key)
        self.persistent = bool(persistent)
        self.segment_id = next(_segment_ids)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def dense(cls, n: int, hseqbase: int = 0, name: str | None = None) -> "BAT":
        """A BAT whose tail is the dense sequence ``0..n-1`` (both
        columns dense): handy as an oid generator."""
        bat = cls(
            np.arange(n, dtype=np.int64),
            hseqbase=hseqbase,
            name=name,
            tail_sorted=True,
            tail_key=True,
        )
        return bat

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[int, object]], name: str | None = None) -> "BAT":
        """Build a BAT from ``(head, tail)`` pairs (mainly for tests)."""
        if not pairs:
            return cls(np.empty(0, dtype=np.int64), head=np.empty(0, dtype=np.int64), name=name)
        heads = [int(h) for h, _ in pairs]
        tails = [t for _, t in pairs]
        return cls(tails, head=np.asarray(heads, dtype=np.int64), name=name)

    def clone_with(
        self,
        tail=None,
        head="unchanged",
        **props,
    ) -> "BAT":
        """Return a new BAT sharing this one's columns except where
        overridden.  Property flags default to *unset* (the kernel is
        responsible for declaring what it preserves)."""
        new_tail = self.tail if tail is None else tail
        if isinstance(head, str) and head == "unchanged":
            new_head = self._head
            props.setdefault("hseqbase", self.hseqbase)
        else:
            new_head = head
        return BAT(new_tail, head=new_head, name=self.name, **props)

    # -- basic accessors ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tail)

    @property
    def count(self) -> int:
        """Number of (head, tail) pairs."""
        return len(self.tail)

    @property
    def is_dense_head(self) -> bool:
        """True when the head is an implicit void sequence."""
        return self._head is None

    def head_array(self) -> np.ndarray:
        """The head column as a materialized numpy array."""
        if self._head is None:
            return np.arange(self.hseqbase, self.hseqbase + len(self.tail), dtype=np.int64)
        return self._head

    @property
    def tail_dtype_kind(self) -> str:
        """Numpy dtype kind of the tail: 'i', 'f' or 'U'."""
        return self.tail.dtype.kind

    def pairs(self) -> Iterator[tuple[int, object]]:
        """Iterate ``(head, tail)`` pairs as python scalars."""
        heads = self.head_array()
        for i in range(len(self.tail)):
            tail_value = self.tail[i]
            yield int(heads[i]), tail_value.item() if hasattr(tail_value, "item") else tail_value

    def to_list(self) -> list[tuple[int, object]]:
        """Materialize all pairs as a python list (tests, small BATs)."""
        return list(self.pairs())

    def head_positions(self, oids: np.ndarray) -> np.ndarray:
        """Positions of the given head oids.

        Only valid when the head is dense; raises otherwise, because a
        positional lookup on a materialized head needs a join.
        """
        if not self.is_dense_head:
            raise BATShapeError("head_positions requires a dense head")
        return np.asarray(oids, dtype=np.int64) - self.hseqbase

    # -- property maintenance ---------------------------------------------------

    def verify_properties(self) -> bool:
        """Check that the declared sortedness/key flags actually hold.

        Used by tests and by :func:`repro.storage.kernel.assert_valid`;
        returns True when all declared properties are consistent with
        the data.
        """
        tail = self.tail
        if self.tail_sorted and len(tail) > 1 and not np.all(tail[:-1] <= tail[1:]):
            return False
        if self.tail_sorted_desc and len(tail) > 1 and not np.all(tail[:-1] >= tail[1:]):
            return False
        if self.tail_key and len(tail) > 1 and len(np.unique(tail)) != len(tail):
            return False
        if self.head_key and self._head is not None:
            if len(self._head) > 1 and len(np.unique(self._head)) != len(self._head):
                return False
        return True

    def refresh_sortedness(self) -> "BAT":
        """Inspect the tail and set the sortedness flags accordingly
        (in place); returns self for chaining."""
        tail = self.tail
        if len(tail) <= 1:
            self.tail_sorted = True
            self.tail_sorted_desc = True
        else:
            self.tail_sorted = bool(np.all(tail[:-1] <= tail[1:]))
            self.tail_sorted_desc = bool(np.all(tail[:-1] >= tail[1:]))
        return self

    # -- dunder niceties ----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"bat#{self.segment_id}"
        head_desc = f"void({self.hseqbase})" if self.is_dense_head else "oid"
        flags = "".join(
            flag
            for flag, on in (
                ("S", self.tail_sorted),
                ("D", self.tail_sorted_desc),
                ("K", self.tail_key),
                ("P", self.persistent),
            )
            if on
        )
        return (
            f"BAT<{label}: {head_desc} -> {self.tail.dtype}, "
            f"n={len(self)}{', ' + flags if flags else ''}>"
        )

    def same_content(self, other: "BAT") -> bool:
        """Structural equality of the (head, tail) multisets *in order*.

        Two BATs are considered the same content when their heads and
        tails compare equal elementwise.  Ordering matters; use
        :func:`repro.storage.kernel.sort_head` first for set-like
        comparison.
        """
        if len(self) != len(other):
            return False
        if len(self) == 0:
            return True
        if self.tail.dtype.kind != other.tail.dtype.kind:
            return False
        return bool(
            np.array_equal(self.head_array(), other.head_array())
            and np.array_equal(self.tail, other.tail)
        )
