"""Blocked posting storage: contiguous numpy blocks with score bounds.

The paper's central performance argument is MonetDB's block-at-a-time
flattening of the query loop: instead of interpreting one posting per
iteration, an operator consumes a contiguous array slab per call and
amortizes the interpretation overhead over the whole block.  This
module is the storage half of that argument for the top-N engines: a
graded list (one query term of an inverted index, one feature column)
is partitioned into fixed-size blocks of parallel ``(doc_id, grade)``
numpy arrays, each carrying a **precomputed per-block score upper
bound**.

The bounds are what make block-at-a-time compatible with Fagin-style
threshold administration (and with WAND-style block-max pruning): a
whole block whose upper bound falls below the current decision
threshold can be skipped — or, equivalently, the engine can prove its
stop rule from the bound without touching the block's payload.  Each
bound is exposed as an epoch-stamped
:class:`~repro.intervals.ThresholdBound` at block granularity, so the
MOA9xx bound interpreter certifies blocked plans with the *same*
machinery (and the same MOA905 staleness gate) it already applies to
coordinator thresholds and resume frontiers.

Two layouts, matching the two access disciplines of the engines:

* :class:`ScoredBlocks` — descending-grade order (ties id-ascending,
  the exact order every scalar sorted-access source uses), for the
  TA/NRA/CA family;
* :class:`DocBlocks` — ascending-doc-id order with per-block
  ``(min_doc, max_doc)`` metadata, for accumulator-style engines
  (quit/continue) that skip blocks provably containing no admitted
  document.

Layout classes are passive: cost charging stays at the access sites
(sources and engines), mirroring how ``BAT`` itself never charges.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError
from ..intervals import ThresholdBound


def _check_block_size(block_size: int) -> int:
    block_size = int(block_size)
    if block_size < 1:
        raise StorageError(f"block_size must be >= 1, got {block_size}")
    return block_size


class ScoredBlocks:
    """A graded list as fixed-size blocks in descending-grade order.

    ``doc_ids``/``grades`` are stored contiguously in the canonical
    sorted-access order (grade descending, ties doc-id ascending —
    byte-identical to :class:`~repro.mm.sources.ArraySource` and
    :class:`~repro.mm.sources.PostingsSource`), partitioned into blocks
    of ``block_size`` postings; the last block may be short.  Because
    the order is descending, each block's upper bound equals its first
    grade, but the bound is computed as an explicit per-block maximum
    so the containment property ("the bound contains every grade stored
    in the block") holds by construction, not by a sortedness argument.
    """

    def __init__(self, doc_ids, grades, block_size: int, *,
                 presorted: bool = False) -> None:
        doc_ids = np.asarray(doc_ids, dtype=np.int64)
        grades = np.asarray(grades, dtype=np.float64)
        if doc_ids.ndim != 1 or grades.ndim != 1:
            raise StorageError("doc_ids and grades must be one-dimensional")
        if len(doc_ids) != len(grades):
            raise StorageError(
                f"doc_ids and grades disagree: {len(doc_ids)} vs {len(grades)}")
        self.block_size = _check_block_size(block_size)
        if not presorted and len(grades):
            order = np.lexsort((doc_ids, -grades))
            doc_ids = doc_ids[order]
            grades = grades[order]
        self.doc_ids = doc_ids
        self.grades = grades
        if len(grades):
            self.starts = np.arange(0, len(grades), self.block_size)
            self.uppers = np.maximum.reduceat(grades, self.starts)
        else:
            self.starts = np.empty(0, dtype=np.int64)
            self.uppers = np.empty(0, dtype=np.float64)

    @property
    def n_postings(self) -> int:
        return len(self.doc_ids)

    @property
    def n_blocks(self) -> int:
        return len(self.starts)

    def block_bounds(self, b: int) -> tuple[int, int]:
        """The rank range ``[start, end)`` block ``b`` covers."""
        start = int(self.starts[b])
        return start, min(start + self.block_size, len(self.doc_ids))

    def block(self, b: int) -> tuple[np.ndarray, np.ndarray]:
        """Block ``b`` as ``(doc_ids, grades)`` array views."""
        start, end = self.block_bounds(b)
        return self.doc_ids[start:end], self.grades[start:end]

    def block_upper(self, b: int) -> float:
        """The precomputed score upper bound of block ``b``."""
        return float(self.uppers[b])

    def block_of_rank(self, rank: int) -> int:
        return rank // self.block_size

    def threshold_bounds(self, epoch: int = 0) -> tuple[ThresholdBound, ...]:
        """The per-block bounds as epoch-stamped ThresholdBound records.

        Bound ``b`` certifies: every posting at rank >= ``start(b)``
        grades at most ``uppers[b]`` (grades are descending, so the
        block maximum also caps the whole tail).  ``n`` records the
        rank the bound holds from, ``key`` the canonical
        ``(-score, obj_id)`` sort key of the block's best posting —
        exactly the shape the coordinator's bound cache records, so the
        MOA9xx interpreter (and its MOA905 epoch gate) consumes blocked
        bounds with no new machinery.
        """
        return tuple(
            ThresholdBound(
                n=int(self.starts[b]),
                key=(-float(self.uppers[b]), int(self.doc_ids[self.starts[b]])),
                epoch=epoch,
            )
            for b in range(self.n_blocks)
        )


class DocBlocks:
    """A posting list as fixed-size blocks in ascending-doc-id order.

    The accumulator engines (quit/continue) read postings in document
    order; each block carries ``(min_doc, max_doc)`` plus a score upper
    bound, so a continue-phase pass can skip blocks that provably
    contain no admitted document without reading their payload.
    """

    def __init__(self, doc_ids, grades, block_size: int) -> None:
        doc_ids = np.asarray(doc_ids, dtype=np.int64)
        grades = np.asarray(grades, dtype=np.float64)
        if len(doc_ids) != len(grades):
            raise StorageError(
                f"doc_ids and grades disagree: {len(doc_ids)} vs {len(grades)}")
        self.block_size = _check_block_size(block_size)
        if len(doc_ids) > 1 and np.any(np.diff(doc_ids) < 0):
            order = np.argsort(doc_ids, kind="stable")
            doc_ids = doc_ids[order]
            grades = grades[order]
        self.doc_ids = doc_ids
        self.grades = grades
        if len(doc_ids):
            self.starts = np.arange(0, len(doc_ids), self.block_size)
            ends = np.minimum(self.starts + self.block_size, len(doc_ids))
            self.min_docs = doc_ids[self.starts]
            self.max_docs = doc_ids[ends - 1]
            self.uppers = np.maximum.reduceat(grades, self.starts)
        else:
            self.starts = np.empty(0, dtype=np.int64)
            self.min_docs = np.empty(0, dtype=np.int64)
            self.max_docs = np.empty(0, dtype=np.int64)
            self.uppers = np.empty(0, dtype=np.float64)

    @property
    def n_postings(self) -> int:
        return len(self.doc_ids)

    @property
    def n_blocks(self) -> int:
        return len(self.starts)

    def block(self, b: int) -> tuple[np.ndarray, np.ndarray]:
        start = int(self.starts[b])
        end = min(start + self.block_size, len(self.doc_ids))
        return self.doc_ids[start:end], self.grades[start:end]

    def overlapping(self, sorted_ids: np.ndarray) -> np.ndarray:
        """Boolean mask per block: may the block contain any of
        ``sorted_ids`` (ascending)?  Metadata-only — no payload read —
        and conservative: ``False`` proves the block holds none of the
        ids, ``True`` only that the id range overlaps."""
        if self.n_blocks == 0:
            return np.empty(0, dtype=bool)
        if len(sorted_ids) == 0:
            return np.zeros(self.n_blocks, dtype=bool)
        lo = np.searchsorted(sorted_ids, self.min_docs, side="left")
        mask = lo < len(sorted_ids)
        mask[mask] = sorted_ids[lo[mask]] <= self.max_docs[mask]
        return mask

    def threshold_bounds(self, epoch: int = 0) -> tuple[ThresholdBound, ...]:
        """Per-block score bounds as epoch-stamped ThresholdBound
        records (``n`` is the block's start offset in document order)."""
        return tuple(
            ThresholdBound(
                n=int(self.starts[b]),
                key=(-float(self.uppers[b]), int(self.min_docs[b])),
                epoch=epoch,
            )
            for b in range(self.n_blocks)
        )
