"""A simulated, page-granular buffer manager.

The reproduction measures "amount of data processed" the way a database
would: in *pages*.  Every BAT (see :mod:`repro.storage.bat`) is backed
by a logical segment of fixed-size pages (``page_tuples`` tuples per
page).  Kernel operations route their access patterns through the
buffer manager, which keeps an LRU pool of ``capacity_pages`` frames
and charges :mod:`repro.storage.stats` counters:

* a page request that misses the pool charges one ``page_read``;
* a page request that hits charges one ``buffer_hit``;
* sequential scans request the page range covering the scanned tuples;
* random (positional) accesses request the single page containing the
  tuple.

This is a *simulation*: no bytes are moved, only accounting happens.
It is deliberately simple — single replacement policy (LRU), no
dirty-page writeback model beyond an explicit :meth:`BufferManager.write`
— because the paper's experiments only need a deterministic, monotone
proxy for I/O volume.

The pool is process-wide and the parallel engine's worker threads
request pages concurrently, so the manager follows the
:mod:`repro.sync` declaration protocol: every counter and the LRU map
are guarded by ``_lock``, and :func:`repro check <repro.analysis.concurrency>`
holds the class to it.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import BufferError_
from ..sync import declares_shared_state, guarded_by, make_lock
from . import stats
from ..obs import metrics as _metrics

#: default number of tuples that fit on one simulated page
DEFAULT_PAGE_TUPLES = 256
#: default pool capacity, in pages
DEFAULT_CAPACITY_PAGES = 4096

#: module-level installation point, swapped only in single-threaded setup
SHARED_STATE = {"_default_buffer": "<config>"}


@declares_shared_state
class BufferManager:
    """LRU pool of simulated page frames.

    Parameters
    ----------
    capacity_pages:
        Number of page frames in the pool.  Requests beyond capacity
        evict the least recently used frame.
    page_tuples:
        Tuples per page; converts tuple positions to page numbers.
    """

    SHARED_STATE = {
        "_pool": "_lock",
        "requests": "_lock",
        "hits": "_lock",
        "misses": "_lock",
        "evictions": "_lock",
    }

    def __init__(
        self,
        capacity_pages: int = DEFAULT_CAPACITY_PAGES,
        page_tuples: int = DEFAULT_PAGE_TUPLES,
    ) -> None:
        if capacity_pages <= 0:
            raise BufferError_(f"capacity_pages must be positive, got {capacity_pages}")
        if page_tuples <= 0:
            raise BufferError_(f"page_tuples must be positive, got {page_tuples}")
        self.capacity_pages = capacity_pages
        self.page_tuples = page_tuples
        self._lock = make_lock("storage.buffer")
        # maps (segment_id, page_no) -> None; OrderedDict gives LRU order
        self._pool: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- page-level interface ---------------------------------------------

    def request(self, segment_id: int, page_no: int) -> bool:
        """Request one page; return ``True`` on a buffer hit.

        Charges either a ``buffer_hit`` or a ``page_read`` on every
        active :class:`~repro.storage.stats.CostCounter`.
        """
        key = (segment_id, page_no)
        with self._lock:
            self.requests += 1
            hit = key in self._pool
            if hit:
                self._pool.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
                self._admit(key)
        # cost counters are thread-local and the metrics instruments
        # take their own locks: charge outside the pool lock
        if hit:
            stats.charge_buffer_hits(1)
            _metrics.inc("buffer.hits")
        else:
            stats.charge_page_reads(1)
            _metrics.inc("buffer.misses")
        return hit

    @guarded_by("_lock")
    def _admit(self, key: tuple[int, int]) -> None:
        """Insert ``key`` as the most recent frame, evicting LRU overflow."""
        self._pool[key] = None
        self._pool.move_to_end(key)
        while len(self._pool) > self.capacity_pages:
            self._pool.popitem(last=False)
            self.evictions += 1
            _metrics.inc("buffer.evictions")

    # -- tuple-level helpers ------------------------------------------------

    def page_of(self, tuple_pos: int) -> int:
        """Page number containing tuple position ``tuple_pos``."""
        return tuple_pos // self.page_tuples

    def pages_for(self, n_tuples: int) -> int:
        """Number of pages covering ``n_tuples`` consecutive tuples."""
        if n_tuples <= 0:
            return 0
        return (n_tuples + self.page_tuples - 1) // self.page_tuples

    def scan(self, segment_id: int, n_tuples: int, start_tuple: int = 0) -> int:
        """Sequentially request the pages holding ``n_tuples`` tuples
        starting at ``start_tuple``; return the number of misses."""
        if n_tuples <= 0:
            return 0
        first = self.page_of(start_tuple)
        last = self.page_of(start_tuple + n_tuples - 1)
        misses = 0
        for page_no in range(first, last + 1):
            if not self.request(segment_id, page_no):
                misses += 1
        stats.charge_tuples_read(n_tuples)
        return misses

    def random_read(self, segment_id: int, tuple_pos: int) -> bool:
        """Positionally access one tuple; return ``True`` on a hit."""
        hit = self.request(segment_id, self.page_of(tuple_pos))
        stats.charge_tuples_read(1)
        return hit

    def write(self, segment_id: int, n_tuples: int, start_tuple: int = 0) -> None:
        """Charge the page writes for persisting ``n_tuples`` tuples."""
        pages = self.pages_for(n_tuples)
        stats.charge_page_writes(pages)
        stats.charge_tuples_written(n_tuples)
        _metrics.inc("buffer.page_writes", pages)
        # written pages are hot afterwards
        first = self.page_of(start_tuple)
        with self._lock:
            for page_no in range(first, first + pages):
                self._admit((segment_id, page_no))

    # -- management ----------------------------------------------------------

    def flush(self) -> None:
        """Empty the pool (e.g. between benchmark repetitions)."""
        with self._lock:
            self._pool.clear()

    def evict_segment(self, segment_id: int) -> None:
        """Drop all frames belonging to one segment (BAT dropped)."""
        with self._lock:
            doomed = [key for key in self._pool if key[0] == segment_id]
            for key in doomed:
                del self._pool[key]

    @property
    def resident_pages(self) -> int:
        """Number of frames currently occupied."""
        return len(self._pool)

    def hit_rate(self) -> float:
        """Fraction of requests served from the pool (0.0 if none yet)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferManager(capacity_pages={self.capacity_pages}, "
            f"page_tuples={self.page_tuples}, resident={self.resident_pages}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_default_buffer = BufferManager()


def get_buffer_manager() -> BufferManager:
    """Return the process-wide buffer manager used by kernel operations."""
    return _default_buffer


def set_buffer_manager(manager: BufferManager) -> BufferManager:
    """Install ``manager`` as the process-wide buffer manager and
    return the previous one (so callers can restore it)."""
    global _default_buffer
    previous = _default_buffer
    _default_buffer = manager
    return previous
