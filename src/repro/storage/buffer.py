"""A simulated, page-granular buffer manager.

The reproduction measures "amount of data processed" the way a database
would: in *pages*.  Every BAT (see :mod:`repro.storage.bat`) is backed
by a logical segment of fixed-size pages (``page_tuples`` tuples per
page).  Kernel operations route their access patterns through the
buffer manager, which keeps a pool of ``capacity_pages`` frames and
charges :mod:`repro.storage.stats` counters:

* a page request that misses the pool charges one ``page_read``;
* a page request that hits charges one ``buffer_hit``;
* sequential scans request the page range covering the scanned tuples;
* random (positional) accesses request the single page containing the
  tuple.

This is a *simulation*: no bytes are moved, only accounting happens —
a deterministic, monotone proxy for I/O volume.

Replacement is **pluggable** (:mod:`repro.storage.policies`): ``lru``
(the seed behaviour), ``slru`` (segmented LRU — scan-resistant), and
``clock`` (second-chance), selected per manager or installed onto the
process-wide pool via :meth:`BufferManager.set_policy` /
``DatabaseConfig.buffer_policy``.  Frames can be **pinned**: a pinned
page is never chosen as an eviction victim until every pin is
released, which is how callers keep a working set resident across a
multi-step operation.

The pool is process-wide and the parallel engine's worker threads
request pages concurrently, so the manager follows the
:mod:`repro.sync` declaration protocol: the counters, the pin table,
and the policy's residency structures are all guarded by the
manager's ``_lock`` (the policy object *shares* that lock — see
:mod:`repro.storage.policies`), and
:func:`repro check <repro.analysis.concurrency>` holds both classes
to it.
"""

from __future__ import annotations

from ..errors import BufferError_
from ..sync import acquires, declares_shared_state, guarded_by, make_lock, \
    releases
from . import stats
from .policies import ReplacementPolicy, make_policy
from ..obs import metrics as _metrics

#: default number of tuples that fit on one simulated page
DEFAULT_PAGE_TUPLES = 256
#: default pool capacity, in pages
DEFAULT_CAPACITY_PAGES = 4096

#: module-level installation point, swapped only in single-threaded setup
SHARED_STATE = {"_default_buffer": "<config>"}


@declares_shared_state
class BufferManager:
    """Pool of simulated page frames with a pluggable eviction policy.

    Parameters
    ----------
    capacity_pages:
        Number of page frames in the pool.  Requests beyond capacity
        evict the policy's next victim.
    page_tuples:
        Tuples per page; converts tuple positions to page numbers.
    policy:
        Replacement policy name (``lru`` / ``slru`` / ``clock``), or a
        ready :class:`~repro.storage.policies.ReplacementPolicy`
        instance already sharing this manager's lock.
    """

    SHARED_STATE = {
        "_policy": "_lock",
        "_pins": "_lock",
        "requests": "_lock",
        "hits": "_lock",
        "misses": "_lock",
        "evictions": "_lock",
    }

    def __init__(
        self,
        capacity_pages: int = DEFAULT_CAPACITY_PAGES,
        page_tuples: int = DEFAULT_PAGE_TUPLES,
        policy: str = "lru",
    ) -> None:
        if capacity_pages <= 0:
            raise BufferError_(f"capacity_pages must be positive, got {capacity_pages}")
        if page_tuples <= 0:
            raise BufferError_(f"page_tuples must be positive, got {page_tuples}")
        self.capacity_pages = capacity_pages
        self.page_tuples = page_tuples
        self._lock = make_lock("storage.buffer")
        self._policy: ReplacementPolicy = self._make_policy(policy)
        #: (segment_id, page_no) -> pin count; pinned frames are never victims
        self._pins: dict[tuple[int, int], int] = {}
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _make_policy(self, policy) -> ReplacementPolicy:
        if isinstance(policy, ReplacementPolicy):
            return policy
        return make_policy(policy, self._lock, capacity_pages=self.capacity_pages)

    # -- page-level interface ---------------------------------------------

    def request(self, segment_id: int, page_no: int) -> bool:
        """Request one page; return ``True`` on a buffer hit.

        Charges either a ``buffer_hit`` or a ``page_read`` on every
        active :class:`~repro.storage.stats.CostCounter`.
        """
        key = (segment_id, page_no)
        with self._lock:
            self.requests += 1
            hit = key in self._policy
            if hit:
                self._policy.touch(key)
                self.hits += 1
            else:
                self.misses += 1
                self._admit(key)
        # cost counters are thread-local and the metrics instruments
        # take their own locks: charge outside the pool lock
        if hit:
            stats.charge_buffer_hits(1)
            _metrics.inc("buffer.hits")
        else:
            stats.charge_page_reads(1)
            _metrics.inc("buffer.misses")
        return hit

    @guarded_by("_lock")
    def _admit(self, key: tuple[int, int]) -> None:
        """Insert ``key`` (or touch it when resident), evicting the
        policy's victims while the pool overflows."""
        if key in self._policy:
            self._policy.touch(key)
        else:
            self._policy.admit(key)
        while len(self._policy) > self.capacity_pages:
            victim = self._policy.victim(self._pins)
            if victim is None:
                raise BufferError_(
                    f"buffer pool overflows capacity ({self.capacity_pages} "
                    f"pages) with every remaining frame pinned")
            self.evictions += 1
            _metrics.inc("buffer.evictions")

    # -- pinning -------------------------------------------------------------

    @acquires("pin")
    def pin(self, segment_id: int, page_no: int) -> None:
        """Pin a page: it is admitted if absent (uncharged bookkeeping —
        request it first to model the I/O) and exempt from eviction
        until every pin is released."""
        key = (segment_id, page_no)
        with self._lock:
            if key not in self._policy:
                self._policy.admit(key)
            self._pins[key] = self._pins.get(key, 0) + 1

    @releases("pin")
    def unpin(self, segment_id: int, page_no: int) -> None:
        """Release one pin; raises when the page is not pinned."""
        key = (segment_id, page_no)
        with self._lock:
            count = self._pins.get(key)
            if count is None:
                raise BufferError_(f"page {key} is not pinned")
            if count <= 1:
                del self._pins[key]
            else:
                self._pins[key] = count - 1

    @property
    def pinned_pages(self) -> int:
        """Number of distinct pinned frames."""
        return len(self._pins)

    # -- tuple-level helpers ------------------------------------------------

    def page_of(self, tuple_pos: int) -> int:
        """Page number containing tuple position ``tuple_pos``."""
        return tuple_pos // self.page_tuples

    def pages_for(self, n_tuples: int) -> int:
        """Number of pages covering ``n_tuples`` consecutive tuples."""
        if n_tuples <= 0:
            return 0
        return (n_tuples + self.page_tuples - 1) // self.page_tuples

    def scan(self, segment_id: int, n_tuples: int, start_tuple: int = 0) -> int:
        """Sequentially request the pages holding ``n_tuples`` tuples
        starting at ``start_tuple``; return the number of misses."""
        if n_tuples <= 0:
            return 0
        first = self.page_of(start_tuple)
        last = self.page_of(start_tuple + n_tuples - 1)
        misses = 0
        for page_no in range(first, last + 1):
            if not self.request(segment_id, page_no):
                misses += 1
        stats.charge_tuples_read(n_tuples)
        return misses

    def random_read(self, segment_id: int, tuple_pos: int) -> bool:
        """Positionally access one tuple; return ``True`` on a hit."""
        hit = self.request(segment_id, self.page_of(tuple_pos))
        stats.charge_tuples_read(1)
        return hit

    def write(self, segment_id: int, n_tuples: int, start_tuple: int = 0) -> None:
        """Charge the page writes for persisting ``n_tuples`` tuples."""
        pages = self.pages_for(n_tuples)
        stats.charge_page_writes(pages)
        stats.charge_tuples_written(n_tuples)
        _metrics.inc("buffer.page_writes", pages)
        # written pages are hot afterwards
        first = self.page_of(start_tuple)
        with self._lock:
            for page_no in range(first, first + pages):
                self._admit((segment_id, page_no))

    # -- management ----------------------------------------------------------

    def set_policy(self, policy: str) -> None:
        """Swap the replacement policy, migrating resident frames.

        Keys are re-admitted coldest-first, so the recency order the
        old policy tracked is approximately preserved.  Pins are
        unaffected (the pin table lives on the manager).
        """
        with self._lock:
            survivors = self._policy.keys()
            fresh = self._make_policy(policy)
            for key in survivors:
                fresh.admit(key)
            self._policy = fresh

    @property
    def policy_name(self) -> str:
        return self._policy.name

    def flush(self) -> None:
        """Empty the pool (e.g. between benchmark repetitions).
        Pinned frames stay resident — a pin is a residency promise."""
        with self._lock:
            pinned = [key for key in self._policy.keys() if key in self._pins]
            self._policy.clear()
            for key in pinned:
                self._policy.admit(key)

    def evict_segment(self, segment_id: int) -> None:
        """Drop all unpinned frames belonging to one segment (BAT
        dropped)."""
        with self._lock:
            doomed = [key for key in self._policy.keys()
                      if key[0] == segment_id and key not in self._pins]
            for key in doomed:
                self._policy.remove(key)

    @property
    def resident_pages(self) -> int:
        """Number of frames currently occupied."""
        return len(self._policy)

    def hit_rate(self) -> float:
        """Fraction of requests served from the pool (0.0 if none yet)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferManager(capacity_pages={self.capacity_pages}, "
            f"page_tuples={self.page_tuples}, policy={self.policy_name!r}, "
            f"resident={self.resident_pages}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_default_buffer = BufferManager()


def get_buffer_manager() -> BufferManager:
    """Return the process-wide buffer manager used by kernel operations."""
    return _default_buffer


def set_buffer_manager(manager: BufferManager) -> BufferManager:
    """Install ``manager`` as the process-wide buffer manager and
    return the previous one (so callers can restore it)."""
    global _default_buffer
    previous = _default_buffer
    _default_buffer = manager
    return previous
