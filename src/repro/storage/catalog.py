"""A named-BAT catalog with optional on-disk persistence.

The catalog plays the role of MonetDB's BBP (BAT buffer pool
directory): it maps names to BATs, tracks which are persistent, and can
save/load the whole set as ``.npz`` files in a directory.  Saving and
loading charge simulated page I/O so that cold-start costs show up in
experiments that want them.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import CatalogError
from .bat import BAT
from .buffer import get_buffer_manager
from . import stats


class Catalog:
    """In-memory registry of named BATs."""

    def __init__(self) -> None:
        self._bats: dict[str, BAT] = {}

    def register(self, name: str, bat: BAT, replace: bool = False) -> BAT:
        """Register ``bat`` under ``name``; refuses to overwrite unless
        ``replace`` is given."""
        if not replace and name in self._bats:
            raise CatalogError(f"BAT name already registered: {name!r}")
        bat.name = name
        self._bats[name] = bat
        return bat

    def get(self, name: str) -> BAT:
        """Look up a BAT by name."""
        try:
            return self._bats[name]
        except KeyError:
            raise CatalogError(f"no BAT named {name!r} in catalog") from None

    def __contains__(self, name: str) -> bool:
        return name in self._bats

    def drop(self, name: str) -> None:
        """Remove a BAT and evict its pages from the buffer pool."""
        bat = self.get(name)
        del self._bats[name]
        get_buffer_manager().evict_segment(bat.segment_id)

    def names(self) -> list[str]:
        """Sorted list of registered names."""
        return sorted(self._bats)

    def __len__(self) -> int:
        return len(self._bats)

    def total_tuples(self) -> int:
        """Sum of cardinalities over all registered BATs."""
        return sum(len(bat) for bat in self._bats.values())

    # -- persistence ----------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist every registered BAT under ``directory``.

        Each BAT becomes ``<name>.npz`` (head omitted when dense) plus a
        ``catalog.json`` manifest with the property flags.  Charges
        simulated page writes for the saved tuples.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {}
        manager = get_buffer_manager()
        for name, bat in self._bats.items():
            arrays = {"tail": bat.tail}
            if not bat.is_dense_head:
                arrays["head"] = bat.head_array()
            np.savez(directory / f"{name}.npz", **arrays)
            manifest[name] = {
                "hseqbase": bat.hseqbase,
                "dense_head": bat.is_dense_head,
                "tail_sorted": bat.tail_sorted,
                "tail_sorted_desc": bat.tail_sorted_desc,
                "head_key": bat.head_key,
                "tail_key": bat.tail_key,
            }
            manager.write(bat.segment_id, len(bat))
        with open(directory / "catalog.json", "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, directory: str | Path) -> "Catalog":
        """Load a catalog previously written by :meth:`save`.

        All loaded BATs are marked persistent; loading charges a
        simulated scan of each BAT (cold read).
        """
        directory = Path(directory)
        manifest_path = directory / "catalog.json"
        if not manifest_path.exists():
            raise CatalogError(f"no catalog manifest in {directory}")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        catalog = cls()
        for name, props in manifest.items():
            path = directory / f"{name}.npz"
            if not path.exists():
                raise CatalogError(f"catalog manifest references missing file {path.name}")
            with np.load(path, allow_pickle=False) as data:
                tail = data["tail"]
                head = data["head"] if "head" in data.files else None
            bat = BAT(
                tail,
                head=head,
                hseqbase=props["hseqbase"] if head is None else 0,
                name=name,
                tail_sorted=props["tail_sorted"],
                tail_sorted_desc=props["tail_sorted_desc"],
                head_key=props["head_key"] if head is not None else None,
                tail_key=props["tail_key"],
                persistent=True,
            )
            stats.charge_tuples_read(len(bat))
            get_buffer_manager().scan(bat.segment_id, len(bat))
            catalog._bats[name] = bat
        return catalog
