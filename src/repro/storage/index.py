"""Index structures over BATs: a dense hash index and the paper's
*non-dense* (sparse) index.

The paper's Step 1 plans to "introduce a non-dense index in the system
to speed up processing the large fragment".  A non-dense (sparse)
index keeps one entry per *page-sized stride* of a sorted column rather
than one per tuple, so it is tiny and cheap to maintain, and a probe
touches only ``O(log(n/stride))`` in-memory entries plus the one stride
of the base BAT that can contain the key.

:class:`HashIndex` is the conventional dense alternative (one entry per
distinct value); it answers equality probes in one step but costs a
full build pass and memory proportional to the data.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import IndexError_
from . import stats
from .bat import BAT
from .buffer import get_buffer_manager
from .kernel import select_mask


class SparseIndex:
    """Non-dense index over a *tail-sorted* BAT.

    Stores every ``stride``-th tail value together with its position.
    ``stride`` defaults to the buffer page size so one stride is one
    simulated page.

    Probing (:meth:`lookup_range`) binary-searches the in-memory sample
    (charged as comparisons) and then scans only the candidate strides
    of the base BAT, charging page reads for exactly those pages.
    """

    def __init__(self, base: BAT, stride: int | None = None) -> None:
        if not base.tail_sorted or base.tail_sorted_desc:
            raise IndexError_("SparseIndex requires an ascending tail-sorted BAT")
        self.base = base
        self.stride = int(stride) if stride else get_buffer_manager().page_tuples
        if self.stride <= 0:
            raise IndexError_(f"stride must be positive, got {self.stride}")
        # one sample per stride: the first tail value of the stride
        positions = np.arange(0, len(base), self.stride, dtype=np.int64)
        self._sample_positions = positions
        self._sample_values = base.tail[positions] if len(base) else base.tail[:0]
        # building reads the sampled pages only (sparse build touches one
        # value per page, i.e. one page per stride)
        stats.charge_tuples_read(len(positions))
        if base.persistent:
            manager = get_buffer_manager()
            for pos in positions:
                manager.request(base.segment_id, manager.page_of(int(pos)))

    @property
    def entries(self) -> int:
        """Number of sample entries kept (one per stride)."""
        return len(self._sample_positions)

    def size_ratio(self) -> float:
        """Index size relative to the base BAT (entries / tuples)."""
        if len(self.base) == 0:
            return 0.0
        return self.entries / len(self.base)

    def _candidate_span(self, lo, hi) -> tuple[int, int]:
        """Tuple-position span ``[start, stop)`` that can contain values
        in ``[lo, hi]``, derived from the in-memory sample."""
        n = len(self.base)
        if n == 0:
            return 0, 0
        sample = self._sample_values
        stats.charge_comparisons(2 * max(1, math.ceil(math.log2(max(len(sample), 2)))))
        if lo is None:
            start_stride = 0
        else:
            # the stride *before* the first sample >= lo can still end
            # with values equal to lo (duplicates straddle strides), so
            # start one stride before the first sample that reaches lo
            start_stride = max(int(np.searchsorted(sample, lo, "left")) - 1, 0)
        if hi is None:
            stop_stride = len(sample)
        else:
            stop_stride = int(np.searchsorted(sample, hi, "right"))
        start = start_stride * self.stride
        stop = min(stop_stride * self.stride, n)
        return start, max(stop, start)

    def lookup_range(self, lo=None, hi=None, include_lo: bool = True,
                     include_hi: bool = True) -> BAT:
        """Range probe: return the base pairs with ``lo <= tail <= hi``,
        reading only the candidate strides of the base BAT."""
        start, stop = self._candidate_span(lo, hi)
        span = stop - start
        if span <= 0:
            return select_mask(self.base, np.zeros(len(self.base), dtype=bool), _precharged=True)
        # read only the candidate span
        if self.base.persistent:
            get_buffer_manager().scan(self.base.segment_id, span, start_tuple=start)
        else:
            stats.charge_tuples_read(span)
        segment = self.base.tail[start:stop]
        stats.charge_comparisons(span * ((lo is not None) + (hi is not None)))
        mask = np.ones(span, dtype=bool)
        if lo is not None:
            mask &= segment >= lo if include_lo else segment > lo
        if hi is not None:
            mask &= segment <= hi if include_hi else segment < hi
        picked = np.nonzero(mask)[0] + start
        heads = self.base.head_array()[picked]
        tails = self.base.tail[picked]
        stats.charge_tuples_written(len(picked))
        return BAT(tails, head=heads, tail_sorted=True,
                   head_key=self.base.head_key or self.base.is_dense_head)

    def lookup_eq(self, value) -> BAT:
        """Equality probe."""
        return self.lookup_range(lo=value, hi=value)


class HashIndex:
    """Dense hash index: distinct tail value → tuple positions.

    Build cost is a full scan; probes charge one random page access per
    distinct page containing a matching tuple.
    """

    def __init__(self, base: BAT) -> None:
        self.base = base
        from .kernel import scan_cost

        scan_cost(base)
        order = np.argsort(base.tail, kind="stable")
        sorted_tail = base.tail[order]
        self._order = order
        self._sorted_tail = sorted_tail
        stats.charge_comparisons(len(base) * max(1, math.ceil(math.log2(max(len(base), 2)))))

    @property
    def entries(self) -> int:
        """Number of indexed tuples."""
        return len(self.base)

    def lookup_eq(self, value) -> BAT:
        """Return the base pairs whose tail equals ``value``."""
        lo = int(np.searchsorted(self._sorted_tail, value, "left"))
        hi = int(np.searchsorted(self._sorted_tail, value, "right"))
        stats.charge_comparisons(2 * max(1, math.ceil(math.log2(max(len(self.base), 2)))))
        positions = np.sort(self._order[lo:hi])
        if self.base.persistent and len(positions):
            manager = get_buffer_manager()
            for page_no in np.unique(positions // manager.page_tuples):
                manager.request(self.base.segment_id, int(page_no))
        stats.charge_tuples_read(len(positions))
        stats.charge_tuples_written(len(positions))
        return BAT(
            self.base.tail[positions],
            head=self.base.head_array()[positions],
            head_key=self.base.head_key or self.base.is_dense_head,
        )
